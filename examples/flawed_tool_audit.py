#!/usr/bin/env python3
"""The paper's audit scenario: find everything a flawed tool touched.

"Imagine that a researcher discovers that a particular version of a
widely-used analysis tool is flawed. She can identify all data sets
affected by the flawed software by querying the provenance." (§1)

A Blast campaign runs with two releases of the aligner: blast-2.2.16
(later found flawed) and blast-2.2.18. The audit:

1. finds every *process instance* whose argv pins the flawed release,
2. finds their direct outputs (paper query Q2),
3. closes over descendants (paper query Q3) — summaries built from
   flawed alignments are tainted too,

all through indexed SimpleDB queries, then cross-checks the result
against the in-memory ground-truth graph.

    python examples/flawed_tool_audit.py
"""

from repro.blob import SyntheticBlob
from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.capture import PassSystem
from repro.sim import Simulation

FLAWED = "blast-2.2.16"
FIXED = "blast-2.2.18"


def run_campaign(sim: Simulation) -> ProvenanceGraph:
    pas = PassSystem(workload="audit")
    pas.stage_input("db/nr.fasta", SyntheticBlob("nr", 5_000_000))
    for index in range(8):
        release = FLAWED if index < 3 else FIXED
        query_path = f"queries/q{index}.fa"
        hits_path = f"hits/q{index}.blast"
        summary_path = f"summaries/q{index}.txt"
        pas.stage_input(query_path, SyntheticBlob(f"q{index}", 2_000))
        with pas.process(
            release, argv=f"-p blastp -d nr -i {query_path}"
        ) as blast:
            blast.read("db/nr.fasta")
            blast.read(query_path)
            blast.write(hits_path, SyntheticBlob(f"hits{index}", 80_000))
            blast.close(hits_path)
        with pas.process("summarize", argv=f"--top 10 {hits_path}") as post:
            post.read(hits_path)
            post.write(summary_path, SyntheticBlob(f"sum{index}", 4_000))
            post.close(summary_path)
    events = pas.drain_flushes()
    sim.store_events(events)
    print(f"campaign stored: {len(events)} objects")
    return ProvenanceGraph.from_events(events)


def audit(sim: Simulation, oracle: ProvenanceGraph) -> None:
    engine = sim.query_engine()

    direct = engine.q2_outputs_of(FLAWED)
    print(
        f"\nQ2 — direct outputs of {FLAWED}: {direct.result_count} files "
        f"in {direct.operations} operations"
    )
    for ref in direct.refs:
        print(f"  TAINTED {ref.encode()}")

    tainted = engine.q3_descendants_of(FLAWED)
    print(
        f"\nQ3 — all descendants of {FLAWED} outputs: "
        f"{tainted.result_count} files in {tainted.operations} operations"
    )
    derived_only = set(tainted.refs) - set(direct.refs)
    for ref in sorted(derived_only):
        print(f"  TAINTED (derived) {ref.encode()}")

    # Every claim cross-checked against the ground-truth graph.
    assert set(direct.refs) == oracle.outputs_of(FLAWED)
    assert set(tainted.refs) == oracle.descendants_of_outputs(FLAWED)

    clean = engine.q3_descendants_of(FIXED)
    overlap = set(clean.refs) & set(tainted.refs)
    print(
        f"\nresults from {FIXED}: {clean.result_count} files; "
        f"overlap with tainted set: {len(overlap)}"
    )
    print("audit verified against the in-memory provenance graph")


def main() -> None:
    sim = Simulation(architecture="s3+simpledb", seed=7)
    oracle = run_campaign(sim)
    audit(sim, oracle)


if __name__ == "__main__":
    main()
