#!/usr/bin/env python3
"""The paper's future work, running: a cloud that *uses* provenance.

"AWS is currently agnostic of the metadata. The provenance stored with
the data presents AWS cloud with many hints about the application
storing the data. In the future, we plan to investigate how a cloud
might take advantage of this provenance." (§7)

This example stores the First Provenance Challenge workflow through the
S3+SimpleDB architecture, then plays cloud provider: it hydrates a
:class:`ProvenanceAdvisor` from nothing but the SimpleDB items the
clients already stored and derives

* prefetch hints (fetch ``scan.img`` → stage ``scan.hdr``),
* duplicate-computation detection (same tool, argv, and input versions),
* eviction ordering (keep what science is built on),
* co-placement groups (whole workflows as units),

and quantifies the prefetch win by replaying the workload's reads
through an LRU cache.

    python examples/provenance_aware_cloud.py
"""

import random

from repro.advisor import CacheReplay, ProvenanceAdvisor
from repro.passlib.records import ObjectRef
from repro.sim import Simulation
from repro.workloads import ProvenanceChallengeWorkload


def main() -> None:
    workload = ProvenanceChallengeWorkload(n_workflows=3)
    events = list(workload.iter_events(random.Random("cloud"), 1.0))

    sim = Simulation(architecture="s3+simpledb", seed=99)
    sim.store_events(events, collect=False)
    print(f"stored {len(events)} objects through s3+simpledb")

    # The provider's view: only what the provenance domain holds.
    advisor = ProvenanceAdvisor.from_simpledb(sim.account)
    print(f"advisor hydrated from {len(advisor.model)} stored bundles\n")

    img = ObjectRef("fmri/s0000/resliced1.img", 1)
    print(f"client GETs {img.encode()}; the cloud would prefetch:")
    for suggestion in advisor.prefetch_for(img):
        print(f"  {suggestion.encode()}")

    print("\nlearned workflow stages (program -> next program):")
    for (source, target), count in advisor.model.transitions.most_common(5):
        print(f"  {source:12s} -> {target:12s} x{count}")

    groups = advisor.placement_groups()
    print(
        f"\nco-placement: {len(groups)} groups; the largest workflow "
        f"spans {len(groups[0])} objects that always travel together"
    )

    atlas = ObjectRef("fmri/s0000/atlas.img", 1)
    gif = ObjectRef("fmri/s0000/atlas-x.gif", 1)
    plan = advisor.eviction_plan([atlas, gif], keep_fraction=0.5)
    print(
        f"\neviction under pressure: drop {[r.encode() for r in plan]} "
        f"(fan-out {advisor.model.fan_out(plan[0])}) and keep "
        f"{atlas.encode()} (fan-out {advisor.model.fan_out(atlas)})"
    )

    base, advised = CacheReplay(capacity=12).compare(events)
    print(
        f"\nprefetch replay (LRU-12): hit rate {base.hit_rate:.3f} -> "
        f"{advised.hit_rate:.3f}, prefetch precision "
        f"{advised.prefetch_precision:.2f}"
    )


if __name__ == "__main__":
    main()
