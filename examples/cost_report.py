#!/usr/bin/env python3
"""Regenerate the paper's §5 analysis for your own workload mix.

Generates a reduced-scale combined dataset (Linux compile + Blast +
Provenance Challenge), prints Table 2 (storage cost), Table 3 (query
cost), and the USD bill per architecture at January-2009 prices — the
full evaluation pipeline as a single script.

    python examples/cost_report.py [scale]
"""

import random
import sys

from repro.analysis.cost import render_cost_table
from repro.analysis.query_model import analytic_query_table, render_table3
from repro.analysis.storage_model import render_table2, shape_check
from repro.units import fmt_bytes, fmt_count
from repro.workloads import CombinedWorkload, collect_stats


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"generating combined dataset at scale {scale} ...")
    workload = CombinedWorkload()
    stats = collect_stats(workload.iter_events(random.Random("report"), scale))

    print(
        f"\ndataset: {fmt_count(stats.n_objects)} objects, "
        f"{fmt_bytes(stats.raw_bytes)} raw data, "
        f"{fmt_count(stats.n_records)} provenance records "
        f"({fmt_count(stats.n_sdb_items)} object versions incl. transients)"
    )
    print("per workload:", dict(sorted(stats.per_workload_objects.items())))

    print()
    print(render_table2(stats, include_paper=True))
    problems = shape_check(stats)
    print(f"\nshape check vs the paper's claims: {problems or 'all hold'}")

    print()
    print(render_table3(analytic_query_table(stats), include_paper=True))

    print()
    print(render_cost_table(stats))
    print(
        "\nreading: provenance with all three §3 properties costs about a "
        "third more space\nthan the data it describes is charged nothing "
        "for — and its operations are cents."
    )


if __name__ == "__main__":
    main()
