#!/usr/bin/env python3
"""The paper's introductory scenario: shared science on the cloud.

"Data from the US Census databases are released on the cloud ...
Scientists who wish to analyze this data for trends can download the
data set to their local compute grid, process it, and then upload the
results back to the cloud, easily sharing their results with fellow
researchers."  (§1)

Two research groups work against the same provenance-aware cloud:

* the Census Bureau publishes the raw tables;
* group A derives an age-trend analysis from them;
* group B, in a different lab (its own PASS client and WAL queue),
  builds a projection on top of group A's published results.

Because provenance travelled with every upload, group B can display the
complete ancestry of its projection — down to the Bureau's original
tables — without ever talking to group A.

    python examples/census_trends.py
"""

from repro.blob import SyntheticBlob
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.passlib.capture import PassSystem
from repro.query.engine import SimpleDBEngine
from repro.sim import Simulation


def publish_census(sim: Simulation) -> None:
    bureau = PassSystem(workload="census-release")
    for year in (1990, 2000):
        bureau.stage_input(
            f"census/{year}/population.tsv",
            SyntheticBlob(f"census-{year}", 40_000_000),
        )
    sim.store_events(bureau.drain_flushes())
    print("census bureau: published 2 raw tables")


def group_a_analysis(sim: Simulation) -> None:
    lab_a = PassSystem(workload="lab-a")
    with lab_a.process(
        "trend_analysis",
        argv="--cohort age --years 1990,2000",
        env={"LAB": "A", "GRID_NODE": "a-17"},
    ) as analysis:
        analysis.read("census/1990/population.tsv")
        analysis.read("census/2000/population.tsv")
        analysis.write(
            "labA/results/age_trends.csv", SyntheticBlob("trends-a", 900_000)
        )
        analysis.close("labA/results/age_trends.csv")
    sim.store_events(lab_a.drain_flushes())
    print("group A: uploaded labA/results/age_trends.csv")


def group_b_projection(account) -> None:
    # A different client host: its own architecture instance (and WAL
    # queue) over the same account — the paper's multi-client model.
    store_b = S3SimpleDBSQS(account, client_id="lab-b")
    store_b.provision()
    lab_b = PassSystem(workload="lab-b")

    downloaded = store_b.read("labA/results/age_trends.csv")
    print(
        f"group B: downloaded {downloaded.subject.encode()} "
        f"(consistent={downloaded.consistent})"
    )
    lab_b.stage_input("labA/results/age_trends.csv", downloaded.data)

    with lab_b.process(
        "project_2030", argv="--extrapolate 2030", env={"LAB": "B"}
    ) as projection:
        projection.read("labA/results/age_trends.csv")
        projection.write(
            "labB/results/projection_2030.csv", SyntheticBlob("proj-b", 120_000)
        )
        projection.close("labB/results/projection_2030.csv")
    for event in lab_b.drain_flushes():
        store_b.store(event)
    store_b.pump()
    print("group B: uploaded labB/results/projection_2030.csv")


def show_lineage(sim: Simulation) -> None:
    engine = SimpleDBEngine(sim.account)
    target = sim.read("labB/results/projection_2030.csv")
    print(f"\nancestry of {target.subject.encode()}:")
    frontier = [target.subject]
    seen = set()
    depth = 0
    while frontier and depth < 8:
        next_frontier = []
        for ref in frontier:
            measurement = engine.q1(ref)
            if not measurement.refs:
                continue
            attrs = sim.account.simpledb.get_attributes(
                "pass-prov", ref.item_name
            )
            for value in attrs.get("input", ()):
                print(f"  {'  ' * depth}{ref.encode()} <- {value}")
                from repro.passlib.records import ObjectRef

                parent = ObjectRef.decode(value)
                if parent not in seen:
                    seen.add(parent)
                    next_frontier.append(parent)
        frontier = next_frontier
        depth += 1


def main() -> None:
    sim = Simulation(architecture="s3+simpledb+sqs", seed=2026)
    publish_census(sim)
    group_a_analysis(sim)
    group_b_projection(sim.account)
    sim.settle()
    show_lineage(sim)
    print("\nnote: group B never spoke to group A — the lineage lives in the cloud")


if __name__ == "__main__":
    main()
