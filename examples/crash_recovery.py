#!/usr/bin/env python3
"""Crash a client mid-upload in each architecture and watch the aftermath.

This is Table 1's atomicity column as a narrative:

* **S3 standalone** — data and provenance travel in one PUT; the crash
  leaves either everything or nothing.
* **S3+SimpleDB** — provenance goes first (§4.2 protocol); a crash
  between the two calls leaves *orphan provenance*, fixable only by the
  paper's "inelegant" full-domain scavenger scan.
* **S3+SimpleDB+SQS** — the write-ahead log: an uncommitted transaction
  is simply ignored by the commit daemon, and the cleaner reaps the
  staged temp object after the 4-day window. Atomic, no scan.

    python examples/crash_recovery.py
"""

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET, PROV_DOMAIN
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone
from repro.errors import ClientCrash
from repro.passlib.capture import PassSystem
from repro.units import SECONDS_PER_DAY


def make_event():
    pas = PassSystem(workload="crashdemo")
    with pas.process("simulate", argv="--steps 1e9", env={"NODE": "c-3"}) as proc:
        proc.write("exp/run42/output.dat", b"irreplaceable results")
        return proc.close("exp/run42/output.dat")


def aftermath(account, subject) -> str:
    data = account.s3.exists_authoritative(DATA_BUCKET, subject.name)
    try:
        prov_item = account.simpledb.authoritative_item(
            PROV_DOMAIN, subject.item_name
        )
    except Exception:
        prov_item = None
    prov = prov_item is not None
    if not prov and data:
        record = account.s3.authoritative_record(DATA_BUCKET, subject.name)
        prov = record is not None and len(record.metadata_dict) > 1
    return f"data stored: {data}; provenance stored: {prov}"


def crash_standalone() -> None:
    print("=== S3 standalone: crash right before the single PUT ===")
    account = AWSAccount(seed=1, consistency=ConsistencyConfig.strong())
    plan = FaultPlan().crash_at("a1.store.before_put")
    store = S3Standalone(account, faults=plan)
    event = make_event()
    try:
        store.store(event)
    except ClientCrash as crash:
        print(f"client crashed at {crash.point!r}")
    print(aftermath(account, event.subject))
    print("single-PUT atomicity: nothing half-written\n")


def crash_simpledb() -> None:
    print("=== S3+SimpleDB: crash between provenance and data (§4.2) ===")
    account = AWSAccount(seed=2, consistency=ConsistencyConfig.strong())
    plan = FaultPlan().crash_at("a2.store.before_data_put")
    store = S3SimpleDB(account, faults=plan)
    event = make_event()
    try:
        store.store(event)
    except ClientCrash as crash:
        print(f"client crashed at {crash.point!r}")
    print(aftermath(account, event.subject))
    print("-> ORPHAN PROVENANCE: the read-correctness hole of Table 1")

    scavenger = S3SimpleDB(account)
    before = account.meter.snapshot()
    removed = scavenger.recover_orphans()
    cost = account.meter.snapshot() - before
    print(
        f"scavenger scan removed {removed} using "
        f"{cost.request_count()} requests (a full-domain scan — "
        f'the paper calls this "an inelegant solution")\n'
    )


def crash_wal() -> None:
    print("=== S3+SimpleDB+SQS: crash mid-log; the WAL absorbs it ===")
    account = AWSAccount(seed=3, consistency=ConsistencyConfig.strong())
    plan = FaultPlan().crash_at("a3.log.before_commit")
    store = S3SimpleDBSQS(account, faults=plan, commit_threshold=100)
    event = make_event()
    try:
        store.store(event)
    except ClientCrash as crash:
        print(f"client crashed at {crash.point!r}")
    store.restart_commit_daemon().drain()
    print(aftermath(account, event.subject))
    print("-> uncommitted transaction ignored: still atomic")

    temp_keys = [
        key
        for key in account.s3.authoritative_keys(DATA_BUCKET)
        if key.startswith(".pass/tmp/")
    ]
    print(f"staged temp objects awaiting cleanup: {len(temp_keys)}")
    account.clock.advance(4 * SECONDS_PER_DAY + 1)
    removed = store.cleaner_daemon.run_once()
    account.sqs.receive_message(store.queue_url, max_messages=10)
    print(
        f"after the 4-day window: cleaner removed {len(removed)} temp "
        f"object(s); WAL records expired "
        f"(queue now holds {account.sqs.exact_message_count(store.queue_url)})"
    )
    # And a healthy retry of the same upload goes straight through.
    retry_event = make_event()
    store.faults.disarm()
    store.store(retry_event)
    store.pump()
    result = store.read(retry_event.subject.name)
    print(f"re-upload after restart: consistent={result.consistent}")


def main() -> None:
    crash_standalone()
    crash_simpledb()
    crash_wal()


if __name__ == "__main__":
    main()
