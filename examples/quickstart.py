#!/usr/bin/env python3
"""Quickstart: store a provenance-aware pipeline in the cloud, query it.

Runs the full stack in under a second: a PASS-observed two-stage
pipeline is stored through the paper's best architecture
(S3 + SimpleDB + SQS), read back with the consistency check, and queried
through the indexed provenance store — then the same trace again over a
4-way sharded provenance domain to show the scatter-gather scale-out.

    python examples/quickstart.py
"""

from repro.passlib.capture import PassSystem
from repro.sim import Simulation


def main() -> None:
    # A simulated AWS account wired to the S3+SimpleDB+SQS architecture.
    sim = Simulation(architecture="s3+simpledb+sqs", seed=42)

    # Run an application under PASS observation: reads and writes become
    # provenance records; each close becomes a flush event.
    pas = PassSystem(workload="quickstart")
    pas.stage_input("data/readings.csv", b"sensor,value\nA,1.0\nB,2.4\n")
    with pas.process("clean", argv="--drop-nulls data/readings.csv") as clean:
        clean.read("data/readings.csv")
        clean.write("data/clean.csv", b"sensor,value\nA,1.0\nB,2.4\n")
        clean.close("data/clean.csv")
    with pas.process("model", argv="--fit linear data/clean.csv") as model:
        model.read("data/clean.csv")
        model.write("results/fit.json", b'{"slope": 1.4}')
        model.close("results/fit.json")
    events = list(pas.drain_flushes())

    # Ship every flush event through the architecture's store protocol
    # (WAL log phase + commit daemon), then read back with verification.
    stored = sim.store_events(events)
    print(f"stored {stored} objects with provenance")

    result = sim.read("results/fit.json")
    print(f"read {result.subject.encode()}: consistent={result.consistent}")
    for record in result.bundle.records:
        print(f"  {record}")

    # Ask the indexed backend for lineage: which files did 'clean' feed?
    engine = sim.query_engine()
    outputs = engine.q2_outputs_of("model")
    print(
        f"outputs of 'model': "
        f"{[ref.encode() for ref in outputs.refs]} "
        f"({outputs.operations} SimpleDB operations)"
    )

    print("\nAWS bill so far:")
    print(sim.bill())

    # Scale-out: the same deployment with the provenance domain sharded
    # 4 ways by consistent hash of each object's path. Writes route per
    # item; Q1 stays single-shard; Q2/Q3 scatter across every shard and
    # merge — with identical results and exact per-shard metering.
    sharded = Simulation(architecture="s3+simpledb+sqs", seed=42, shards=4)
    sharded.store_events(events)
    router = sharded.store.router
    print(f"\nsharded domains: {', '.join(router.domains)}")
    print(
        "results/fit.json routed to "
        f"shard {router.shard_index('results/fit.json')}"
    )
    sharded_outputs = sharded.query_engine().q2_outputs_of("model")
    assert set(sharded_outputs.refs) == set(outputs.refs)
    print(
        f"sharded Q2 agrees ({sharded_outputs.operations} ops, "
        f"per shard: "
        + ", ".join(f"{d}={ops}" for d, ops, _ in sharded_outputs.per_shard)
        + ")"
    )


if __name__ == "__main__":
    main()
