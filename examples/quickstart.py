#!/usr/bin/env python3
"""Quickstart: store a provenance-aware pipeline in the cloud, query it.

Runs the full stack in under a second: a PASS-observed two-stage
pipeline is stored through the paper's best architecture
(S3 + SimpleDB + SQS), read back with the consistency check, and queried
through the indexed provenance store.

    python examples/quickstart.py
"""

from repro.passlib.capture import PassSystem
from repro.sim import Simulation


def main() -> None:
    # A simulated AWS account wired to the S3+SimpleDB+SQS architecture.
    sim = Simulation(architecture="s3+simpledb+sqs", seed=42)

    # Run an application under PASS observation: reads and writes become
    # provenance records; each close becomes a flush event.
    pas = PassSystem(workload="quickstart")
    pas.stage_input("data/readings.csv", b"sensor,value\nA,1.0\nB,2.4\n")
    with pas.process("clean", argv="--drop-nulls data/readings.csv") as clean:
        clean.read("data/readings.csv")
        clean.write("data/clean.csv", b"sensor,value\nA,1.0\nB,2.4\n")
        clean.close("data/clean.csv")
    with pas.process("model", argv="--fit linear data/clean.csv") as model:
        model.read("data/clean.csv")
        model.write("results/fit.json", b'{"slope": 1.4}')
        model.close("results/fit.json")

    # Ship every flush event through the architecture's store protocol
    # (WAL log phase + commit daemon), then read back with verification.
    stored = sim.store_events(pas.drain_flushes())
    print(f"stored {stored} objects with provenance")

    result = sim.read("results/fit.json")
    print(f"read {result.subject.encode()}: consistent={result.consistent}")
    for record in result.bundle.records:
        print(f"  {record}")

    # Ask the indexed backend for lineage: which files did 'clean' feed?
    engine = sim.query_engine()
    outputs = engine.q2_outputs_of("model")
    print(
        f"outputs of 'model': "
        f"{[ref.encode() for ref in outputs.refs]} "
        f"({outputs.operations} SimpleDB operations)"
    )

    print("\nAWS bill so far:")
    print(sim.bill())


if __name__ == "__main__":
    main()
