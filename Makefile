# Developer entry points — no tox, no extra deps beyond pytest/hypothesis
# (pytest-benchmark needed only for the bench targets).
#
#   make test         tier-1 suite (what CI runs, fixed hypothesis profile)
#   make test-fast    same suite, fewer hypothesis examples
#   make bench-smoke  quick benchmark pass at a reduced live scale
#   make bench        full benchmark suite (regenerates benchmarks/results/)

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest
BENCH = cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -o python_files='bench_*.py'

.PHONY: test test-fast bench bench-smoke

test:
	HYPOTHESIS_PROFILE=ci $(PYTEST) -x -q

test-fast:
	HYPOTHESIS_PROFILE=dev $(PYTEST) -x -q

bench-smoke:
	$(BENCH) -q -x --benchmark-disable \
		bench_sharding_scaleout.py bench_concurrent_gather.py \
		bench_table3_query.py

bench:
	$(BENCH) -q
