# Developer entry points — no tox, no extra deps beyond pytest/hypothesis
# (pytest-benchmark needed only for the bench targets; ruff only for lint).
#
#   make test         tier-1 suite (what CI runs, fixed hypothesis profile)
#   make test-fast    same suite, fewer hypothesis examples
#   make bench-smoke  quick benchmark pass at a reduced live scale
#                     (BENCH_SMOKE_FILES picks the set — CI runs the same)
#   make bench        full benchmark suite (regenerates benchmarks/results/)
#   make bench-check  perf-regression gate: metered Q1/Q2/Q3 totals vs
#                     benchmarks/baselines.json (rebaseline with
#                     `PYTHONPATH=src python benchmarks/check_baselines.py --write`)
#   make lint         ruff check over src/tests/benchmarks (config: ruff.toml)
#
# Knobs the suite honours (also exercised by the CI matrix):
#   REPRO_QUERY_CONCURRENCY=N    scatter-gather worker-pool width
#   REPRO_BACKEND_PLACEMENT=...  default shard backend placement:
#                                sdb | ddb | mixed | "0:sdb,1:ddb"
#                                (mixed = even shards on SimpleDB, odd on
#                                the DynamoDB-style store; shard 0 stays sdb)
#   REPRO_DDB_INDEXES=...        global secondary indexes on DynamoDB-placed
#                                shards: comma-separated key attributes with
#                                optional '+included' projections — e.g.
#                                "name,input" (= 'auto'); unset/empty = none.
#                                With indexes, Q2/Q3 on ddb shards are GSI
#                                Queries (scan fallback when absent/stale);
#                                bench_multibackend.py quantifies Scan vs GSI
#                                vs SimpleDB-Select (it is in BENCH_SMOKE_FILES)

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest
BENCH = cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -o python_files='bench_*.py'

# The benchmarks bench-smoke runs (kept in one place so CI and local
# smoke stay in sync — extend this list as new benchmarks land).
BENCH_SMOKE_FILES = bench_sharding_scaleout.py bench_concurrent_gather.py \
	bench_multibackend.py bench_table3_query.py

.PHONY: test test-fast bench bench-smoke bench-check lint

test:
	HYPOTHESIS_PROFILE=ci $(PYTEST) -x -q

test-fast:
	HYPOTHESIS_PROFILE=dev $(PYTEST) -x -q

bench-smoke:
	$(BENCH) -q -x --benchmark-disable $(BENCH_SMOKE_FILES)

bench:
	$(BENCH) -q

bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/check_baselines.py

lint:
	ruff check src tests benchmarks
