# Developer entry points — no tox, no extra deps beyond pytest/hypothesis
# (pytest-benchmark needed only for the bench targets; ruff only for lint).
#
#   make test         tier-1 suite (what CI runs, fixed hypothesis profile)
#   make test-fast    same suite, fewer hypothesis examples
#   make bench-smoke  quick benchmark pass at a reduced live scale
#                     (BENCH_SMOKE_FILES picks the set — CI runs the same)
#   make bench        full benchmark suite (regenerates benchmarks/results/)
#   make bench-matrix workload × architecture compare sweep (`repro matrix
#                     --quick`): skewed/bursty/deep/uniform workloads over
#                     layout/placement/knob cells, R seeded reps per cell,
#                     median + bootstrap CI, trace-replay honesty check;
#                     writes benchmarks/results/matrix.{json,md}. Full grid:
#                     `PYTHONPATH=src python -m repro matrix`
#   make bench-check  perf-regression gate: metered Q1/Q2/Q3 totals vs
#                     benchmarks/baselines.json (rebaseline with
#                     `PYTHONPATH=src python benchmarks/check_baselines.py --write`)
#   make lint         ruff check over src/tests/benchmarks/examples
#                     (config: ruff.toml)
#   make lint-prov    provlint — the project's AST invariant checker
#                     (lock discipline, metering/billing coverage,
#                     determinism, ':v' wire-format ownership, router
#                     handles); stdlib-only, no install needed
#
# Knobs the suite honours (also exercised by the CI matrix):
#   REPRO_QUERY_CONCURRENCY=N    scatter-gather worker-pool width
#   REPRO_BACKEND_PLACEMENT=...  default shard backend placement:
#                                sdb | ddb | mixed | "0:sdb,1:ddb"
#                                (mixed = even shards on SimpleDB, odd on
#                                the DynamoDB-style store; shard 0 stays sdb)
#   REPRO_DDB_INDEXES=...        global secondary indexes on DynamoDB-placed
#                                shards: comma-separated key attributes with
#                                optional '+included' projections — e.g.
#                                "name,input" (= 'auto'); unset/empty = none.
#                                A '+*' include is the ALL projection (entries
#                                carry the whole item — what index-streamed
#                                migration reads need); an '@WCU[:RCU]' suffix
#                                gives the index its own provisioned capacity
#                                (default: maintenance charges the base table's
#                                window). With indexes, Q2/Q3 on ddb shards are
#                                GSI Queries (scan fallback when absent/stale);
#                                bench_multibackend.py quantifies Scan vs GSI
#                                vs SimpleDB-Select (it is in BENCH_SMOKE_FILES)
#   REPRO_WRITE_BATCH=N          group-commit width for the batched write
#                                path (also `repro demo --write-batch N`):
#                                the client coalescer buffers provenance
#                                puts and flushes them through the batch
#                                APIs (BatchPutAttributes / BatchWriteItem),
#                                and the A3 commit daemon applies rounds of
#                                N transactions with batched puts and
#                                DeleteMessageBatch. 1 (default) = the
#                                paper's one-request-per-item path,
#                                byte-identical on the meter;
#                                bench_group_commit.py quantifies the
#                                ops/item and USD/item savings at 8 and 25
#   REPRO_MIGRATION=...          default `repro demo --migrate` spec: e.g.
#                                "shards=8,placement=mixed" (online live
#                                migration — copy/double-write/catch-up/
#                                cutover/drop under traffic) or
#                                "shards=4,online=false" (offline quiet-window
#                                rebalance). bench_migration_live.py compares
#                                the two modes ops/bytes/USD under a writing
#                                fleet; `make test-migration` runs just the
#                                live-migration suites (what the CI
#                                live-migration job executes)
#   REPRO_READ_CACHE=SPEC        ElastiCache-style read-cache tier fronting
#                                the provenance backends (also `repro demo
#                                --read-cache [SPEC]`). Unset/empty/off
#                                (default) builds no cache — byte-identical
#                                on the meter; "1"/"on" = defaults (256 KiB
#                                node, 5 s staleness bound); a bare integer
#                                sets capacity; "capacity=N,staleness=S"
#                                sets both. One cache authority per account
#                                owns the node: bounded LRU with metered
#                                hits/misses/evictions on the elasticache.*
#                                billing keys, write-through invalidation on
#                                every put/delete path (group-commit batches
#                                and migration double-writes included), and
#                                version-fenced memoised Q2/Q3 closures so
#                                repeated queries collapse to a few cache
#                                consults. No entry is ever served older
#                                than the staleness bound.
#                                bench_read_cache.py quantifies the repeat
#                                collapse; the read-cache/* bench-gate keys
#                                pin it both ways.
#   REPRO_QUERY_PLANNER=MODE     access-path planning for the query engines
#                                (also `repro demo --planner MODE`):
#                                off (default) = the historical first-fit
#                                dispatch, byte-identical on the meter;
#                                first-fit = same paths, but every planned
#                                phase carries a predicted_cost next to the
#                                metered spend (the honesty baseline);
#                                cost = cheapest estimated path from
#                                PriceBook rates + incrementally-maintained
#                                DescribeTable/DomainMetadata statistics —
#                                composite "hash/range" GSIs (e.g.
#                                "name/nonce+*,type/nonce") then serve
#                                version-window queries as one range Query
#                                slice. bench_planner.py pins cost ≤
#                                first-fit and the prediction error bound;
#                                the planner/* bench-gate keys freeze both
#                                regimes.
#   REPRO_SANITIZE=1             opt-in runtime sanitizer: new_lock() hands
#                                out order-recording lock shims that check
#                                the documented service -> meter -> leaf
#                                partial order per thread, and the Meter
#                                flags spend landing inside a query with no
#                                active Meter.scoped context (leaks from
#                                per-shard accounting). Violations are
#                                recorded, not raised; the test conftest
#                                fails the test that grew the registry. Off
#                                (default) = byte-identical to the plain
#                                build. CI runs one matrix pass with it on.

PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest
BENCH = cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest -o python_files='bench_*.py'

# The benchmarks bench-smoke runs (kept in one place so CI and local
# smoke stay in sync — extend this list as new benchmarks land).
BENCH_SMOKE_FILES = bench_sharding_scaleout.py bench_concurrent_gather.py \
	bench_multibackend.py bench_migration_live.py bench_table3_query.py \
	bench_group_commit.py bench_read_cache.py bench_workload_matrix.py \
	bench_planner.py

# The live-migration suites alone (fleet writing while a layout
# migration runs) — what the CI live-migration job executes.
MIGRATION_TEST_FILES = tests/unit/test_migration_handle.py \
	tests/unit/test_live_migration.py tests/unit/test_index_capacity.py \
	tests/properties/test_prop_migration.py \
	tests/integration/test_fleet_live_migration.py

.PHONY: test test-fast test-migration bench bench-smoke bench-matrix bench-check lint lint-prov

test:
	HYPOTHESIS_PROFILE=ci $(PYTEST) -x -q

test-fast:
	HYPOTHESIS_PROFILE=dev $(PYTEST) -x -q

test-migration:
	HYPOTHESIS_PROFILE=ci $(PYTEST) -x -q $(MIGRATION_TEST_FILES)

bench-smoke:
	$(BENCH) -q -x --benchmark-disable $(BENCH_SMOKE_FILES)

bench:
	$(BENCH) -q

bench-matrix:
	PYTHONPATH=src $(PYTHON) -m repro matrix --quick --out benchmarks/results

bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/check_baselines.py

lint:
	ruff check src tests benchmarks examples

lint-prov:
	PYTHONPATH=src $(PYTHON) -m repro.devtools.provlint src tests benchmarks examples
