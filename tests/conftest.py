"""Shared fixtures: accounts, architectures, and miniature traces.

Also registers the hypothesis profiles the Makefile and CI select via
``HYPOTHESIS_PROFILE``: ``ci`` is derandomized (reproducible across
workers and reruns), ``dev`` trades examples for speed, and the
hypothesis default applies when the variable is unset.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

settings.register_profile("ci", max_examples=60, deadline=None, derandomize=True)
settings.register_profile("dev", max_examples=20, deadline=None)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.devtools import sanitize


@pytest.fixture(autouse=True)
def _sanitizer_gate():
    """Under REPRO_SANITIZE=1, fail the test whose run grew the
    sanitizer's violation registry — the sanitizer records instead of
    raising, so this is what localises an offending interleaving.
    Inert (no setup cost, no assertion) when the sanitizer is off."""
    if not sanitize.enabled():
        yield
        return
    before = len(sanitize.violations())
    yield
    grown = sanitize.violations()[before:]
    assert not grown, "sanitizer violations during this test:\n" + "\n".join(
        violation.render() for violation in grown
    )
from repro.blob import BytesBlob
from repro.core.base import RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone
from repro.passlib.capture import PassSystem


@pytest.fixture
def strong_account() -> AWSAccount:
    """A cloud with instantaneous replication (no consistency races)."""
    return AWSAccount(seed=1234, consistency=ConsistencyConfig.strong())


@pytest.fixture
def eventual_account() -> AWSAccount:
    """The adversarial cloud: replica propagation up to 2 s."""
    return AWSAccount(
        seed=1234,
        consistency=ConsistencyConfig.eventual(window=2.0, immediate_fraction=0.4),
    )


def provenance_oracle_item(account: AWSAccount, item_name: str):
    """Authoritative read of one provenance item through the *placed*
    backend of the default (environment-driven) single-shard layout.

    Atomicity/idempotency tests that oracle the provenance store should
    hold on every backend, so under ``REPRO_BACKEND_PLACEMENT=ddb``
    they must look at the DynamoDB-style table the store actually wrote
    — not assume SimpleDB.
    """
    from repro.sharding import ShardRouter

    router = ShardRouter(1)
    domain = router.domain_for_item(item_name)
    backend = account.provenance_backends()[router.backend_for(domain)]
    return backend.authoritative_item(domain, item_name)


def make_architecture(name: str, account: AWSAccount, **kwargs):
    factories = {
        "s3": S3Standalone,
        "s3+simpledb": S3SimpleDB,
        "s3+simpledb+sqs": S3SimpleDBSQS,
    }
    retry = kwargs.pop(
        "retry",
        RetryPolicy(attempts=12, wait=lambda: account.clock.advance(0.5)),
    )
    store = factories[name](account, retry=retry, **kwargs)
    store.provision()
    return store


@pytest.fixture(params=["s3", "s3+simpledb", "s3+simpledb+sqs"])
def any_architecture(request, strong_account):
    """Each architecture over a strongly consistent cloud."""
    return make_architecture(request.param, strong_account)


def tiny_trace():
    """input.csv → analyze → out.csv: three flush events."""
    pas = PassSystem(workload="tiny")
    pas.stage_input("data/input.csv", BytesBlob(b"a,b\n1,2\n"))
    with pas.process("analyze", argv="--fast") as proc:
        proc.read("data/input.csv")
        proc.write("data/out.csv", BytesBlob(b"sum\n3\n"))
        proc.close("data/out.csv")
    return pas.drain_flushes()


@pytest.fixture
def trace():
    return tiny_trace()
