"""Unit tests for the provenance-aware cloud advisor (§7 extension)."""

import random

import pytest

from repro.advisor import CacheReplay, ProvenanceAdvisor, WorkflowModel
from repro.advisor.model import DerivationSignature
from repro.blob import SyntheticBlob
from repro.passlib.capture import PassSystem
from repro.passlib.records import ObjectRef
from repro.workloads import ProvenanceChallengeWorkload


def paired_output_trace():
    """A process writing an img/hdr pair, then a consumer — the shape
    prefetching thrives on."""
    pas = PassSystem(workload="advisor")
    pas.stage_input("in/raw.dat", b"raw")
    with pas.process("convert", argv="--to analyze") as conv:
        conv.read("in/raw.dat")
        conv.write("out/scan.img", SyntheticBlob("img", 1000))
        conv.close("out/scan.img")
        conv.write("out/scan.hdr", b"hdr")
        conv.close("out/scan.hdr")
    with pas.process("view", argv="out/scan.img") as view:
        view.read("out/scan.img")
        view.read("out/scan.hdr")
        view.write("out/view.png", b"png")
        view.close("out/view.png")
    return pas.drain_flushes()


def duplicate_computation_trace():
    pas = PassSystem(workload="advisor")
    pas.stage_input("in/data.csv", b"rows")
    for run in ("first", "second"):
        with pas.process("summarise", argv="--mean", pid=99) as proc:
            proc.read("in/data.csv")
            proc.write(f"out/{run}.txt", b"mean=4.2")
            proc.close(f"out/{run}.txt")
    return pas.drain_flushes()


@pytest.fixture
def paired_advisor():
    events = paired_output_trace()
    return ProvenanceAdvisor.from_bundles(
        b for e in events for b in e.all_bundles()
    )


class TestWorkflowModel:
    def test_producer_and_siblings(self, paired_advisor):
        model = paired_advisor.model
        img = ObjectRef("out/scan.img", 1)
        hdr = ObjectRef("out/scan.hdr", 1)
        assert model.producer_of(img) is not None
        assert model.siblings_of(img) == {hdr}
        assert model.siblings_of(hdr) == {img}

    def test_transitions_learned(self, paired_advisor):
        model = paired_advisor.model
        assert model.transitions[("convert", "view")] == 2  # img + hdr reads
        assert model.likely_next_programs("convert") == ["view"]

    def test_fan_out_counts_transitives(self, paired_advisor):
        model = paired_advisor.model
        raw = ObjectRef("in/raw.dat", 1)
        # raw -> convert -> img/hdr -> view -> png : 5 dependents.
        assert model.fan_out(raw) == 5
        assert model.fan_out(ObjectRef("out/view.png", 1)) == 0

    def test_derivation_signature_stable(self):
        sig_a = DerivationSignature("tool", "-x", ("a:v0001",))
        sig_b = DerivationSignature("tool", "-x", ("a:v0001",))
        assert sig_a.digest() == sig_b.digest()
        assert sig_a.digest() != DerivationSignature("tool", "-y", ("a:v0001",)).digest()

    def test_duplicate_computations_found(self):
        events = duplicate_computation_trace()
        model = WorkflowModel().ingest_all(
            b for e in events for b in e.all_bundles()
        )
        groups = model.duplicate_computations()
        assert len(groups) == 1
        assert {r.name for r in groups[0]} == {"out/first.txt", "out/second.txt"}

    def test_co_access_components(self, paired_advisor):
        components = paired_advisor.model.co_access_components()
        biggest = components[0]
        assert {"in/raw.dat", "out/scan.img", "out/scan.hdr", "out/view.png"} <= biggest


class TestAdvisor:
    def test_prefetch_suggests_sibling_first(self, paired_advisor):
        img = ObjectRef("out/scan.img", 1)
        suggestions = paired_advisor.prefetch_for(img)
        assert suggestions[0] == ObjectRef("out/scan.hdr", 1)

    def test_prefetch_unknown_object_empty(self, paired_advisor):
        assert paired_advisor.prefetch_for(ObjectRef("ghost", 1)) == ()

    def test_eviction_prefers_leaf_objects(self, paired_advisor):
        raw = ObjectRef("in/raw.dat", 1)
        png = ObjectRef("out/view.png", 1)
        plan = paired_advisor.eviction_plan([raw, png], keep_fraction=0.5)
        assert plan == (png,)  # nothing derives from the png; raw anchors all

    def test_dedup_report(self):
        events = duplicate_computation_trace()
        advisor = ProvenanceAdvisor.from_bundles(
            b for e in events for b in e.all_bundles()
        )
        report = advisor.dedup_report()
        assert len(report) == 1 and len(report[0]) == 2

    def test_from_simpledb_equals_from_bundles(self):
        from repro.sim import Simulation

        events = paired_output_trace()
        # from_simpledb hydrates from the SimpleDB domain by name — pin
        # the placement so the items actually live there.
        sim = Simulation(architecture="s3+simpledb", seed=4, placement="sdb")
        sim.store_events(events, collect=False)
        hydrated = ProvenanceAdvisor.from_simpledb(sim.account)
        direct = ProvenanceAdvisor.from_bundles(
            b for e in events for b in e.all_bundles()
        )
        img = ObjectRef("out/scan.img", 1)
        assert hydrated.prefetch_for(img) == direct.prefetch_for(img)
        assert hydrated.model.transitions == direct.model.transitions

    def test_advise_combined(self, paired_advisor):
        advice = paired_advisor.advise(ObjectRef("out/scan.img", 1))
        assert not advice.is_empty
        assert advice.prefetch


class TestCacheReplay:
    def test_read_sequence_ordered(self):
        events = paired_output_trace()
        sequence = CacheReplay.read_sequence(events)
        names = [ref.name for ref, _ in sequence]
        assert names == ["in/raw.dat", "out/scan.img", "out/scan.hdr"]

    def test_advised_never_worse_on_fmri(self):
        events = list(
            ProvenanceChallengeWorkload(n_workflows=3).iter_events(
                random.Random("replay"), 1.0
            )
        )
        base, advised = CacheReplay(capacity=6).compare(events)
        assert advised.hit_rate >= base.hit_rate
        assert advised.prefetches_issued > 0

    def test_tiny_cache_still_correct(self):
        events = paired_output_trace()
        base, advised = CacheReplay(capacity=1).compare(events)
        assert base.accesses == advised.accesses == 3

    def test_no_oracle_peeking(self):
        """The advisor must not suggest objects whose provenance has not
        been flushed yet at access time: first access of each trace gets
        no prefetches."""
        events = paired_output_trace()
        replay = CacheReplay(capacity=8)
        advised = replay.replay(events, advised=True)
        # Prefetches can only come from already-flushed provenance, so
        # fewer were issued than total accesses.
        assert advised.prefetches_issued <= advised.accesses
