"""The ``repro.bench.matrix`` sweep: grid shape, statistics, honesty.

The matrix is library code the CLI, the benchmark suite, and the
baseline gate all drive, so its contract is pinned here: deterministic
reports, bootstrap CIs that bracket the median, ``replay_ok`` true on
healthy cells, and the headline comparison — Zipfian read probes hit
the cache far more than uniform ones on the *same* cell.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bench import MatrixCell, WorkloadSpec, run_matrix
from repro.bench.matrix import quick_cells, quick_workloads, summarize
from repro.cli import main
from repro.workloads import BlastWorkload, ZipfianFleetWorkload


def tiny_grid():
    return quick_workloads(scale=0.4), quick_cells()


# -- statistics --------------------------------------------------------------


def test_summarize_brackets_the_median():
    stats = summarize([3.0, 1.0, 2.0, 5.0, 4.0], random.Random("ci"))
    assert stats["min"] == 1.0
    assert stats["median"] == 3.0
    assert 1.0 <= stats["ci_low"] <= stats["median"] <= stats["ci_high"] <= 5.0
    assert stats["values"] == [3.0, 1.0, 2.0, 5.0, 4.0]


def test_summarize_is_deterministic():
    values = [7.0, 9.0, 8.0, 11.0]
    assert summarize(values, random.Random("x")) == summarize(
        values, random.Random("x")
    )


def test_summarize_rejects_zero_repetitions():
    with pytest.raises(ValueError):
        summarize([], random.Random("x"))


# -- the sweep ---------------------------------------------------------------


def test_matrix_covers_the_grid_and_replays_byte_identically():
    workloads, cells = tiny_grid()
    report = run_matrix(workloads, cells, reps=2, seed=3, probe_reads=12)

    assert len(report.grid) == len(workloads) * len(cells)
    for entry in report.grid:
        assert entry.replay_ok is True
        for metric in ("events", "load_ops", "load_usd", "q2_ops", "q3_ops",
                       "probe_ops", "q2_latency", "q3_latency"):
            stats = entry.stats[metric]
            assert stats["min"] <= stats["median"]
            assert stats["ci_low"] <= stats["ci_high"]
            assert len(stats["values"]) == 2

    cached = report.cell("zipfian", "sdb-4-cache")
    assert "probe_hit_rate" in cached.stats
    uncached = report.cell("zipfian", "sdb-1")
    assert "probe_hit_rate" not in uncached.stats
    with pytest.raises(KeyError):
        report.cell("zipfian", "no-such-cell")


def test_matrix_report_is_deterministic():
    workloads, cells = tiny_grid()
    report_a = run_matrix(workloads, cells, reps=2, seed=3, probe_reads=12)
    random.seed("adversarial interleaving")
    random.random()
    workloads, cells = tiny_grid()
    report_b = run_matrix(workloads, cells, reps=2, seed=3, probe_reads=12)
    assert report_a.to_json() == report_b.to_json()


def test_matrix_rejects_zero_reps():
    workloads, cells = tiny_grid()
    with pytest.raises(ValueError):
        run_matrix(workloads, cells, reps=0)


def test_markdown_report_renders_every_cell():
    workloads, cells = tiny_grid()
    report = run_matrix(workloads, cells, reps=1, seed=3, probe_reads=8)
    markdown = report.to_markdown()
    assert "byte-identical" in markdown
    for spec in workloads:
        assert spec.key in markdown
    for cell in cells:
        assert cell.key in markdown


def test_zipfian_hit_rate_far_exceeds_uniform():
    """The acceptance headline: skew is what pays for the cache."""
    cells = [MatrixCell(key="cache", shards=2, read_cache="on")]
    workloads = [
        WorkloadSpec(
            key="zipfian",
            workload=ZipfianFleetWorkload(
                n_tenants=6, keys_per_tenant=24, n_ops=120, s=1.3
            ),
            program="ingest",
        ),
        WorkloadSpec(
            key="uniform",
            workload=BlastWorkload(n_runs=3, queries_per_run=16),
            program="blast",
        ),
    ]
    report = run_matrix(
        workloads, cells, reps=1, seed=0, probe_reads=40, check_replay=False
    )
    zipf_hit = report.cell("zipfian", "cache").stats["probe_hit_rate"]["median"]
    uniform_hit = report.cell("uniform", "cache").stats["probe_hit_rate"]["median"]
    assert zipf_hit > uniform_hit + 0.15


# -- the CLI -----------------------------------------------------------------


def test_cli_matrix_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "results"
    code = main(
        [
            "matrix",
            "--quick",
            "--scale",
            "0.4",
            "--reps",
            "1",
            "--probe-reads",
            "8",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    assert "| workload | cell |" in capsys.readouterr().out
    payload = json.loads((out / "matrix.json").read_text())
    assert payload["reps"] == 1
    assert {entry["workload"] for entry in payload["grid"]} == {
        "zipfian",
        "deep-lineage",
    }
    assert all(entry["replay_ok"] for entry in payload["grid"])
    assert (out / "matrix.md").read_text().startswith("# Workload × architecture")


def test_cli_matrix_rejects_unknown_axis_keys(tmp_path):
    code = main(
        ["matrix", "--quick", "--cells", "no-such-cell", "--out", str(tmp_path)]
    )
    assert code == 2
    assert not (tmp_path / "matrix.json").exists()
