"""Unit tests for record serialization (S3 metadata / SimpleDB / wire)."""

import pytest

from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr
from repro.passlib import serializer
from repro.units import KB, S3_MAX_METADATA_SIZE


def event_with_env(env_bytes: int = 0, n_inputs: int = 1):
    pas = PassSystem(workload="t")
    for i in range(n_inputs):
        pas.stage_input(f"in{i}.dat", f"data{i}".encode())
    pas.drain_flushes()
    env = {"BIG": "x" * env_bytes} if env_bytes else {"PATH": "/bin"}
    with pas.process("tool", argv="-v", env=env) as proc:
        for i in range(n_inputs):
            proc.read(f"in{i}.dat")
        proc.write("out.dat", b"result")
        return proc.close("out.dat")


def records_of(bundle):
    return sorted(str(r) for r in bundle.records)


class TestS3Metadata:
    def test_roundtrip_without_overflow(self):
        event = event_with_env()
        payload = serializer.to_s3_metadata(event)
        assert payload.overflow == ()
        own, ancestors = serializer.bundles_from_s3_metadata(
            event.subject, payload.metadata, lambda key: pytest.fail("no overflow")
        )
        assert records_of(own) == records_of(event.bundle)
        assert len(ancestors) == len(event.ancestors)
        assert records_of(ancestors[0]) == records_of(event.ancestors[0])

    def test_values_over_1kb_spill(self):
        event = event_with_env(env_bytes=3 * KB)
        payload = serializer.to_s3_metadata(event)
        assert len(payload.overflow) == 1
        assert payload.overflow[0].size >= 3 * KB
        assert payload.metadata_size <= S3_MAX_METADATA_SIZE
        store = {o.key: o.value for o in payload.overflow}
        own, ancestors = serializer.bundles_from_s3_metadata(
            event.subject, payload.metadata, store.__getitem__
        )
        assert records_of(ancestors[0]) == records_of(event.ancestors[0])

    def test_metadata_fits_2kb_even_with_many_records(self):
        event = event_with_env(n_inputs=30)
        payload = serializer.to_s3_metadata(event)
        assert payload.metadata_size <= S3_MAX_METADATA_SIZE

    def test_repeated_attributes_keyed_distinctly(self):
        event = event_with_env(n_inputs=3)
        payload = serializer.to_s3_metadata(event)
        input_keys = [k for k in payload.metadata if k.startswith("a0.input")]
        assert len(input_keys) == 3

    def test_nonce_included(self):
        event = event_with_env()
        payload = serializer.to_s3_metadata(event)
        assert payload.metadata["nonce"] == event.nonce

    def test_overflow_keys_deterministic(self):
        event = event_with_env(env_bytes=2 * KB)
        first = serializer.to_s3_metadata(event)
        second = serializer.to_s3_metadata(event)
        assert [o.key for o in first.overflow] == [o.key for o in second.overflow]


class TestSimpleDBItems:
    def test_one_item_per_bundle(self):
        event = event_with_env()
        items = serializer.to_simpledb_items(event)
        assert len(items) == 1 + len(event.ancestors)
        assert items[-1].item_name == event.subject.item_name

    def test_file_item_carries_md5_and_nonce(self):
        event = event_with_env()
        item = serializer.to_simpledb_items(event)[-1]
        attrs = dict(item.attributes)
        assert attrs[Attr.NONCE] == event.nonce
        assert attrs[Attr.MD5] == __import__(
            "repro.passlib.records", fromlist=["consistency_token"]
        ).consistency_token(event.data.md5(), event.nonce)

    def test_values_over_1kb_spill(self):
        event = event_with_env(env_bytes=2 * KB)
        items = serializer.to_simpledb_items(event)
        process_item = items[0]
        assert len(process_item.overflow) == 1
        values = [v for _, v in process_item.attributes]
        assert any(v.startswith(serializer.POINTER_PREFIX) for v in values)
        assert all(len(v.encode()) <= KB for v in values)

    def test_roundtrip(self):
        event = event_with_env(env_bytes=2 * KB, n_inputs=2)
        for bundle, item in zip(
            event.all_bundles(), serializer.to_simpledb_items(event)
        ):
            attrs: dict[str, list[str]] = {}
            for name, value in item.attributes:
                attrs.setdefault(name, []).append(value)
            store = {o.key: o.value for o in item.overflow}
            decoded = serializer.bundle_from_item(
                item.item_name,
                {k: tuple(v) for k, v in attrs.items()},
                store.__getitem__,
            )
            assert records_of(decoded) == records_of(bundle)
            assert decoded.kind == bundle.kind


class TestWireFormat:
    def test_record_roundtrip(self):
        event = event_with_env()
        for record in event.all_records():
            wire = serializer.record_to_wire(record)
            assert serializer.record_from_wire(wire) == record

    def test_bundle_roundtrip(self):
        event = event_with_env(n_inputs=2)
        for bundle in event.all_bundles():
            decoded = serializer.bundle_from_wire(
                serializer.wire_loads(
                    serializer.wire_dumps(serializer.bundle_to_wire(bundle))
                )
            )
            assert records_of(decoded) == records_of(bundle)
            assert decoded.subject == bundle.subject

    def test_wire_json_is_compact_and_stable(self):
        event = event_with_env()
        payload = serializer.bundle_to_wire(event.bundle)
        text = serializer.wire_dumps(payload)
        assert " " not in text.split('"argv"')[0]
        assert serializer.wire_dumps(payload) == text
