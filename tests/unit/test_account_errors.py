"""Unit tests for the account facade and the error hierarchy."""


from repro import errors
from repro.aws.account import AWSAccount, ConsistencyConfig


class TestConsistencyConfig:
    def test_strong_profile(self):
        config = ConsistencyConfig.strong()
        assert config.window == 0.0
        assert config.delay_model().is_strong
        assert config.sqs_sample_fraction == 1.0

    def test_eventual_profile(self):
        config = ConsistencyConfig.eventual(window=3.0)
        model = config.delay_model()
        assert not model.is_strong
        assert model.max_delay == 3.0


class TestAWSAccount:
    def test_services_share_clock_and_meter(self):
        account = AWSAccount(seed=1)
        account.s3.create_bucket("b")
        account.s3.put("b", "k", b"x")
        url = account.sqs.create_queue("q")
        account.sqs.send_message(url, "m")
        account.simpledb.create_domain("d")
        usage = account.meter.snapshot()
        assert usage.request_count("s3") >= 2
        assert usage.request_count("sqs") >= 2
        assert usage.request_count("simpledb") >= 1

    def test_same_seed_same_behaviour(self):
        def run(seed):
            account = AWSAccount(
                seed=seed, consistency=ConsistencyConfig.eventual(window=2.0)
            )
            account.s3.create_bucket("b")
            account.s3.put("b", "k", b"x")
            observations = []
            for _ in range(10):
                try:
                    account.s3.get("b", "k")
                    observations.append(True)
                except errors.NoSuchKey:
                    observations.append(False)
            return observations

        assert run(7) == run(7)
        # Different seeds give independent replica behaviour eventually.
        trials = {tuple(run(seed)) for seed in range(6)}
        assert len(trials) > 1

    def test_quiesce_converges(self):
        account = AWSAccount(
            seed=2, consistency=ConsistencyConfig.eventual(window=5.0)
        )
        account.s3.create_bucket("b")
        for i in range(10):
            account.s3.put("b", f"k{i}", b"x")
        account.quiesce()
        for i in range(10):
            assert account.s3.get("b", f"k{i}").bytes() == b"x"

    def test_bill_renders_total(self):
        account = AWSAccount(seed=3)
        account.s3.create_bucket("b")
        assert "TOTAL" in account.bill()


class TestErrorHierarchy:
    def test_aws_errors_are_repro_errors(self):
        for exc_type in (
            errors.NoSuchKey,
            errors.NoSuchDomain,
            errors.MessageTooLong,
            errors.ServiceUnavailable,
        ):
            assert issubclass(exc_type, errors.AWSError)
            assert issubclass(exc_type, errors.ReproError)

    def test_client_crash_not_an_aws_error(self):
        # Crashes are client-side events; catching AWSError must not
        # accidentally swallow them.
        assert not issubclass(errors.ClientCrash, errors.AWSError)
        crash = errors.ClientCrash("some.point")
        assert crash.point == "some.point"

    def test_architecture_errors(self):
        for exc_type in (
            errors.ReadCorrectnessViolation,
            errors.OrphanProvenance,
            errors.TransactionAborted,
        ):
            assert issubclass(exc_type, errors.ArchitectureError)

    def test_error_codes_mirror_aws(self):
        assert errors.NoSuchKey.code == "NoSuchKey"
        assert errors.NoSuchQueue.code.startswith("AWS.SimpleQueueService")

    def test_pass_errors(self):
        for exc_type in (errors.UnknownObject, errors.ObjectClosed, errors.CacheMiss):
            assert issubclass(exc_type, errors.PassError)
