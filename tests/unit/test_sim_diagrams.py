"""Unit tests for the Simulation facade and the Figure 1-3 diagrams."""

import pytest

from repro.graph.diagrams import (
    diagram_summary,
    render_ascii,
    render_dot,
    validate_diagram,
)
from repro.sim import Simulation
from repro.workloads import BlastWorkload


class TestSimulation:
    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            Simulation(architecture="s3+dynamo")

    @pytest.mark.parametrize("arch", ["s3", "s3+simpledb", "s3+simpledb+sqs"])
    def test_workload_roundtrip(self, arch):
        sim = Simulation(architecture=arch, seed=3)
        stored = sim.run_workload(BlastWorkload(n_runs=1, queries_per_run=2), scale=1.0)
        assert stored == sim.events_stored > 0
        result = sim.read("blast/out/run0/q0000.blast")
        assert result.consistent

    def test_stats_collected(self):
        sim = Simulation(seed=3)
        sim.run_workload(BlastWorkload(n_runs=1, queries_per_run=2), scale=1.0)
        assert sim.stats.n_objects == sim.events_stored

    def test_query_engine_matches_architecture(self):
        from repro.query.engine import S3ScanEngine, SimpleDBEngine

        assert isinstance(Simulation(architecture="s3").query_engine(), S3ScanEngine)
        assert isinstance(
            Simulation(architecture="s3+simpledb").query_engine(), SimpleDBEngine
        )

    def test_bill_renders(self):
        sim = Simulation(seed=3)
        sim.run_workload(BlastWorkload(n_runs=1, queries_per_run=1), scale=1.0)
        assert "TOTAL" in sim.bill()


class TestDiagrams:
    @pytest.fixture(params=["s3", "s3+simpledb", "s3+simpledb+sqs"])
    def store(self, request):
        return Simulation(architecture=request.param).store

    def test_diagram_valid(self, store):
        assert validate_diagram(store) == []

    def test_ascii_mentions_every_component(self, store):
        art = render_ascii(store)
        for component in store.components():
            assert component.name in art

    def test_dot_well_formed(self, store):
        dot = render_dot(store)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for flow in store.flows():
            assert f'"{flow.source}" -> "{flow.target}"' in dot

    def test_figure_progression(self):
        """Figures 1→3 add components: S3 < +SimpleDB < +SQS+daemons."""
        sizes = [
            diagram_summary(Simulation(architecture=arch).store)["components"]
            for arch in ("s3", "s3+simpledb", "s3+simpledb+sqs")
        ]
        assert sizes[0] < sizes[1] < sizes[2]
