"""Unit tests: the write coalescer, daemon group commit, and the three
write-path bugfixes that ride along with the group-commit PR.

The bugfixes each get a regression test:

1. ``CommitDaemon`` parsed the data record's subject with a hand-rolled
   ``rsplit(":v", 1)`` instead of the serialiser's ``ObjectRef.decode``
   — silently mangling corrupted subjects into *other objects'* S3 keys.
2. ``CommitDaemon._applied_txns`` grew without bound — one entry per
   transaction for the daemon's lifetime.
3. ``CleanerDaemon.run_once`` snapshotted the clock once before its
   pagination loop, under-deleting objects that crossed the age
   threshold while a long scan was still running.
"""

import pytest

from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.core.base import DATA_BUCKET, TEMP_PREFIX
from repro.core.coalesce import WRITE_BATCH_ENV, WriteCoalescer, resolve_write_batch
from repro.core.daemons import CleanerDaemon, CommitDaemon
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.wal import AssembledTransaction
from repro.migration.handle import RouterHandle
from repro.passlib.capture import PassSystem
from repro.sharding import ShardRouter
from repro.units import SQS_RETENTION_SECONDS


def make_events(n_files: int, prefix: str = "out"):
    pas = PassSystem(workload="gc")
    events = []
    for i in range(n_files):
        with pas.process(f"tool{i}", env={"E": "x"}) as proc:
            proc.write(f"{prefix}/f{i}.dat", f"payload {i}".encode())
            events.append(proc.close(f"{prefix}/f{i}.dat"))
    return events


# ---------------------------------------------------------------------------
# The coalescer
# ---------------------------------------------------------------------------


class TestResolveWriteBatch:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WRITE_BATCH_ENV, "4")
        assert resolve_write_batch(8) == 8

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(WRITE_BATCH_ENV, "8")
        assert resolve_write_batch() == 8

    def test_unset_is_one(self, monkeypatch):
        monkeypatch.delenv(WRITE_BATCH_ENV, raising=False)
        assert resolve_write_batch() == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_write_batch(0)


def sdb_router(shards=1, placement="sdb"):
    """These suites count SimpleDB requests and read SimpleDB oracles,
    so the layout pins the sdb placement whatever the environment's
    ``REPRO_BACKEND_PLACEMENT`` selects (the mixed-placement test passes
    its placement explicitly)."""
    return RouterHandle(ShardRouter(shards, placement=placement))


def coalescer(account, batch, shards=1, placement="sdb"):
    routing = sdb_router(shards, placement)
    routing.provision(account.provenance_backends())
    return WriteCoalescer(account, routing, batch)


class TestWriteCoalescer:
    def test_batch_one_writes_through(self, strong_account):
        c = coalescer(strong_account, 1)
        c.put("item_v0001", [("type", "file")])
        assert c.pending == 0
        assert c.flushes == 0  # legacy path, not a batched flush
        sdb = strong_account.simpledb
        assert sdb.authoritative_item("pass-prov", "item_v0001") is not None

    def test_flush_on_size(self, strong_account):
        c = coalescer(strong_account, 3)
        sdb = strong_account.simpledb
        for i in range(2):
            c.put(f"i{i}_v0001", [("k", "v")])
        assert c.pending == 2  # buffered: nothing visible yet
        assert sdb.authoritative_item("pass-prov", "i0_v0001") is None
        c.put("i2_v0001", [("k", "v")])
        assert c.pending == 0
        assert c.flushes == 1
        for i in range(3):
            assert sdb.authoritative_item("pass-prov", f"i{i}_v0001") is not None

    def test_flush_on_close(self, strong_account):
        c = coalescer(strong_account, 10)
        c.put("i_v0001", [("k", "v")])
        assert c.close() == 1
        assert c.pending == 0
        assert (
            strong_account.simpledb.authoritative_item("pass-prov", "i_v0001")
            is not None
        )

    def test_flush_splits_per_shard_site(self, strong_account):
        """A flush spanning shards becomes one batch call per site, and
        every item lands on the shard the router owns it on."""
        c = coalescer(strong_account, 16, shards=4)
        router = c.routing.current
        before = strong_account.meter.snapshot()
        for i in range(16):
            c.put(f"obj{i}_v0001", [("k", str(i))])
        delta = strong_account.meter.snapshot() - before
        domains = {router.domain_for_item(f"obj{i}_v0001") for i in range(16)}
        assert len(domains) > 1  # the workload really did span shards
        assert delta.request_count(billing.SDB, "BatchPutAttributes") == len(
            domains
        )
        for i in range(16):
            domain = router.domain_for_item(f"obj{i}_v0001")
            item = strong_account.simpledb.authoritative_item(
                domain, f"obj{i}_v0001"
            )
            assert item == {"k": (str(i),)}

    def test_flush_splits_per_backend(self, strong_account):
        """A mixed placement batches per backend: sdb shards get
        BatchPutAttributes, ddb shards get BatchWriteItem."""
        c = coalescer(strong_account, 8, shards=2, placement="mixed")
        before = strong_account.meter.snapshot()
        for i in range(8):
            c.put(f"obj{i}_v0001", [("k", str(i))])
        delta = strong_account.meter.snapshot() - before
        assert delta.request_count(billing.SDB, "BatchPutAttributes") == 1
        assert delta.request_count(billing.DDB, "BatchWriteItem") == 1


class TestA2Coalescing:
    def test_batched_store_reads_back_identically(self, strong_account):
        events = make_events(6)
        store = S3SimpleDB(strong_account, write_batch=8)
        store.provision()
        for event in events:
            store.store(event)
        assert store.coalescer.pending == 0  # drained before each data PUT
        for event in events:
            result = store.read(event.subject.name)
            assert result.consistent
            assert result.data.md5() == event.data.md5()

    def test_batching_reduces_sdb_requests(self):
        def run(write_batch):
            account = AWSAccount(seed=11, consistency=ConsistencyConfig.strong())
            store = S3SimpleDB(account, write_batch=write_batch, router=sdb_router())
            store.provision()
            for event in make_events(6):
                store.store(event)
            return account.meter.snapshot().request_count(billing.SDB)

        assert run(8) < run(1)


# ---------------------------------------------------------------------------
# Daemon group commit
# ---------------------------------------------------------------------------


def run_a3(write_batch, n_files=8, seed=3):
    account = AWSAccount(seed=seed, consistency=ConsistencyConfig.strong())
    store = S3SimpleDBSQS(
        account, commit_threshold=1000, write_batch=write_batch,
        router=sdb_router(),
    )
    store.provision()
    for event in make_events(n_files):
        store.store(event)
    store.pump()
    account.quiesce()
    return account, store


class TestDaemonGroupCommit:
    def test_group_commit_state_matches_single(self):
        single_account, single_store = run_a3(1)
        group_account, group_store = run_a3(25)
        events = make_events(8)
        for event in events:
            a = single_account.s3.authoritative_record(
                DATA_BUCKET, event.subject.name
            )
            b = group_account.s3.authoritative_record(
                DATA_BUCKET, event.subject.name
            )
            assert a is not None and b is not None
            assert a.etag == b.etag
            assert a.metadata_dict == b.metadata_dict
            assert single_account.simpledb.authoritative_item(
                "pass-prov", event.subject.item_name
            ) == group_account.simpledb.authoritative_item(
                "pass-prov", event.subject.item_name
            )
        assert single_account.sqs.exact_message_count(single_store.queue_url) == 0
        assert group_account.sqs.exact_message_count(group_store.queue_url) == 0
        assert (
            group_store.commit_daemon.stats.transactions_applied
            == single_store.commit_daemon.stats.transactions_applied
        )

    def test_group_commit_saves_requests(self):
        def spend(write_batch):
            account, _ = run_a3(write_batch)
            usage = account.meter.snapshot()
            return (
                usage.request_count(billing.SDB),
                usage.request_count(billing.SQS),
            )

        sdb_single, sqs_single = spend(1)
        sdb_group, sqs_group = spend(25)
        assert sdb_group < sdb_single
        assert sqs_group < sqs_single

    def test_batched_deletes_drain_queue(self):
        account, store = run_a3(8, n_files=12)
        assert account.sqs.exact_message_count(store.queue_url) == 0
        assert store.commit_daemon.stats.transactions_applied == 12


# ---------------------------------------------------------------------------
# Bugfix 1: subject parsing in the commit daemon
# ---------------------------------------------------------------------------


class TestSubjectParsing:
    def test_pathological_paths_land_on_their_own_keys(self):
        """Names containing or ending in ':v<digits>' must COPY to
        exactly themselves (the serialiser encoding round-trips)."""
        names = ["run:v1/out.dat", "weird:v0002", "a:v"]
        account = AWSAccount(seed=5, consistency=ConsistencyConfig.strong())
        store = S3SimpleDBSQS(account, commit_threshold=1000, write_batch=1)
        store.provision()
        pas = PassSystem(workload="gc")
        events = []
        for name in names:
            with pas.process("tool", env={"E": "x"}) as proc:
                proc.write(name, b"payload")
                events.append(proc.close(name))
        for event in events:
            store.store(event)
        store.pump()
        account.quiesce()
        for name in names:
            assert account.s3.exists_authoritative(DATA_BUCKET, name)
            result = store.read(name)
            assert result.consistent

    def test_malformed_subject_raises_instead_of_mangling(self):
        """A corrupted subject must surface, not silently COPY over a
        *different* object's data: the old ``rsplit(":v", 1)`` turned
        'conf/apache:vhost' into 'conf/apache'."""
        txn = AssembledTransaction(
            txn_id="t", data={"subject": "conf/apache:vhost"}
        )
        with pytest.raises(ValueError):
            CommitDaemon._destination_key(txn)


# ---------------------------------------------------------------------------
# Bugfix 2: bounded applied-transaction memory
# ---------------------------------------------------------------------------


class TestAppliedTxnRetention:
    def daemon(self, strong_account):
        url = strong_account.sqs.create_queue("wal-x")
        return CommitDaemon(strong_account, url)

    def test_entries_prune_past_retention(self, strong_account):
        daemon = self.daemon(strong_account)
        daemon._mark_applied("old-1")
        daemon._mark_applied("old-2")
        strong_account.clock.advance(SQS_RETENTION_SECONDS + 1)
        daemon._mark_applied("new-1")
        assert set(daemon._applied_txns) == {"new-1"}

    def test_memory_stays_bounded_across_rounds(self, strong_account):
        """One transaction per simulated hour for 20 simulated days:
        memory holds only the retention window (~96 entries), not all
        480."""
        daemon = self.daemon(strong_account)
        for i in range(480):
            daemon._mark_applied(f"txn-{i:04d}")
            strong_account.clock.advance(3600.0)
        window_hours = SQS_RETENTION_SECONDS / 3600
        assert len(daemon._applied_txns) <= window_hours + 1

    def test_duplicates_detected_inside_window(self):
        """The cap must not break duplicate-replay detection: a daemon
        that crashes after applying but before deleting messages still
        counts the replay."""
        account = AWSAccount(seed=9, consistency=ConsistencyConfig.strong())
        store = S3SimpleDBSQS(account, commit_threshold=1000)
        store.provision()
        for event in make_events(2):
            store.store(event)
        daemon = store.commit_daemon
        daemon.drain()
        assert daemon.stats.duplicate_applies == 0
        # Simulate undeleted messages coming back: re-apply the same
        # transactions through the same daemon instance.
        account.clock.advance(200.0)
        assert set(daemon._applied_txns)  # remembered inside the window


# ---------------------------------------------------------------------------
# Bugfix 3: cleaner clock drift across pages
# ---------------------------------------------------------------------------


class TestCleanerClockPerPage:
    def test_objects_crossing_threshold_mid_scan_are_deleted(self):
        """With one key per LIST page and the clock advancing on every
        request (real scans take real time), keys whose age crosses the
        threshold while earlier pages are processed must still be
        deleted in the same run."""
        account = AWSAccount(seed=2, consistency=ConsistencyConfig.strong())
        account.s3.create_bucket(DATA_BUCKET)
        keys = [f"{TEMP_PREFIX}txn/{i:02d}.tmp" for i in range(6)]
        for key in keys:
            account.s3.put(DATA_BUCKET, key, b"x")
        max_age = 100.0
        # Old snapshot semantics: age(now) = 98 < 100 for every key, so
        # a frozen `now` deletes nothing. Each page costs requests that
        # advance the clock, so later pages cross the threshold.
        account.clock.advance(98.0)
        faults = account.request_faults
        original = faults.before_request

        def advancing(service, op):
            account.clock.advance(1.0)
            original(service, op)

        faults.before_request = advancing
        try:
            cleaner = CleanerDaemon(account, max_age_seconds=max_age, page_size=1)
            removed = cleaner.run_once()
        finally:
            faults.before_request = original
        # The first key is examined one request in (age 99) and
        # survives; by the second page the clock has crossed 100, so
        # every later key is reaped. The old frozen-`now` loop deleted
        # *nothing* here.
        assert removed == keys[1:]
        assert cleaner.stats.objects_removed == len(keys) - 1

    def test_boundary_is_inclusive(self):
        """An object exactly max_age old is reaped (>=, not >)."""
        account = AWSAccount(seed=2, consistency=ConsistencyConfig.strong())
        account.s3.create_bucket(DATA_BUCKET)
        account.s3.put(DATA_BUCKET, f"{TEMP_PREFIX}t/exact.tmp", b"x")
        account.clock.advance(50.0)
        cleaner = CleanerDaemon(account, max_age_seconds=50.0)
        assert cleaner.run_once() == [f"{TEMP_PREFIX}t/exact.tmp"]

    def test_young_objects_survive(self):
        account = AWSAccount(seed=2, consistency=ConsistencyConfig.strong())
        account.s3.create_bucket(DATA_BUCKET)
        account.s3.put(DATA_BUCKET, f"{TEMP_PREFIX}t/young.tmp", b"x")
        account.clock.advance(10.0)
        cleaner = CleanerDaemon(account, max_age_seconds=50.0)
        assert cleaner.run_once() == []
        assert account.s3.exists_authoritative(
            DATA_BUCKET, f"{TEMP_PREFIX}t/young.tmp"
        )
