"""Unit tests for fault injection."""

import pytest

from repro.aws.faults import FaultPlan, RequestFaults
from repro.errors import ClientCrash, ServiceUnavailable


class TestFaultPlan:
    def test_inert_plan_logs_without_crashing(self):
        plan = FaultPlan()
        plan.check("step.one")
        plan.check("step.two")
        plan.check("step.one")
        assert plan.log == ["step.one", "step.two", "step.one"]
        assert plan.points_seen == ["step.one", "step.two"]

    def test_crash_at_named_point(self):
        plan = FaultPlan().crash_at("step.two")
        plan.check("step.one")
        with pytest.raises(ClientCrash) as exc:
            plan.check("step.two")
        assert exc.value.point == "step.two"

    def test_crash_at_nth_visit(self):
        plan = FaultPlan().crash_at("loop", visit=3)
        plan.check("loop")
        plan.check("loop")
        with pytest.raises(ClientCrash):
            plan.check("loop")

    def test_crash_fires_once(self):
        plan = FaultPlan().crash_at("p")
        with pytest.raises(ClientCrash):
            plan.check("p")
        plan.check("p")  # disarmed after firing

    def test_crash_at_call_index(self):
        plan = FaultPlan().crash_at_call(3)
        plan.check("a")
        plan.check("b")
        with pytest.raises(ClientCrash) as exc:
            plan.check("c")
        assert exc.value.point == "c"

    def test_disarm(self):
        plan = FaultPlan().crash_at("p").crash_at_call(1)
        plan.disarm()
        plan.check("p")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_at("p", visit=0)
        with pytest.raises(ValueError):
            FaultPlan().crash_at_call(0)


class TestRequestFaults:
    def test_fail_next_specific_op(self):
        faults = RequestFaults()
        faults.fail_next("s3", "PUT")
        with pytest.raises(ServiceUnavailable):
            faults.before_request("s3", "PUT")
        faults.before_request("s3", "PUT")  # only armed once
        assert faults.failures_injected == 1

    def test_fail_next_any_op(self):
        faults = RequestFaults()
        faults.fail_next("sqs", times=2)
        with pytest.raises(ServiceUnavailable):
            faults.before_request("sqs", "SendMessage")
        with pytest.raises(ServiceUnavailable):
            faults.before_request("sqs", "ReceiveMessage")
        faults.before_request("sqs", "SendMessage")

    def test_other_services_unaffected(self):
        faults = RequestFaults()
        faults.fail_next("s3", "PUT")
        faults.before_request("simpledb", "PutAttributes")

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestFaults().fail_next("s3", times=0)
