"""The matrix generators: shape, determinism, and salted RNG seeding.

Three regression families for the PR-9 workloads:

* **generator shape** — Zipf sampling really is skewed, deep chains
  really are ``chain_length`` deep, the diurnal envelope really
  advances the simulated clock;
* **determinism** — same seed ⇒ byte-identical trace text and meter for
  every new workload, at query concurrency 1 and 4, and with the
  ``REPRO_READ_CACHE`` / ``REPRO_WRITE_BATCH`` environment knobs on
  (the global RNG is scrambled between runs to catch module-state
  leaks, the pytest-xdist hazard);
* **salted seeding** — ``Workload.generate`` seeds by name *plus* a
  class-identity salt, so two same-named workload classes no longer
  collapse onto one stream, while ``CombinedWorkload``'s historical
  per-part streams (and every committed baseline) stay byte-identical.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.sim import Simulation
from repro.workloads import (
    BlastWorkload,
    CombinedWorkload,
    DeepLineageWorkload,
    DiurnalBurstWorkload,
    TraceReplayWorkload,
    ZipfianFleetWorkload,
    dump_trace,
    load_trace,
)
from repro.workloads import base
from repro.workloads.fleetgen import zipf_cdf, zipf_pick

WORKLOAD_KEYS = ["zipfian", "diurnal", "deep", "replay"]


def build(key: str):
    if key == "zipfian":
        return ZipfianFleetWorkload(n_tenants=3, keys_per_tenant=6, n_ops=40)
    if key == "diurnal":
        return DiurnalBurstWorkload(
            inner=ZipfianFleetWorkload(n_tenants=2, keys_per_tenant=4, n_ops=24)
        )
    if key == "deep":
        return DeepLineageWorkload(chain_length=40)
    if key == "replay":
        source = ZipfianFleetWorkload(n_tenants=2, keys_per_tenant=4, n_ops=20)
        events = list(source.iter_events(random.Random(source.seed_key(0))))
        return TraceReplayWorkload(load_trace(dump_trace(events)))
    raise KeyError(key)


# -- generator shape ---------------------------------------------------------


def test_zipf_cdf_shape():
    cdf = zipf_cdf(10, 1.2)
    assert cdf[-1] == 1.0
    assert all(b > a for a, b in zip(cdf, cdf[1:]))
    with pytest.raises(ValueError):
        zipf_cdf(0, 1.0)


def test_zipf_exponent_zero_is_uniform():
    assert zipf_cdf(4, 0.0) == pytest.approx([0.25, 0.5, 0.75, 1.0])


def test_zipf_pick_prefers_low_ranks():
    rng = random.Random("zipf-pick")
    cdf = zipf_cdf(20, 1.3)
    counts = Counter(zipf_pick(rng, cdf) for _ in range(2000))
    assert counts[0] == max(counts.values())
    assert counts[0] > 3 * counts.get(19, 1)


def test_zipfian_sample_read_refs_follow_write_skew():
    workload = ZipfianFleetWorkload(n_tenants=3, keys_per_tenant=6, n_ops=40, s=1.4)
    events = list(workload.iter_events(random.Random(workload.seed_key(1))))
    pool = sorted({event.subject for event in events})
    picks = workload.sample_read_refs(random.Random("probe"), pool, 500)
    counts = Counter(picks)
    # The first-ranked (hottest) ref draws far more than a uniform share.
    assert counts[pool[0]] > 2 * (500 / len(pool))


def test_deep_lineage_chain_shape():
    workload = DeepLineageWorkload(chain_length=40)
    events = list(workload.iter_events(random.Random(workload.seed_key(0))))
    assert len(events) == 41  # the staged seed file + 40 steps
    names = [event.subject.name for event in events]
    assert names[0] == "deep/c00/s000000.dat"
    assert names[-1] == "deep/c00/s000040.dat"
    short = list(workload.iter_events(random.Random(workload.seed_key(0)), 0.1))
    assert len(short) == 5  # scale shrinks the chain (1 stage + 4 steps)


def test_diurnal_rate_envelope_peaks_mid_period():
    workload = DiurnalBurstWorkload(base_rate=0.05, peak_ratio=8.0)
    trough = workload.rate_at(0.0)
    peak = workload.rate_at(workload.period / 2.0)
    assert trough == pytest.approx(0.05)
    assert peak == pytest.approx(0.40)


def test_diurnal_advances_the_simulated_clock():
    workload = DiurnalBurstWorkload(
        inner=ZipfianFleetWorkload(n_tenants=2, keys_per_tenant=4, n_ops=15)
    )
    assert workload.timed
    sim = Simulation(architecture="s3+simpledb", seed=3)
    before = sim.account.clock.now
    sim.run_workload(workload, seed=4)
    assert sim.account.clock.now > before


def test_replay_refuses_rescaling():
    replay = build("replay")
    with pytest.raises(ValueError):
        list(replay.iter_events(random.Random(0), scale=2.0))
    with pytest.raises(ValueError):
        list(replay.iter_timed_events(random.Random(0), scale=0.5))


# -- determinism regressions -------------------------------------------------


def trace_text(workload, seed: int) -> str:
    timed = list(workload.iter_timed_events(random.Random(workload.seed_key(seed))))
    events = [event for _, event in timed]
    delays = [delay for delay, _ in timed] if workload.timed else None
    return dump_trace(events, workload=workload.name, delays=delays)


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_same_seed_byte_identical_trace(key):
    text_a = trace_text(build(key), seed=11)
    random.seed("adversarial interleaving")
    random.random()
    text_b = trace_text(build(key), seed=11)
    assert text_a == text_b


def run_usage(key: str, concurrency: int = 1, **sim_kwargs):
    sim = Simulation(
        architecture="s3+simpledb",
        seed=5,
        shards=2,
        concurrency=concurrency,
        **sim_kwargs,
    )
    sim.run_workload(build(key), seed=9)
    sim.query_engine().q3_descendants_of("ingest")
    return sim.usage()


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
@pytest.mark.parametrize("concurrency", [1, 4])
def test_same_seed_byte_identical_meter(key, concurrency):
    usage_a = run_usage(key, concurrency)
    random.seed("adversarial interleaving")
    random.random()
    usage_b = run_usage(key, concurrency)
    assert usage_a == usage_b


@pytest.mark.parametrize(
    "variable,value", [("REPRO_READ_CACHE", "1"), ("REPRO_WRITE_BATCH", "8")]
)
def test_env_knobs_stay_deterministic(monkeypatch, variable, value):
    monkeypatch.setenv(variable, value)
    usage_a = run_usage("zipfian")
    random.seed("adversarial interleaving")
    random.random()
    usage_b = run_usage("zipfian")
    assert usage_a == usage_b


def test_read_cache_env_knob_is_live(monkeypatch):
    """The knob test above must actually exercise the cache tier."""
    monkeypatch.setenv("REPRO_READ_CACHE", "1")
    sim = Simulation(architecture="s3+simpledb", seed=5, shards=2)
    assert sim.account.read_cache is not None


def test_timed_trace_replays_with_identical_meter_and_clock():
    workload = build("diurnal")
    timed = list(workload.iter_timed_events(random.Random(workload.seed_key(2))))
    events = [event for _, event in timed]
    delays = [delay for delay, _ in timed]

    original = Simulation(architecture="s3+simpledb", seed=6, shards=2)
    original.store_timed_events(timed)

    replay = TraceReplayWorkload(
        load_trace(dump_trace(events, workload=workload.name, delays=delays))
    )
    assert replay.timed
    resim = Simulation(architecture="s3+simpledb", seed=6, shards=2)
    resim.store_timed_events(replay.iter_timed_events(random.Random(0)))

    assert resim.usage() == original.usage()
    assert resim.account.clock.now == original.account.clock.now


# -- salted seeding (the name-collision fix) ---------------------------------


class _SaltProbeA(base.Workload):
    name = "salt-probe"

    def iter_events(self, rng, scale=1.0):
        pas = base.make_system(self.name)
        pas.stage_input("salt/x.dat", base.content(rng, 64, "salt/x.dat"))
        yield from pas.drain_flushes()


class _SaltProbeB(_SaltProbeA):
    """Same ``name``, different class — historically the same stream."""


def test_same_name_different_classes_get_distinct_streams():
    probe_a, probe_b = _SaltProbeA(), _SaltProbeB()
    assert probe_a.name == probe_b.name
    assert probe_a.seed_key(3) != probe_b.seed_key(3)
    events_a = probe_a.generate(seed=3).events
    events_b = probe_b.generate(seed=3).events
    assert events_a[0].data.seed != events_b[0].data.seed


def test_same_class_same_seed_stays_byte_identical():
    events_a = _SaltProbeA().generate(seed=3).events
    random.seed("adversarial interleaving")
    events_b = _SaltProbeA().generate(seed=3).events
    assert events_a == events_b


def test_combined_unique_names_keep_historical_streams():
    """The baseline guard: default combined traces must not move."""
    combined = CombinedWorkload()
    events = list(combined.iter_events(random.Random("compat:7"), 0.05))

    rng = random.Random("compat:7")
    legacy = []
    for part in combined.parts:
        part_rng = random.Random(f"{part.name}:{rng.random():.17f}")
        legacy.extend(part.iter_events(part_rng, 0.05))
    assert events == legacy


def test_combined_disambiguates_duplicate_part_names():
    part_a = BlastWorkload(n_runs=1, queries_per_run=2)
    part_b = BlastWorkload(n_runs=1, queries_per_run=2)
    combined = CombinedWorkload()
    combined.parts = (part_a, part_b)
    events = list(combined.iter_events(random.Random("dup:0"), 0.5))

    draws = random.Random("dup:0")
    draw_a, draw_b = draws.random(), draws.random()
    expected_a = list(
        part_a.iter_events(random.Random(f"blast:{draw_a:.17f}"), 0.5)
    )
    # The repeat of the name gets the salted stream, not the plain one.
    expected_b = list(
        part_b.iter_events(
            random.Random(f"blast#BlastWorkload#1:{draw_b:.17f}"), 0.5
        )
    )
    assert events == expected_a + expected_b
    assert expected_b != list(
        part_b.iter_events(random.Random(f"blast:{draw_b:.17f}"), 0.5)
    )
