"""Unit tests for byte-size units and formatting."""

import pytest

from repro import units


class TestConstants:
    def test_paper_limits(self):
        # The §2 limits the protocols are built around.
        assert units.S3_MAX_METADATA_SIZE == 2048
        assert units.S3_MAX_OBJECT_SIZE == 5 * 1024**3
        assert units.SDB_MAX_VALUE_SIZE == 1024
        assert units.SDB_MAX_ATTRS_PER_ITEM == 256
        assert units.SDB_MAX_ATTRS_PER_CALL == 100
        assert units.SQS_MAX_MESSAGE_SIZE == 8192
        assert units.SQS_RETENTION_SECONDS == 4 * 24 * 3600


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (121.8 * units.MB, "121.8MB"),
            (1.27 * units.GB, "1.27GB"),
            (2.8 * units.KB, "2.8KB"),
            (512, "512B"),
            (0, "0B"),
        ],
    )
    def test_fmt_bytes(self, value, expected):
        assert units.fmt_bytes(value) == expected

    def test_fmt_count(self):
        assert units.fmt_count(31180) == "31,180"

    def test_fmt_ratio(self):
        assert units.fmt_ratio(121.8 * units.MB, 1.27 * 1024 * units.MB) == "9.4%"
        assert units.fmt_ratio(1, 0) == "n/a"

    def test_fmt_factor(self):
        assert units.fmt_factor(168514, 31180) == "5.4x"
        assert units.fmt_factor(24952, 31180) == "0.80x"
        assert units.fmt_factor(231287, 31180) == "7.42x"


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("2KB", 2048),
            ("512B", 512),
            ("1.5MB", int(1.5 * units.MB)),
            ("3GB", 3 * units.GB),
            ("1024", 1024),
        ],
    )
    def test_round_trips(self, text, expected):
        assert units.parse_size(text) == expected
