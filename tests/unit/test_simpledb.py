"""Unit tests for the SimpleDB simulator."""

import pytest

from repro import errors
from repro.aws.simpledb import Attribute
from repro.units import KB


@pytest.fixture
def sdb(strong_account):
    strong_account.simpledb.create_domain("d")
    return strong_account.simpledb


class TestDomains:
    def test_create_is_idempotent(self, sdb):
        sdb.create_domain("d")
        assert "d" in sdb.list_domains()

    def test_missing_domain_rejected(self, sdb):
        with pytest.raises(errors.NoSuchDomain):
            sdb.put_attributes("nope", "item", [("a", "1")])

    def test_delete_domain(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1")])
        sdb.delete_domain("d")
        assert "d" not in sdb.list_domains()


class TestPutGetAttributes:
    def test_roundtrip(self, sdb):
        sdb.put_attributes("d", "foo_2", [("input", "bar:2"), ("type", "file")])
        attrs = sdb.get_attributes("d", "foo_2")
        assert attrs == {"input": ("bar:2",), "type": ("file",)}

    def test_multivalued_attributes(self, sdb):
        """§2.2: an item can have multiple attributes with the same name."""
        sdb.put_attributes("d", "i", [("phone", "111"), ("phone", "222")])
        assert set(sdb.get_attributes("d", "i")["phone"]) == {"111", "222"}

    def test_put_accumulates_without_replace(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1")])
        sdb.put_attributes("d", "i", [("a", "2")])
        assert set(sdb.get_attributes("d", "i")["a"]) == {"1", "2"}

    def test_replace_clears_previous_values(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1"), ("a", "2")])
        sdb.put_attributes("d", "i", [Attribute("a", "3", replace=True)])
        assert sdb.get_attributes("d", "i")["a"] == ("3",)

    def test_put_is_idempotent(self, sdb):
        """§2.2: running PutAttributes multiple times is not an error."""
        attrs = [("a", "1"), ("b", "2")]
        sdb.put_attributes("d", "i", attrs)
        sdb.put_attributes("d", "i", attrs)
        assert sdb.get_attributes("d", "i") == {"a": ("1",), "b": ("2",)}

    def test_value_size_limit(self, sdb):
        with pytest.raises(errors.AttributeValueTooLong):
            sdb.put_attributes("d", "i", [("a", "v" * (KB + 1))])

    def test_value_at_limit_accepted(self, sdb):
        sdb.put_attributes("d", "i", [("a", "v" * KB)])

    def test_attrs_per_call_limit(self, sdb):
        """§4.2: 'SimpleDB allows us to store only 100 attributes per call'."""
        too_many = [(f"a{i}", "v") for i in range(101)]
        with pytest.raises(errors.NumberSubmittedAttributesExceeded):
            sdb.put_attributes("d", "i", too_many)
        sdb.put_attributes("d", "i", too_many[:100])

    def test_attrs_per_item_limit(self, sdb):
        """§2.2: 'a maximum of 256 attribute-value pairs' per item."""
        for start in range(0, 256, 64):
            sdb.put_attributes(
                "d", "i", [(f"a{start + i}", "v") for i in range(64)]
            )
        with pytest.raises(errors.NumberItemAttributesExceeded):
            sdb.put_attributes("d", "i", [("overflow", "v")])

    def test_get_missing_item_returns_empty(self, sdb):
        assert sdb.get_attributes("d", "ghost") == {}

    def test_get_attribute_subset(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1"), ("b", "2"), ("c", "3")])
        assert sdb.get_attributes("d", "i", ["a", "c"]) == {
            "a": ("1",),
            "c": ("3",),
        }


class TestDeleteAttributes:
    def test_delete_whole_item(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1")])
        sdb.delete_attributes("d", "i")
        assert sdb.get_attributes("d", "i") == {}

    def test_delete_named_attribute(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1"), ("b", "2")])
        sdb.delete_attributes("d", "i", ["a"])
        assert sdb.get_attributes("d", "i") == {"b": ("2",)}

    def test_delete_specific_value(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1"), ("a", "2")])
        sdb.delete_attributes("d", "i", [("a", "1")])
        assert sdb.get_attributes("d", "i")["a"] == ("2",)

    def test_delete_is_idempotent(self, sdb):
        """§2.2: DeleteAttributes repeated 'will not generate an error'."""
        sdb.delete_attributes("d", "ghost")
        sdb.put_attributes("d", "i", [("a", "1")])
        sdb.delete_attributes("d", "i", ["a"])
        sdb.delete_attributes("d", "i", ["a"])

    def test_item_vanishes_when_last_attribute_deleted(self, sdb):
        sdb.put_attributes("d", "i", [("a", "1")])
        sdb.delete_attributes("d", "i", [("a", "1")])
        assert sdb.item_count("d") == 0


class TestQuery:
    @pytest.fixture
    def populated(self, sdb):
        sdb.put_attributes("d", "foo_1", [("type", "file"), ("ver", "0001")])
        sdb.put_attributes("d", "foo_2", [("type", "file"), ("ver", "0002"),
                                          ("input", "proc/blast.1:v0001")])
        sdb.put_attributes("d", "blast_1", [("type", "process"), ("name", "blast")])
        return sdb

    def test_query_all(self, populated):
        result = populated.query("d")
        assert result.item_names == ("blast_1", "foo_1", "foo_2")

    def test_query_predicate(self, populated):
        result = populated.query("d", "['type' = 'file']")
        assert result.item_names == ("foo_1", "foo_2")

    def test_query_intersection(self, populated):
        result = populated.query(
            "d", "['type' = 'process'] intersection ['name' = 'blast']"
        )
        assert result.item_names == ("blast_1",)

    def test_query_with_attributes_projection(self, populated):
        result = populated.query_with_attributes(
            "d", "['type' = 'file']", attribute_names=["ver"]
        )
        assert dict(result.items)["foo_2"] == {"ver": ("0002",)}

    def test_query_pagination(self, sdb):
        for i in range(600):
            sdb.put_attributes("d", f"item_{i:04d}", [("a", "v")])
        page1 = sdb.query("d")
        assert len(page1.item_names) == 250  # the 2009 page limit
        page2 = sdb.query("d", next_token=page1.next_token)
        page3 = sdb.query("d", next_token=page2.next_token)
        assert page3.next_token is None
        total = len(page1.item_names) + len(page2.item_names) + len(page3.item_names)
        assert total == 600

    def test_bad_next_token(self, populated):
        with pytest.raises(errors.InvalidNextToken):
            populated.query("d", next_token="garbage")

    def test_select_count(self, populated):
        result = populated.select("select count(*) from d where type = 'file'")
        assert result.count == 2

    def test_select_projection(self, populated):
        result = populated.select("select itemName() from d where name = 'blast'")
        assert [name for name, _ in result.items] == ["blast_1"]


class TestEventualConsistency:
    def test_fresh_item_may_be_missing_from_query(self, eventual_account):
        """§2.2: an inserted item 'might not be returned in a query that
        is run immediately after the insert'."""
        sdb = eventual_account.simpledb
        sdb.create_domain("e")
        missing = 0
        for i in range(30):
            sdb.put_attributes("e", f"i{i}", [("a", "v")])
            if f"i{i}" not in sdb.query("e").item_names:
                missing += 1
        assert missing > 0
        eventual_account.quiesce()
        assert len(sdb.query("e").item_names) == 30
