"""Unit tests: the RouterHandle routing-epoch indirection.

Without a migration the handle must be transparent — every answer is
exactly what the wrapped router would say, so holding a handle instead
of a router cannot change a single request. With a migration registered
(driven phase by phase here), read/write/delete/query routing must
follow the copy → double-write → catch-up → cutover → drop protocol.
"""

from __future__ import annotations

import pytest

from repro.migration import RouterHandle, as_handle
from repro.migration.live import (
    CATCH_UP,
    COPY,
    CUTOVER,
    DONE,
    DOUBLE_WRITE,
    DROP,
    LiveMigration,
    MigrationError,
)
from repro.sharding import ShardRouter
from repro.sim import Simulation


def test_as_handle_wraps_and_passes_through():
    router = ShardRouter(2)
    handle = as_handle(router)
    assert handle.current is router
    assert as_handle(handle) is handle  # shared state, never re-wrapped
    with pytest.raises(TypeError):
        as_handle("pass-prov")


def test_handle_is_transparent_without_migration():
    router = ShardRouter(4)
    handle = RouterHandle(router)
    assert handle.epoch == 0
    for path in ("a/b.dat", "out/x/03.dat", "weird path'"):
        site = handle.read_site(path)
        assert site.domain == router.domain_for(path)
        assert site.kind == router.backend_for_path(path)
        plan = handle.write_plan(f"{path}_v0001")
        assert [s.domain for s in plan.sites] == [router.domain_for(path)]
        assert not plan.capture
        assert [s.domain for s in handle.delete_sites(f"{path}_v0001")] == [
            router.domain_for(path)
        ]
    assert [s.domain for s in handle.query_sites()] == list(router.domains)


def test_swap_bumps_epoch_and_requires_no_migration():
    handle = RouterHandle(ShardRouter(1))
    target = ShardRouter(4)
    handle.swap(target)
    assert handle.current is target
    assert handle.epoch == 1


def test_single_migration_at_a_time():
    sim = Simulation(architecture="s3+simpledb", seed=1, shards=1)
    migration = sim.start_migration(shards=2)
    with pytest.raises(RuntimeError):
        sim.start_migration(shards=3)
    with pytest.raises(RuntimeError):
        sim.store.routing.swap(ShardRouter(3))
    migration.run()
    assert sim.store.routing.migration is None


def _until(migration: LiveMigration, phase: str) -> None:
    while migration.phase != phase:
        assert migration.step() or migration.phase == phase


def _moving_item(source: ShardRouter, target: ShardRouter) -> str:
    """An item name whose source and target sites differ."""
    for index in range(1000):
        path = f"probe/{index:04d}.dat"
        if (source.domain_for(path), source.backend_for_path(path)) != (
            target.domain_for(path),
            target.backend_for_path(path),
        ):
            return f"{path}_v0001"
    raise AssertionError("no moving path found")


def _staying_item(source: ShardRouter, target: ShardRouter) -> str:
    for index in range(1000):
        path = f"probe/{index:04d}.dat"
        if (source.domain_for(path), source.backend_for_path(path)) == (
            target.domain_for(path),
            target.backend_for_path(path),
        ):
            return f"{path}_v0001"
    raise AssertionError("no staying path found")


def test_write_plans_follow_the_protocol_phases():
    sim = Simulation(architecture="s3+simpledb", seed=2, shards=2)
    handle = sim.store.routing
    source = handle.current
    migration = sim.start_migration(shards=4)
    target = migration.target
    moving = _moving_item(source, target)
    staying = _staying_item(source, target)

    assert migration.phase == COPY
    plan = handle.write_plan(moving)
    assert plan.capture and len(plan.sites) == 1
    assert plan.sites[0].domain == source.domain_for_item(moving)
    # An item that does not move never double-writes or captures.
    stay_plan = handle.write_plan(staying)
    assert not stay_plan.capture and len(stay_plan.sites) == 1

    _until(migration, DOUBLE_WRITE)
    plan = handle.write_plan(moving)
    assert not plan.capture
    assert [site.domain for site in plan.sites] == [
        source.domain_for_item(moving),
        target.domain_for_item(moving),
    ]
    # Reads still come from the source, and both copies are deletable.
    read = handle.read_site(moving.rsplit("_v", 1)[0])
    assert read.router is source
    assert len(handle.delete_sites(moving)) == 2

    _until(migration, CATCH_UP)
    _until(migration, CUTOVER)
    epochs_before = handle.epoch
    _until(migration, DROP)
    # Every target shard flipped: one epoch bump each, reads now target.
    assert handle.epoch - epochs_before == 0 or handle.epoch == len(target.domains)
    assert handle.epoch == len(target.domains)
    plan = handle.write_plan(moving)
    assert [site.domain for site in plan.sites] == [target.domain_for_item(moving)]
    assert handle.read_site(moving.rsplit("_v", 1)[0]).router is target

    _until(migration, DONE)
    assert handle.current is target
    assert handle.migration is None


def test_query_sites_cover_union_during_cutover():
    sim = Simulation(architecture="s3+simpledb", seed=3, shards=2)
    handle = sim.store.routing
    source_domains = set(handle.current.domains)
    migration = sim.start_migration(shards=4)
    _until(migration, CUTOVER)
    # No shard flipped yet: scatter covers exactly the source stores
    # (partially copied target stores must never serve reads).
    assert {site.domain for site in handle.query_sites()} == source_domains
    migration.step()  # flip the first target shard
    domains = {site.domain for site in handle.query_sites()}
    flipped = next(iter(migration._cut_over))
    assert source_domains <= domains
    assert flipped in domains
    migration.run()
    assert {site.domain for site in handle.query_sites()} == set(
        migration.target.domains
    )


def test_start_twice_is_an_error():
    sim = Simulation(architecture="s3+simpledb", seed=4, shards=1)
    migration = sim.start_migration(shards=2)
    with pytest.raises(MigrationError):
        migration.start()
    migration.run()
