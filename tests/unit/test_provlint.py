"""provlint: each rule fires exactly where the fixtures say, and nowhere
else — and the repo's own tree is clean.

The known-bad fixtures live in ``provlint_fixtures/`` (directory-walk
skipped via its ``.provlint-ignore`` marker) and annotate every line a
rule must fire on with a trailing ``# expect: PL00x`` comment. The tests
feed each fixture to :func:`repro.devtools.provlint.check_source` under a
synthetic library path — the rules are pure functions of (source, path),
so a fixture stored under ``tests/`` can exercise the library-only rules.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.devtools import provlint

FIXTURES = Path(__file__).resolve().parent / "provlint_fixtures"
REPO = Path(__file__).resolve().parents[2]

#: fixture file -> synthetic path it is checked under. pl001 must sit in
#: repro/aws/ (the service-mutator check is aws-only); pl002 must NOT,
#: or the mutator check would add PL001 findings on its unsynchronized
#: example methods; pl005 must sit outside the routing layer.
SYNTHETIC_PATHS = {
    "pl001_bad.py": "src/repro/aws/pl001_bad.py",
    "pl002_bad.py": "src/repro/core/pl002_bad.py",
    "pl003_bad.py": "src/repro/query/pl003_bad.py",
    "pl004_bad.py": "src/repro/core/pl004_bad.py",
    "pl005_bad.py": "src/repro/query/pl005_bad.py",
}

_EXPECT = re.compile(r"#\s*expect:\s*(PL\d{3}(?:\s*,\s*PL\d{3})*)")


def expected_findings(source: str) -> set[tuple[int, str]]:
    """The (line, rule) pairs a fixture's trailing comments demand."""
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule in re.split(r"\s*,\s*", match.group(1)):
                expected.add((lineno, rule))
    return expected


@pytest.mark.parametrize("fixture", sorted(SYNTHETIC_PATHS))
def test_fixture_fires_exactly_where_annotated(fixture):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    expected = expected_findings(source)
    assert expected, f"fixture {fixture} has no # expect: annotations"
    findings = provlint.check_source(source, Path(SYNTHETIC_PATHS[fixture]))
    got = {(f.line, f.rule) for f in findings}
    assert got == expected


@pytest.mark.parametrize("fixture", sorted(SYNTHETIC_PATHS))
def test_fixture_findings_carry_fix_hints(fixture):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    for finding in provlint.check_source(source, Path(SYNTHETIC_PATHS[fixture])):
        assert finding.hint, finding
        rendered = finding.render()
        assert finding.rule in rendered
        assert f":{finding.line}:" in rendered


def test_repo_src_is_clean():
    """The acceptance bar: provlint over the real tree finds nothing."""
    assert provlint.check_paths([REPO / "src"]) == []


def test_repo_tests_and_benchmarks_are_clean():
    findings = provlint.check_paths([REPO / "tests", REPO / "benchmarks"])
    assert findings == []


def test_ignore_marker_hides_fixture_dir_from_walks():
    walked = list(provlint.iter_python_files([Path(__file__).resolve().parent]))
    assert not any("provlint_fixtures" in p.as_posix() for p in walked)
    # ...but naming a fixture file explicitly still checks it.
    explicit = list(provlint.iter_python_files([FIXTURES / "pl004_bad.py"]))
    assert explicit == [FIXTURES / "pl004_bad.py"]


def test_allowlist_covers_the_mechanism_not_consumers():
    source = "import threading\nlock = threading.RLock()\n"
    assert provlint.check_source(source, Path("src/repro/concurrency.py")) == []
    assert provlint.check_source(source, Path("src/repro/aws/s3.py"))


# -- PL002 repo-level cross-check (meter keys <-> price book) --------------

MINI_BILLING = '''\
S3 = "s3"
PHANTOM = "phantom"


class PriceBook:
    def cost(self, usage):
        lines = []
        lines.append(("s3.requests", 1.0))
        lines.append(("orphan.requests", 2.0))
        return lines
'''

MINI_CONSUMER = '''\
from repro.aws.billing import PHANTOM, S3


class Svc:
    def serve(self, meter):
        meter.record_request(S3, "GetObject")
        meter.record_request(PHANTOM, "Conjure")
'''


def test_cross_check_flags_unpriced_key_and_dead_price_line():
    repo = provlint.RepoData()
    provlint.check_source(MINI_BILLING, Path("src/repro/aws/billing.py"), repo)
    provlint.check_source(MINI_CONSUMER, Path("src/repro/aws/svc.py"), repo)
    findings = repo.cross_check()
    assert {(f.rule, f.path) for f in findings} == {
        ("PL002", "src/repro/aws/svc.py"),       # 'phantom' metered, unpriced
        ("PL002", "src/repro/aws/billing.py"),   # 'orphan.*' priced, unmetered
    }
    messages = " | ".join(f.message for f in findings)
    assert "'phantom'" in messages
    assert "'orphan.requests'" in messages


def test_cross_check_clean_when_keys_and_prices_agree():
    billing = MINI_BILLING.replace('lines.append(("orphan.requests", 2.0))\n        ', "")
    consumer = MINI_CONSUMER.replace('        meter.record_request(PHANTOM, "Conjure")\n', "")
    repo = provlint.RepoData()
    provlint.check_source(billing, Path("src/repro/aws/billing.py"), repo)
    provlint.check_source(consumer, Path("src/repro/aws/svc.py"), repo)
    assert repo.cross_check() == []


SUB_SERVICE_BILLING = '''\
DDB_GSI = "dynamodb-gsi"
DDB_GSI_RANGE = "dynamodb-gsi-range"


class PriceBook:
    def cost(self, usage):
        lines = []
        lines.append(("dynamodb.gsi.read_units", 1.0))
        lines.append(("dynamodb.gsi.range.read_units", 2.0))
        return lines
'''


def test_longest_prefix_ownership_rejects_sub_service_freeloading():
    """A 'dynamodb.gsi.range.*' price line may not ride on the shorter
    'dynamodb-gsi' prefix: with only the parent metered, the sub-service
    line is dead, and the parent still owns its own line."""
    consumer = '''\
from repro.aws.billing import DDB_GSI


class Svc:
    def serve(self, meter):
        meter.record_request(DDB_GSI, "Query")
'''
    repo = provlint.RepoData()
    provlint.check_source(SUB_SERVICE_BILLING, Path("src/repro/aws/billing.py"), repo)
    provlint.check_source(consumer, Path("src/repro/aws/svc.py"), repo)
    findings = repo.cross_check()
    assert len(findings) == 1
    assert findings[0].rule == "PL002"
    assert "'dynamodb.gsi.range.read_units'" in findings[0].message
    assert "dead price line" in findings[0].message


def test_billing_key_binding_collects_both_conditional_branches():
    """The dynamo idiom: the key is chosen by a conditional bound to a
    ``billing_key`` local (or parameter default), and the keyed op sees
    only the bare name — the binding site is what the collector reads,
    and both branches count as metered."""
    consumer = '''\
from repro.aws import billing


class Svc:
    def query(self, meter, ranged):
        billing_key = (
            billing.DDB_GSI_RANGE if ranged else billing.DDB_GSI
        )
        self._serve(meter, billing_key)

    def _serve(self, meter, billing_key="dynamodb-gsi"):
        meter.record_request(billing_key, "Query")
'''
    repo = provlint.RepoData()
    provlint.check_source(SUB_SERVICE_BILLING, Path("src/repro/aws/billing.py"), repo)
    provlint.check_source(consumer, Path("src/repro/aws/svc.py"), repo)
    assert repo.cross_check() == []
    keys = {key for key, _, _ in repo.metered_keys}
    assert {"$DDB_GSI_RANGE", "$DDB_GSI", "dynamodb-gsi"} <= keys


def test_real_billing_price_book_matches_real_meter_calls():
    """Every key metered anywhere in src/ has a live price line and
    vice versa — the bidirectional coverage PL002 promises."""
    findings = provlint.check_paths([REPO / "src"])
    assert [f for f in findings if f.rule == "PL002"] == []


# -- CLI ------------------------------------------------------------------


def test_cli_exit_codes_and_rendering(capsys):
    bad = FIXTURES / "pl004_bad.py"
    assert provlint.main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PL004" in out
    assert "finding(s)" in out
    assert provlint.main([str(REPO / "src")]) == 0


def test_cli_json_output(capsys):
    import json

    bad = FIXTURES / "pl004_bad.py"
    assert provlint.main(["--json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert all(f["rule"] == "PL004" for f in payload)
    assert {"path", "line", "col", "rule", "message", "hint"} <= set(payload[0])
