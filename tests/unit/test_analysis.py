"""Unit tests for the §5 analysis models (Tables 2 and 3) and USD costs."""

import pytest

from repro.analysis.cost import architecture_monthly_cost, render_cost_table
from repro.analysis.query_model import (
    PAPER_TABLE3,
    analytic_query_table,
    render_table3,
)
from repro.analysis.query_model import shape_check as query_shape_check
from repro.analysis.report import TextTable
from repro.analysis.storage_model import (
    PAPER_TABLE2,
    paper_formula_a3_ops,
    render_table2,
    storage_table,
)
from repro.analysis.storage_model import shape_check as storage_shape_check
from repro.workloads import CombinedWorkload, collect_stats


@pytest.fixture(scope="module")
def stats():
    import random

    return collect_stats(
        CombinedWorkload().iter_events(random.Random("analysis"), 0.4)
    )


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["a", "bbb"])
        table.add_row("x", 1234)
        text = table.render()
        assert "1,234" in text
        assert text.splitlines()[0].startswith("a")

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_bool_formatting(self):
        table = TextTable(["p"])
        table.add_row(True)
        table.add_row(False)
        assert "yes" in table.render() and "no" in table.render()


class TestStorageModel:
    def test_raw_row_is_baseline(self, stats):
        rows = storage_table(stats)
        assert rows["raw"].prov_bytes == stats.raw_bytes
        assert rows["raw"].ops == stats.n_objects

    def test_a1_ops_are_overflow_puts(self, stats):
        rows = storage_table(stats)
        assert rows["s3"].ops == stats.n_records_gt_1kb

    def test_a2_formula(self, stats):
        rows = storage_table(stats)
        assert rows["s3+simpledb"].ops == stats.n_sdb_items + stats.n_records_gt_1kb

    def test_a3_storage_formula(self, stats):
        """§5: 2·S_SQS + S_SimpleDB."""
        rows = storage_table(stats)
        assert rows["s3+simpledb+sqs"].prov_bytes == (
            2 * stats.wal_prov_bytes + stats.sdb_prov_bytes
        )

    def test_paper_formula_below_protocol_count(self, stats):
        """The paper's formula omits begin/data/commit records."""
        rows = storage_table(stats)
        assert paper_formula_a3_ops(stats) < rows["s3+simpledb+sqs"].ops

    def test_shape_reproduces(self, stats):
        assert storage_shape_check(stats) == []

    def test_render_includes_paper_numbers(self, stats):
        text = render_table2(stats)
        assert "121.8MB" in text
        assert "31,180" in text
        assert "Table 2" in text

    def test_paper_constants(self):
        assert PAPER_TABLE2["raw"]["ops"] == 31_180
        assert PAPER_TABLE2["s3+simpledb+sqs"]["ops"] == 231_287


class TestQueryModel:
    def test_s3_column_matches_paper_formula(self, stats):
        rows = analytic_query_table(stats)
        for row in rows:
            # §5: 56,132 = 31,180 HEAD + 24,952 GET — same formula here.
            assert row.s3_ops == stats.n_objects + stats.n_records_gt_1kb
            assert row.s3_bytes == stats.s3_prov_bytes

    def test_shape_reproduces(self, stats):
        # Scale-proportional bar: the 100x paper factor applies at paper
        # scale; this miniature repository supports ~20x.
        assert query_shape_check(analytic_query_table(stats), min_factor=20) == []

    def test_render(self, stats):
        text = render_table3(analytic_query_table(stats))
        assert "Q1" in text and "56,132" in text

    def test_paper_constants(self):
        assert PAPER_TABLE3["Q2"]["sdb_ops"] == 6
        assert PAPER_TABLE3["Q3"]["sdb_ops"] == 31


class TestCostModel:
    def test_unit_economics_ops_cheaper_than_storage(self):
        """§5: 'operations are much cheaper (in USD) than storage in the
        AWS pricing model' — at the unit-price level: a thousand
        operations cost less than a GB-month on every service."""
        from repro.aws.billing import PriceBook

        prices = PriceBook()
        assert prices.s3_put_class_per_1000 < prices.s3_storage_gb_month
        assert prices.sqs_per_10000_requests < prices.sdb_storage_gb_month
        assert prices.s3_get_class_per_10000 < prices.s3_storage_gb_month

    def test_provenance_ops_bill_below_year_of_storage(self, stats):
        """Dataset-level: A3's one-time op bill is small next to keeping
        the dataset + provenance for a year."""
        costs = architecture_monthly_cost(stats)
        full = costs["s3+simpledb+sqs"]
        year_of_storage = 12 * (
            full.storage_usd_month + costs["raw"].storage_usd_month
        )
        assert full.operations_usd < year_of_storage

    def test_ordering_by_architecture(self, stats):
        costs = architecture_monthly_cost(stats)
        assert (
            costs["s3"].storage_usd_month
            < costs["s3+simpledb"].storage_usd_month
        )

    def test_render(self, stats):
        text = render_cost_table(stats)
        assert "s3+simpledb+sqs" in text
        assert "$" not in text.splitlines()[0]  # header clean
