"""The REPRO_SANITIZE runtime sanitizer: inversions and unattributed
spend are detected when it is on, and the build is byte-identical when
it is off."""

from __future__ import annotations

import threading

import pytest

from repro.aws.billing import Meter, PriceBook
from repro.clock import SimClock
from repro.concurrency import new_lock
from repro.devtools import sanitize


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
    sanitize.reset()
    yield
    sanitize.reset()


@pytest.fixture
def unsanitized(monkeypatch):
    monkeypatch.delenv(sanitize.SANITIZE_ENV, raising=False)
    sanitize.reset()
    yield
    sanitize.reset()


# -- lock order ------------------------------------------------------------


def test_documented_order_is_clean(sanitized):
    service = new_lock("service", name="svc")
    meter = new_lock("meter", name="m")
    leaf = new_lock("leaf", name="clock")
    with service, meter, leaf:
        pass
    assert sanitize.violations() == ()


def test_reentrant_reacquisition_is_clean(sanitized):
    service = new_lock("service", name="svc")
    with service, service:
        pass
    assert sanitize.violations() == ()


def test_inversion_meter_then_service_is_flagged(sanitized):
    service = new_lock("service", name="svc")
    meter = new_lock("meter", name="m")
    with meter, service:
        pass
    (violation,) = sanitize.violations()
    assert violation.kind == "lock-order"
    assert "svc" in violation.message and "m (rank 20)" in violation.message
    sanitize.reset()


def test_two_service_locks_nested_is_flagged(sanitized):
    # The coarse model never nests same-rank locks; doing so is the
    # classic ABBA deadlock shape the sanitizer exists to catch.
    a = new_lock("service", name="a")
    b = new_lock("service", name="b")
    with a, b:
        pass
    assert [v.kind for v in sanitize.violations()] == ["lock-order"]
    sanitize.reset()


def test_anything_under_a_leaf_lock_is_flagged(sanitized):
    leaf = new_lock("leaf", name="heap")
    service = new_lock("service", name="svc")
    with leaf, service:
        pass
    assert [v.kind for v in sanitize.violations()] == ["lock-order"]
    sanitize.reset()


def test_held_stacks_are_per_thread(sanitized):
    """Thread A holding the meter lock must not poison thread B's order."""
    meter = new_lock("meter", name="m")
    service = new_lock("service", name="svc")
    meter.acquire()
    try:
        worker = threading.Thread(target=lambda: service.acquire() and service.release())
        worker.start()
        worker.join()
    finally:
        meter.release()
    assert sanitize.violations() == ()


def test_violations_record_but_never_raise(sanitized):
    leaf = new_lock("leaf", name="heap")
    meter = new_lock("meter", name="m")
    with leaf:
        with meter:  # would deadlock-shape; still acquires and proceeds
            witnessed = True
    assert witnessed
    assert len(sanitize.violations()) == 1
    sanitize.reset()


# -- meter attribution -----------------------------------------------------


def test_unscoped_spend_inside_expect_bracket_is_flagged(sanitized):
    meter = Meter(SimClock())
    with meter.expect_scope():
        meter.record_request("s3", "GetObject")
    (violation,) = sanitize.violations()
    assert violation.kind == "unattributed-spend"
    assert "request s3/GetObject" in violation.message
    sanitize.reset()


def test_scoped_spend_inside_expect_bracket_is_clean(sanitized):
    meter = Meter(SimClock())
    with meter.expect_scope():
        with meter.scoped() as scope:
            meter.record_request("s3", "GetObject")
            meter.record_transfer_out("s3", 512)
    assert sanitize.violations() == ()
    assert scope.request_count() == 1


def test_spend_outside_any_query_is_clean(sanitized):
    # No expect_scope bracket: background daemons and setup writes are
    # allowed to record without a scope.
    meter = Meter(SimClock())
    meter.record_request("sqs", "SendMessage")
    assert sanitize.violations() == ()


def test_expect_bracket_is_thread_local(sanitized):
    """A bracket on the caller thread says nothing about worker threads."""
    meter = Meter(SimClock())
    with meter.expect_scope():
        worker = threading.Thread(
            target=lambda: meter.record_request("s3", "GetObject")
        )
        worker.start()
        worker.join()
    assert sanitize.violations() == ()


# -- off means off ---------------------------------------------------------


def _exercise(meter: Meter, clock: SimClock):
    meter.record_request("s3", "PutObject")
    meter.record_transfer_in("s3", 4096)
    meter.adjust_stored("s3", 4096)
    with meter.expect_scope():
        with meter.scoped() as scope:
            meter.record_request("simpledb", "Select")
            meter.record_capacity("dynamodb", read_units=1.5)
    clock.advance(3600.0)
    return scope


def test_sanitizer_off_is_byte_identical_on_the_meter(unsanitized, monkeypatch):
    clock_off = SimClock()
    meter_off = Meter(clock_off)
    _exercise(meter_off, clock_off)
    monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
    clock_on = SimClock()
    meter_on = Meter(clock_on)
    _exercise(meter_on, clock_on)

    off, on = meter_off.snapshot(), meter_on.snapshot()
    assert off == on
    book = PriceBook()
    assert book.cost(off).total == book.cost(on).total
    # The legitimate scoped spend above is attributed, so even the
    # sanitized run recorded nothing.
    assert sanitize.violations() == ()


def test_new_lock_returns_plain_rlock_when_off(unsanitized):
    lock = new_lock("service")
    assert not isinstance(lock, sanitize.OrderedLock)
    assert type(lock).__name__ == "RLock"


def test_new_lock_rejects_unknown_order_in_both_modes(unsanitized, monkeypatch):
    with pytest.raises(ValueError):
        new_lock("mystery")
    monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
    with pytest.raises(ValueError):
        new_lock("mystery")


def test_enabled_parses_the_env(monkeypatch):
    monkeypatch.delenv(sanitize.SANITIZE_ENV, raising=False)
    assert not sanitize.enabled()
    monkeypatch.setenv(sanitize.SANITIZE_ENV, "0")
    assert not sanitize.enabled()
    monkeypatch.setenv(sanitize.SANITIZE_ENV, "1")
    assert sanitize.enabled()
