"""Unit tests for real and synthetic blobs."""

import pytest

from repro.blob import Blob, BytesBlob, SyntheticBlob, as_blob


class TestBytesBlob:
    def test_size_and_read(self):
        blob = BytesBlob(b"hello world")
        assert blob.size == 11
        assert blob.read() == b"hello world"
        assert blob.read(0, 5) == b"hello"
        assert blob.read(6) == b"world"

    def test_md5_matches_hashlib(self):
        import hashlib

        data = b"some content"
        assert BytesBlob(data).md5() == hashlib.md5(data).hexdigest()

    def test_str_coerced_to_utf8(self):
        assert BytesBlob("héllo").size == len("héllo".encode("utf-8"))

    def test_invalid_range_rejected(self):
        blob = BytesBlob(b"abc")
        with pytest.raises(ValueError):
            blob.read(2, 10)
        with pytest.raises(ValueError):
            blob.read(-1)

    def test_equality_by_content(self):
        assert BytesBlob(b"same") == BytesBlob(b"same")
        assert BytesBlob(b"one") != BytesBlob(b"two")


class TestSyntheticBlob:
    def test_size_without_materialisation(self):
        blob = SyntheticBlob("seed", 5 * 1024**3)  # 5 GB costs nothing
        assert blob.size == 5 * 1024**3

    def test_md5_is_o1_and_deterministic(self):
        a = SyntheticBlob("seed", 10**9)
        b = SyntheticBlob("seed", 10**9)
        assert a.md5() == b.md5()

    def test_md5_distinguishes_seed_and_size(self):
        base = SyntheticBlob("seed", 1000)
        assert base.md5() != SyntheticBlob("other", 1000).md5()
        assert base.md5() != SyntheticBlob("seed", 1001).md5()

    def test_read_deterministic(self):
        blob = SyntheticBlob("x", 1000)
        assert blob.read(100, 200) == blob.read(100, 200)
        assert len(blob.read(100, 200)) == 100

    def test_read_consistent_across_ranges(self):
        blob = SyntheticBlob("x", 256)
        full = blob.read()
        assert blob.read(10, 50) == full[10:50]
        assert blob.read(0, 1) == full[:1]
        assert blob.read(255, 256) == full[255:]

    def test_empty_read(self):
        assert SyntheticBlob("x", 10).read(5, 5) == b""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticBlob("x", -1)

    def test_same_identity_equal_bytes(self):
        # Models "file overwritten with the same data" (§4.2).
        assert SyntheticBlob("s", 64).read() == SyntheticBlob("s", 64).read()


class TestAsBlob:
    def test_passthrough(self):
        blob = BytesBlob(b"x")
        assert as_blob(blob) is blob

    def test_coercions(self):
        assert as_blob(b"abc").read() == b"abc"
        assert as_blob("abc").read() == b"abc"

    def test_synthetic_passthrough(self):
        blob = SyntheticBlob("s", 10)
        assert as_blob(blob) is blob
        assert isinstance(as_blob(blob), Blob)
