"""Unit tests for the three architectures' store/read protocols."""

import pytest

from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET, PROV_DOMAIN
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.errors import ClientCrash, ReadCorrectnessViolation
from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr
from repro.sharding import ShardRouter
from tests.conftest import make_architecture, tiny_trace


def make_sdb_store(account, **kwargs):
    """An A2 store pinned to the paper's SimpleDB placement and
    single-request write path: this suite asserts §4.2 wire semantics
    (PutAttributes batching, items visible in the SimpleDB domain),
    which must hold whatever backend or group-commit width the
    REPRO_BACKEND_PLACEMENT / REPRO_WRITE_BATCH environment selects
    for the generic runs."""
    kwargs.setdefault("write_batch", 1)
    return make_architecture(
        "s3+simpledb", account,
        router=ShardRouter(1, placement="sdb"), **kwargs,
    )


def big_env_trace(env_bytes=3000):
    pas = PassSystem(workload="big")
    with pas.process("fat", env={"HUGE": "x" * env_bytes}) as proc:
        proc.write("out/fat.dat", b"payload")
        proc.close("out/fat.dat")
    return pas.drain_flushes()


class TestCommonBehaviour:
    def test_store_then_read_roundtrip(self, any_architecture, trace):
        store = any_architecture
        store.store_trace(trace)
        if isinstance(store, S3SimpleDBSQS):
            store.pump()
        result = store.read("data/out.csv")
        assert result.consistent
        assert result.data.read() == b"sum\n3\n"
        assert result.subject.version == 1
        assert result.bundle.attribute_values(Attr.TYPE) == ["file"]

    def test_read_missing_object(self, any_architecture):
        with pytest.raises(ReadCorrectnessViolation):
            any_architecture.read("never/stored")

    def test_store_counts(self, any_architecture, trace):
        any_architecture.store_trace(trace)
        assert any_architecture.stores_completed == len(trace)

    def test_rewrite_supersedes(self, any_architecture):
        store = any_architecture
        pas = PassSystem()
        for round_number in (1, 2):
            with pas.process(f"writer{round_number}") as proc:
                proc.write("doc", f"round {round_number}".encode())
                proc.close("doc")
        store.store_trace(pas.drain_flushes())
        if isinstance(store, S3SimpleDBSQS):
            store.pump()
        result = store.read("doc")
        assert result.subject.version == 2
        assert result.data.read() == b"round 2"


class TestS3Standalone:
    @pytest.fixture
    def store(self, strong_account):
        return make_architecture("s3", strong_account)

    def test_single_put_carries_provenance(self, store, strong_account, trace):
        before = strong_account.meter.snapshot()
        store.store(trace[-1])
        delta = strong_account.meter.snapshot() - before
        # Exactly one PUT (no overflow in the tiny trace): data+prov together.
        assert delta.request_count("s3", "PUT") == 1

    def test_overflow_objects_written_before_main_put(self, store, strong_account):
        trace = big_env_trace()
        store.store_trace(trace)
        assert store.overflow_objects_written == 1
        keys = strong_account.s3.authoritative_keys(DATA_BUCKET)
        assert any(k.startswith(".pass/overflow/") for k in keys)

    def test_head_provenance_returns_bundle(self, store, trace):
        store.store_trace(trace)
        result = store.head_provenance("data/out.csv")
        assert result.data is None
        assert result.bundle.attribute_values(Attr.NAME) == ["out.csv"]

    def test_read_with_ancestors_recovers_process(self, store, trace):
        store.store_trace(trace)
        own, ancestors = store.read_with_ancestors("data/out.csv")
        assert [a.kind for a in ancestors] == ["process"]
        assert ancestors[0].attribute_values(Attr.NAME) == ["analyze"]

    def test_historical_version_unreachable(self, store):
        pas = PassSystem()
        for i in (1, 2):
            with pas.process(f"w{i}") as proc:
                proc.write("doc", f"v{i}".encode())
                proc.close("doc")
        store.store_trace(pas.drain_flushes())
        with pytest.raises(ReadCorrectnessViolation):
            store.read("doc", version=1)


class TestS3SimpleDB:
    @pytest.fixture
    def store(self, strong_account):
        return make_sdb_store(strong_account)

    def test_provenance_stored_before_data(self, store, strong_account, trace):
        plan = FaultPlan().crash_at("a2.store.before_data_put")
        crashing = make_sdb_store(strong_account, faults=plan)
        with pytest.raises(ClientCrash):
            crashing.store(trace[-1])
        # Provenance landed; data did not: the §4.2 atomicity hole.
        item = strong_account.simpledb.authoritative_item(
            PROV_DOMAIN, trace[-1].subject.item_name
        )
        assert item is not None
        assert not strong_account.s3.exists_authoritative(
            DATA_BUCKET, trace[-1].subject.name
        )

    def test_nonce_stamped_on_data(self, store, strong_account, trace):
        store.store_trace(trace)
        record = strong_account.s3.authoritative_record(DATA_BUCKET, "data/out.csv")
        assert record.metadata_dict["nonce"] == "v0001"

    def test_md5_attr_present(self, store, strong_account, trace):
        store.store_trace(trace)
        item = strong_account.simpledb.authoritative_item(
            PROV_DOMAIN, trace[-1].subject.item_name
        )
        assert Attr.MD5 in item and Attr.NONCE in item

    def test_historical_version_provenance_kept(self, store):
        pas = PassSystem()
        for i in (1, 2):
            with pas.process(f"w{i}") as proc:
                proc.write("doc", f"v{i}".encode())
                proc.close("doc")
        store.store_trace(pas.drain_flushes())
        result = store.read("doc", version=1)
        assert result.data is None  # bytes overwritten
        assert result.subject.version == 1
        assert result.bundle.records  # provenance survives

    def test_recover_orphans_removes_only_orphans(self, store, strong_account):
        trace_ok = tiny_trace()
        store.store_trace(trace_ok)
        # Crash a second client between provenance and data.
        orphan_trace = big_env_trace()
        plan = FaultPlan().crash_at("a2.store.before_data_put")
        crashing = make_sdb_store(strong_account, faults=plan)
        with pytest.raises(ClientCrash):
            crashing.store(orphan_trace[-1])
        removed = store.recover_orphans()
        assert orphan_trace[-1].subject.item_name in removed
        # The healthy object's provenance is untouched.
        assert store.read("data/out.csv").consistent

    def test_batched_put_attributes_for_wide_items(self, strong_account):
        store = make_sdb_store(strong_account)
        pas = PassSystem()
        for i in range(120):
            pas.stage_input(f"in{i}", b"x")
        pas.drain_flushes()
        with pas.process("wide") as proc:
            for i in range(120):
                proc.read(f"in{i}")
            proc.write("out", b"y")
            event = proc.close("out")
        before = strong_account.meter.snapshot()
        store.store(event)
        delta = strong_account.meter.snapshot() - before
        # >100 attributes on the process item forces 2+ PutAttributes.
        assert delta.request_count("simpledb", "PutAttributes") >= 3


class TestS3SimpleDBSQS:
    @pytest.fixture
    def store(self, strong_account):
        return make_architecture(
            "s3+simpledb+sqs", strong_account, commit_threshold=3
        )

    def test_data_travels_via_temp_and_copy(self, store, strong_account, trace):
        before = strong_account.meter.snapshot()
        store.store_trace(trace)
        store.pump()
        delta = strong_account.meter.snapshot() - before
        assert delta.request_count("s3", "COPY") == len(trace)
        assert delta.request_count("s3", "PUT") >= len(trace)

    def test_temp_objects_cleaned_after_commit(self, store, strong_account, trace):
        store.store_trace(trace)
        store.pump()
        keys = strong_account.s3.authoritative_keys(DATA_BUCKET)
        assert not any(k.startswith(".pass/tmp/") for k in keys)

    def test_wal_drained_after_commit(self, store, strong_account, trace):
        store.store_trace(trace)
        store.pump()
        assert strong_account.sqs.exact_message_count(store.queue_url) == 0

    def test_crash_mid_log_leaves_no_partial_state(
        self, strong_account, trace
    ):
        plan = FaultPlan().crash_at("a3.log.before_commit")
        store = make_architecture(
            "s3+simpledb+sqs", strong_account, faults=plan, commit_threshold=3
        )
        with pytest.raises(ClientCrash):
            store.store(trace[-1])
        plan.disarm()
        store.restart_commit_daemon().drain()
        # Uncommitted: neither data nor provenance became visible.
        assert not strong_account.s3.exists_authoritative(
            DATA_BUCKET, trace[-1].subject.name
        )
        assert (
            strong_account.simpledb.authoritative_item(
                PROV_DOMAIN, trace[-1].subject.item_name
            )
            is None
        )

    def test_commit_after_crash_recovers_committed_txn(
        self, strong_account, trace
    ):
        plan = FaultPlan().crash_at("a3.log.done")
        store = make_architecture(
            "s3+simpledb+sqs", strong_account, faults=plan, commit_threshold=3
        )
        with pytest.raises(ClientCrash):
            store.store(trace[-1])  # commit record did reach the queue
        plan.disarm()
        store.restart_commit_daemon().drain()
        assert strong_account.s3.exists_authoritative(
            DATA_BUCKET, trace[-1].subject.name
        )

    def test_multiple_clients_separate_queues(self, strong_account):
        a = make_architecture(
            "s3+simpledb+sqs", strong_account, client_id="alpha"
        )
        b = make_architecture(
            "s3+simpledb+sqs", strong_account, client_id="beta"
        )
        assert a.queue_url != b.queue_url
        # Clients write different objects concurrently (the usage model).
        pas_a, pas_b = PassSystem(), PassSystem()
        with pas_a.process("pa") as proc:
            proc.write("a.out", b"from a")
            proc.close("a.out")
        with pas_b.process("pb") as proc:
            proc.write("b.out", b"from b")
            proc.close("b.out")
        a.store_trace(pas_a.drain_flushes())
        b.store_trace(pas_b.drain_flushes())
        a.pump()
        b.pump()
        assert a.read("a.out").data.read() == b"from a"
        assert b.read("b.out").data.read() == b"from b"
