"""Fleet runs are a pure function of their seed.

Every random choice a fleet makes flows from its own seeded
``random.Random`` stream (and the account's seeded RNG family) — never
from the module-level ``random`` state, which other tests or
pytest-xdist workers would perturb. Regression: same seed ⇒ identical
meter totals, even with the global RNG scrambled between runs.
"""

from __future__ import annotations

import random

from repro.fleet import ClientFleet
from repro.passlib.capture import PassSystem


def pipeline_traces(n_labs: int = 3):
    traces = []
    for lab in range(n_labs):
        pas = PassSystem(workload=f"det-lab{lab}")
        pas.stage_input(f"lab{lab}/in.dat", f"lab{lab}".encode())
        events = list(pas.drain_flushes())
        for stage in range(3):
            with pas.process("crunch", argv=f"--stage {stage}") as proc:
                proc.read(f"lab{lab}/in.dat")
                proc.write(f"lab{lab}/out/{stage}.dat", f"{lab}:{stage}".encode())
                proc.close(f"lab{lab}/out/{stage}.dat")
            events.extend(pas.drain_flushes())
        traces.append(events)
    return traces


def run_fleet(seed: int, shards: int = 2):
    fleet = ClientFleet(
        n_clients=4, architecture="s3+simpledb+sqs", seed=seed, shards=shards
    )
    assigned = fleet.scatter(pipeline_traces())
    fleet.run_round_robin(batch=2)
    usage = fleet.account.meter.snapshot()
    return assigned, usage


def test_same_seed_identical_meter_totals():
    assigned_a, usage_a = run_fleet(seed=17)
    # Scramble the global RNG between runs: a fleet leaning on module
    # state (the pytest-xdist hazard) would diverge here.
    random.seed("adversarial interleaving")
    random.random()
    assigned_b, usage_b = run_fleet(seed=17)

    assert assigned_a == assigned_b
    assert usage_a.requests == usage_b.requests
    assert usage_a.bytes_in == usage_b.bytes_in
    assert usage_a.bytes_out == usage_b.bytes_out
    assert usage_a.stored_bytes == usage_b.stored_bytes
    assert usage_a.box_usage_hours == usage_b.box_usage_hours


def test_different_seed_changes_scatter():
    assigned_a, _ = run_fleet(seed=17)
    assigned_b, _ = run_fleet(seed=18)
    # Not a hard guarantee for any pair of seeds, but these two differ —
    # locking in that the seed actually reaches the scatter decisions.
    assert assigned_a != assigned_b


def test_scatter_is_deterministic_without_running():
    fleet_a = ClientFleet(n_clients=5, architecture="s3+simpledb", seed=9)
    fleet_b = ClientFleet(n_clients=5, architecture="s3+simpledb", seed=9)
    traces = pipeline_traces(n_labs=5)
    assert fleet_a.scatter(traces) == fleet_b.scatter(traces)
