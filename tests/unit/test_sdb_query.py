"""Unit tests for the SimpleDB query languages (bracket Query + SELECT)."""

import pytest

from repro.aws.sdb_query import (
    CompiledQuery,
    parse_query,
    parse_select,
    run_query,
)
from repro.errors import InvalidQueryExpression

ITEMS = [
    ("apple_1", {"type": ("file",), "color": ("red", "green"), "size": ("0005",)}),
    ("banana_1", {"type": ("file",), "color": ("yellow",), "size": ("0007",)}),
    ("blast_1", {"type": ("process",), "name": ("blast",)}),
    ("cherry_1", {"type": ("file",), "color": ("red",), "size": ("0002",)}),
]


def names(query: CompiledQuery) -> list[str]:
    return [name for name, _ in run_query(ITEMS, query)]


class TestBracketLanguage:
    def test_empty_matches_all(self):
        assert names(parse_query(None)) == [n for n, _ in ITEMS]
        assert names(parse_query("   ")) == [n for n, _ in ITEMS]

    def test_equality(self):
        assert names(parse_query("['color' = 'red']")) == ["apple_1", "cherry_1"]

    def test_multivalue_any_semantics(self):
        # apple has color {red, green}: matches green too.
        assert "apple_1" in names(parse_query("['color' = 'green']"))

    def test_or_within_predicate(self):
        query = parse_query("['color' = 'yellow' or 'color' = 'green']")
        assert names(query) == ["apple_1", "banana_1"]

    def test_and_within_predicate_is_range(self):
        query = parse_query("['size' > '0002' and 'size' < '0007']")
        assert names(query) == ["apple_1"]

    def test_and_requires_single_value_satisfying_both(self):
        # No single color is both red and green.
        query = parse_query("['color' = 'red' and 'color' = 'green']")
        assert names(query) == []

    def test_cross_attribute_in_one_bracket_rejected(self):
        with pytest.raises(InvalidQueryExpression):
            parse_query("['color' = 'red' and 'type' = 'file']")

    def test_intersection(self):
        query = parse_query("['type' = 'file'] intersection ['color' = 'red']")
        assert names(query) == ["apple_1", "cherry_1"]

    def test_union(self):
        query = parse_query("['name' = 'blast'] union ['color' = 'yellow']")
        assert names(query) == ["banana_1", "blast_1"]

    def test_not(self):
        query = parse_query("not ['type' = 'process']")
        assert names(query) == ["apple_1", "banana_1", "cherry_1"]

    def test_starts_with(self):
        query = parse_query("['color' starts-with 're']")
        assert names(query) == ["apple_1", "cherry_1"]

    def test_missing_attribute_never_matches(self):
        assert names(parse_query("['name' != 'x']")) == ["blast_1"]

    def test_inequalities(self):
        assert names(parse_query("['size' >= '0005']")) == ["apple_1", "banana_1"]
        assert names(parse_query("['size' <= '0002']")) == ["cherry_1"]

    def test_sort(self):
        query = parse_query("['type' = 'file'] sort 'size' desc")
        assert names(query) == ["banana_1", "apple_1", "cherry_1"]

    def test_parenthesised_set_expression(self):
        query = parse_query(
            "(['color' = 'red'] union ['color' = 'yellow']) "
            "intersection ['type' = 'file']"
        )
        assert names(query) == ["apple_1", "banana_1", "cherry_1"]

    @pytest.mark.parametrize(
        "bad",
        [
            "['a' = ",
            "['a' ~ 'b']",
            "'a' = 'b'",
            "['a' = 'b'] intersect ['c' = 'd'] garbage",
            "[]",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidQueryExpression):
            parse_query(bad)

    def test_quote_escaping(self):
        query = parse_query("['name' = 'o''brien']")
        items = [("x", {"name": ("o'brien",)})]
        assert [n for n, _ in run_query(items, query)] == ["x"]


class TestSelect:
    def test_basic(self):
        statement = parse_select("select * from d where type = 'file'")
        assert statement.domain == "d"
        assert statement.projection == ("*",)
        assert [n for n, _ in run_query(ITEMS, statement.query)] == [
            "apple_1", "banana_1", "cherry_1",
        ]

    def test_and_or_not(self):
        statement = parse_select(
            "select * from d where type = 'file' and not color = 'red'"
        )
        assert [n for n, _ in run_query(ITEMS, statement.query)] == ["banana_1"]

    def test_in_list(self):
        statement = parse_select(
            "select * from d where color in ('yellow', 'green')"
        )
        assert [n for n, _ in run_query(ITEMS, statement.query)] == [
            "apple_1", "banana_1",
        ]

    def test_between(self):
        statement = parse_select(
            "select * from d where size between '0003' and '0008'"
        )
        assert [n for n, _ in run_query(ITEMS, statement.query)] == [
            "apple_1", "banana_1",
        ]

    def test_like(self):
        statement = parse_select("select * from d where name like 'bla%'")
        assert [n for n, _ in run_query(ITEMS, statement.query)] == ["blast_1"]

    def test_is_null_and_not_null(self):
        null_q = parse_select("select * from d where name is null").query
        assert "blast_1" not in [n for n, _ in run_query(ITEMS, null_q)]
        not_null = parse_select("select * from d where name is not null").query
        assert [n for n, _ in run_query(ITEMS, not_null)] == ["blast_1"]

    def test_every_requires_all_values(self):
        statement = parse_select("select * from d where every(color) = 'red'")
        # apple has {red, green}: not every value is red; cherry qualifies.
        assert [n for n, _ in run_query(ITEMS, statement.query)] == ["cherry_1"]

    def test_order_and_limit(self):
        statement = parse_select(
            "select * from d where type = 'file' order by size desc limit 2"
        )
        assert statement.limit == 2
        ordered = [n for n, _ in run_query(ITEMS, statement.query)]
        assert ordered[:2] == ["banana_1", "apple_1"]

    def test_count_star(self):
        statement = parse_select("select count(*) from d where type = 'file'")
        assert statement.is_count

    def test_parentheses(self):
        statement = parse_select(
            "select * from d where (color = 'red' or color = 'yellow') "
            "and size >= '0005'"
        )
        assert [n for n, _ in run_query(ITEMS, statement.query)] == [
            "apple_1", "banana_1",
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "update d set a = 'b'",
            "select from d",
            "select * where a = 'b'",
            "select * from d where a like '%suffix'",
            "select * from d limit many",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidQueryExpression):
            parse_select(bad)
