"""Unit tests for provenance records, references, and bundles."""

import pytest

from repro.blob import BytesBlob
from repro.passlib.records import (
    Attr,
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    ProvenanceRecord,
    consistency_token,
)


class TestObjectRef:
    def test_encode_decode_roundtrip(self):
        ref = ObjectRef("data/foo.csv", 2)
        assert ref.encode() == "data/foo.csv:v0002"
        assert ObjectRef.decode(ref.encode()) == ref

    def test_item_name_roundtrip(self):
        ref = ObjectRef("out/bar", 17)
        assert ref.item_name == "out/bar_v0017"
        assert ObjectRef.from_item_name(ref.item_name) == ref

    def test_names_with_separators(self):
        ref = ObjectRef("weird:v_name_v2", 3)
        assert ObjectRef.decode(ref.encode()) == ref
        assert ObjectRef.from_item_name(ref.item_name) == ref

    def test_versions_start_at_one(self):
        with pytest.raises(ValueError):
            ObjectRef("x", 0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            ObjectRef.decode("no-version-here")
        with pytest.raises(ValueError):
            ObjectRef.from_item_name("still-no-version")

    def test_ordering_is_lexicographic_name_then_version(self):
        assert ObjectRef("a", 2) < ObjectRef("b", 1)
        assert ObjectRef("a", 1) < ObjectRef("a", 2)


class TestProvenanceRecord:
    def test_reference_values_encode(self):
        subject = ObjectRef("foo", 2)
        record = ProvenanceRecord(subject, Attr.INPUT, ObjectRef("bar", 2))
        assert record.is_reference
        assert record.encoded_value() == "bar:v0002"
        assert "input=bar:v0002" in str(record)

    def test_string_values_pass_through(self):
        record = ProvenanceRecord(ObjectRef("foo", 1), Attr.TYPE, "file")
        assert not record.is_reference
        assert record.encoded_value() == "file"

    def test_value_size_counts_utf8_bytes(self):
        record = ProvenanceRecord(ObjectRef("f", 1), Attr.ENV, "é" * 100)
        assert record.value_size == 200


class TestProvenanceBundle:
    def test_rejects_foreign_records(self):
        subject = ObjectRef("foo", 1)
        alien = ProvenanceRecord(ObjectRef("bar", 1), Attr.TYPE, "file")
        with pytest.raises(ValueError):
            ProvenanceBundle(subject=subject, kind="file", records=(alien,))

    def test_inputs_lists_references(self):
        subject = ObjectRef("foo", 2)
        records = (
            ProvenanceRecord(subject, Attr.TYPE, "file"),
            ProvenanceRecord(subject, Attr.INPUT, ObjectRef("proc/x.1", 1)),
            ProvenanceRecord(subject, Attr.VERSION_OF, ObjectRef("foo", 1)),
        )
        bundle = ProvenanceBundle(subject=subject, kind="file", records=records)
        assert bundle.inputs() == [ObjectRef("proc/x.1", 1), ObjectRef("foo", 1)]

    def test_attribute_values(self):
        subject = ObjectRef("foo", 1)
        bundle = ProvenanceBundle(
            subject=subject,
            kind="file",
            records=(
                ProvenanceRecord(subject, Attr.NAME, "foo"),
                ProvenanceRecord(subject, Attr.INPUT, ObjectRef("a", 1)),
                ProvenanceRecord(subject, Attr.INPUT, ObjectRef("b", 1)),
            ),
        )
        assert bundle.attribute_values(Attr.INPUT) == ["a:v0001", "b:v0001"]
        assert len(bundle) == 3


class TestFlushEvent:
    def test_nonce_is_version(self):
        subject = ObjectRef("foo", 3)
        bundle = ProvenanceBundle(subject=subject, kind="file", records=())
        event = FlushEvent(bundle=bundle, data=BytesBlob(b"x"))
        assert event.nonce == "v0003"

    def test_all_bundles_ancestors_first(self):
        subject = ObjectRef("foo", 1)
        ancestor_subject = ObjectRef("proc/p.1", 1)
        own = ProvenanceBundle(subject=subject, kind="file", records=())
        ancestor = ProvenanceBundle(subject=ancestor_subject, kind="process", records=())
        event = FlushEvent(bundle=own, data=BytesBlob(b"x"), ancestors=(ancestor,))
        assert [b.subject for b in event.all_bundles()] == [
            ancestor_subject, subject,
        ]


class TestConsistencyToken:
    def test_changes_with_data_and_nonce(self):
        base = consistency_token("abc", "v0001")
        assert base == consistency_token("abc", "v0001")
        assert base != consistency_token("abd", "v0001")
        assert base != consistency_token("abc", "v0002")

    def test_same_data_different_nonce_detectable(self):
        """§4.2: rewriting identical bytes still changes the token."""
        data_md5 = BytesBlob(b"same bytes").md5()
        assert consistency_token(data_md5, "v0001") != consistency_token(
            data_md5, "v0002"
        )
