"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStorage:
    def test_prints_table2(self, capsys):
        assert main(["storage", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "s3+simpledb+sqs" in out
        assert "121.8MB" in out  # paper comparison included by default

    def test_no_paper_flag(self, capsys):
        assert main(["storage", "--scale", "0.1", "--no-paper"]) == 0
        out = capsys.readouterr().out
        assert "121.8MB" not in out


class TestQueries:
    def test_prints_table3(self, capsys):
        assert main(["queries", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "SimpleDB ops" in out


class TestCosts:
    def test_prints_cost_table(self, capsys):
        assert main(["costs", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "storage $/mo" in out


class TestFigures:
    def test_all_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "architecture: s3" in out
        assert "architecture: s3+simpledb+sqs" in out
        assert "commit-daemon" in out

    def test_single_architecture_with_dot(self, capsys):
        assert main(["figures", "--architecture", "s3", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.count("architecture:") == 1
        assert "digraph" in out


class TestDemo:
    def test_demo_roundtrip(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "consistent=True" in out
        assert "TOTAL" in out

    def test_demo_architecture_choice(self, capsys):
        assert main(["demo", "--architecture", "s3"]) == 0
        assert "via s3" in capsys.readouterr().out

    def test_demo_ddb_indexes(self, capsys):
        assert main(
            ["demo", "--shards", "2", "--backend", "ddb",
             "--ddb-indexes", "name,input"]
        ) == 0
        out = capsys.readouterr().out
        assert "gsi-name(name" in out and "gsi-input(input" in out
        assert "Q2 outputs-of(analyze): 1 file(s)" in out

    def test_demo_rejects_malformed_index_spec(self, capsys):
        assert main(
            ["demo", "--backend", "ddb", "--ddb-indexes", "name,+type"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_demo_help_documents_index_knob(self, capsys):
        with pytest.raises(SystemExit):
            main(["demo", "--help"])
        out = capsys.readouterr().out
        assert "--ddb-indexes" in out and "REPRO_DDB_INDEXES" in out


class TestAdvise:
    def test_advise_summary(self, capsys):
        assert main(["advise", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "prefetch: hit rate" in out
        assert "stage transition" in out


class TestProperties:
    def test_properties_exit_code_tracks_match(self, capsys):
        assert main(["--seed", "5", "properties"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert out.count("yes") >= 10


class TestExport:
    def test_prov_json(self, capsys):
        assert main(["export", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        import json

        document = json.loads(out)
        assert document["entity"] and document["activity"]
        assert document["used"] and document["wasGeneratedBy"]

    def test_lineage_dot_with_focus(self, capsys):
        assert main(
            ["export", "--scale", "0.05", "--format", "dot",
             "--focus", "linux/vmlinux:v0001"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lineage")
        assert "vmlinux" in out
