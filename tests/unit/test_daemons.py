"""Unit tests for the commit daemon and cleaner daemon."""

import pytest

from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET
from repro.errors import ClientCrash
from repro.units import SECONDS_PER_DAY
from tests.conftest import make_architecture, provenance_oracle_item, tiny_trace


@pytest.fixture
def a3(strong_account):
    return make_architecture(
        "s3+simpledb+sqs", strong_account, commit_threshold=100
    )


class TestCommitDaemonTrigger:
    def test_below_threshold_no_commit(self, a3, strong_account, trace):
        # threshold=100: the daemon's monitor tick should not fire.
        a3.store_trace(trace)
        assert not strong_account.s3.exists_authoritative(
            DATA_BUCKET, trace[-1].subject.name
        )

    def test_force_commits_regardless(self, a3, strong_account, trace):
        a3.store_trace(trace)
        applied = a3.commit_daemon.run_once(force=True)
        assert applied == len(trace)
        assert strong_account.s3.exists_authoritative(
            DATA_BUCKET, trace[-1].subject.name
        )

    def test_threshold_triggers(self, strong_account):
        store = make_architecture(
            "s3+simpledb+sqs", strong_account, commit_threshold=2
        )
        store.store_trace(tiny_trace())
        # With a tiny threshold the in-store monitor tick already ran.
        assert store.commit_daemon.stats.transactions_applied >= 1


class TestCommitDaemonIdempotency:
    def test_daemon_crash_mid_apply_then_replay(self, strong_account, trace):
        daemon_plan = FaultPlan().crash_at("daemon.apply.after_copy")
        store = make_architecture(
            "s3+simpledb+sqs",
            strong_account,
            commit_threshold=100,
            daemon_faults=daemon_plan,
        )
        store.store_trace(trace)
        with pytest.raises(ClientCrash):
            store.commit_daemon.drain()
        # Visibility timeout expires; a fresh daemon replays idempotently.
        strong_account.clock.advance(200.0)
        fresh = store.restart_commit_daemon()
        applied = fresh.drain()
        assert applied >= 1
        result = store.read(trace[-1].subject.name)
        assert result.consistent
        assert strong_account.sqs.exact_message_count(store.queue_url) == 0

    def test_crash_between_prov_and_message_delete(self, strong_account, trace):
        daemon_plan = FaultPlan().crash_at("daemon.apply.after_put_attributes")
        store = make_architecture(
            "s3+simpledb+sqs",
            strong_account,
            commit_threshold=100,
            daemon_faults=daemon_plan,
        )
        store.store_trace(trace)
        with pytest.raises(ClientCrash):
            store.commit_daemon.drain()
        strong_account.clock.advance(200.0)
        store.restart_commit_daemon().drain()
        # Replay stored provenance again without error (idempotency §4.3)
        # — on whichever backend the environment placed the store.
        item = provenance_oracle_item(strong_account, trace[-1].subject.item_name)
        assert item is not None
        result = store.read(trace[-1].subject.name)
        assert result.consistent

    def test_double_drain_harmless(self, a3, strong_account, trace):
        a3.store_trace(trace)
        a3.commit_daemon.drain()
        before = strong_account.meter.snapshot()
        a3.commit_daemon.drain()
        delta = strong_account.meter.snapshot() - before
        assert delta.request_count("s3", "COPY") == 0  # nothing to redo


class TestCleanerDaemon:
    def test_removes_only_old_temp_objects(self, strong_account, trace):
        plan = FaultPlan().crash_at("a3.log.before_commit")
        store = make_architecture(
            "s3+simpledb+sqs",
            strong_account,
            faults=plan,
            commit_threshold=100,
        )
        with pytest.raises(ClientCrash):
            store.store(trace[-1])  # abandoned temp object
        plan.disarm()
        # A fresh temp object from a live transaction must survive.
        strong_account.clock.advance(4 * SECONDS_PER_DAY + 1)
        store.store(tiny_trace()[-1])
        removed = store.cleaner_daemon.run_once()
        assert len(removed) == 1
        assert removed[0].startswith(".pass/tmp/")
        keys = strong_account.s3.authoritative_keys(DATA_BUCKET)
        fresh_temps = [k for k in keys if k.startswith(".pass/tmp/")]
        assert len(fresh_temps) == 1  # the live transaction's temp object

    def test_noop_when_nothing_old(self, a3, strong_account, trace):
        a3.store_trace(trace)
        assert a3.cleaner_daemon.run_once() == []

    def test_stats(self, strong_account, trace):
        plan = FaultPlan().crash_at("a3.log.before_commit")
        store = make_architecture(
            "s3+simpledb+sqs", strong_account, faults=plan, commit_threshold=100
        )
        with pytest.raises(ClientCrash):
            store.store(trace[-1])
        strong_account.clock.advance(5 * SECONDS_PER_DAY)
        store.cleaner_daemon.run_once()
        assert store.cleaner_daemon.stats.objects_removed == 1
