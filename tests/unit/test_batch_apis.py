"""Unit tests for the batch write APIs (group-commit PR).

Covers the three service-level batch calls — SimpleDB
``BatchPutAttributes``, SQS ``SendMessageBatch``/``DeleteMessageBatch``,
and the DynamoDB-style ``BatchWriteItem`` — plus the backend adapters'
``put_provenance_items`` built on them. The recurring themes:

* entry caps and empty-batch rejection, per the real 2009-era APIs;
* batch result == the result of the equivalent single-call sequence;
* one metered request per batch call (the whole point of batching);
* DynamoDB's honest partial success: throttled entries come back as
  ``UnprocessedItems`` and only admitted work is metered.
"""

import pytest

from repro import errors
from repro.aws import billing
from repro.aws.backend import DynamoBackend, SimpleDBBackend
from repro.units import KB


# ---------------------------------------------------------------------------
# SimpleDB BatchPutAttributes
# ---------------------------------------------------------------------------


class TestBatchPutAttributes:
    def test_matches_sequential_puts(self, strong_account):
        sdb = strong_account.simpledb
        sdb.create_domain("a")
        sdb.create_domain("b")
        items = [
            (f"item-{i}", [("type", "file"), ("seq", str(i))]) for i in range(7)
        ]
        for name, attrs in items:
            sdb.put_attributes("a", name, list(attrs))
        sdb.batch_put_attributes("b", items)
        for name, _ in items:
            assert sdb.authoritative_item("b", name) == sdb.authoritative_item(
                "a", name
            )

    def test_one_request_per_call(self, strong_account):
        sdb = strong_account.simpledb
        sdb.create_domain("d")
        before = strong_account.meter.snapshot()
        sdb.batch_put_attributes(
            "d", [(f"i{i}", [("k", "v")]) for i in range(25)]
        )
        delta = strong_account.meter.snapshot() - before
        assert delta.request_count(billing.SDB) == 1
        assert delta.request_count(billing.SDB, "BatchPutAttributes") == 1

    def test_box_usage_amortises(self, strong_account):
        """25 items in one batch must cost far less machine-time than 25
        PutAttributes calls (Amazon's published formula: flat base plus a
        negligible cubic term)."""
        sdb = strong_account.simpledb
        sdb.create_domain("one")
        sdb.create_domain("many")
        items = [(f"i{i}", [("k", "v")]) for i in range(25)]
        before = strong_account.meter.snapshot()
        sdb.batch_put_attributes("one", items)
        batched = strong_account.meter.snapshot() - before
        before = strong_account.meter.snapshot()
        for name, attrs in items:
            sdb.put_attributes("many", name, list(attrs))
        single = strong_account.meter.snapshot() - before
        assert batched.box_usage_hours < single.box_usage_hours / 5

    def test_entry_cap(self, strong_account):
        sdb = strong_account.simpledb
        sdb.create_domain("d")
        with pytest.raises(errors.NumberSubmittedItemsExceeded):
            sdb.batch_put_attributes(
                "d", [(f"i{i}", [("k", "v")]) for i in range(26)]
            )

    def test_empty_batch_rejected(self, strong_account):
        sdb = strong_account.simpledb
        sdb.create_domain("d")
        with pytest.raises(errors.EmptyBatchRequest):
            sdb.batch_put_attributes("d", [])

    def test_all_or_nothing_validation(self, strong_account):
        """A bad entry anywhere rejects the whole batch before any state
        or meter mutates — replaying a failed batch cannot half-apply."""
        sdb = strong_account.simpledb
        sdb.create_domain("d")
        before = strong_account.meter.snapshot()
        with pytest.raises(errors.AttributeValueTooLong):
            sdb.batch_put_attributes(
                "d",
                [
                    ("good", [("k", "v")]),
                    ("bad", [("k", "x" * (KB + 1))]),
                ],
            )
        assert sdb.authoritative_item("d", "good") is None
        delta = strong_account.meter.snapshot() - before
        # The request itself was made (and billed); no data transferred.
        assert delta.transfer_in(billing.SDB) == 0

    def test_repeated_item_entries_merge_in_order(self, strong_account):
        """Two entries for one item apply sequentially, like two calls —
        how the adapter splits >100-attribute items across entries."""
        sdb = strong_account.simpledb
        sdb.create_domain("d")
        sdb.batch_put_attributes(
            "d",
            [
                ("i", [("k", "first")]),
                ("i", [("k", "second")]),
            ],
        )
        assert sdb.authoritative_item("d", "i") == {"k": ("first", "second")}


# ---------------------------------------------------------------------------
# SQS SendMessageBatch / DeleteMessageBatch
# ---------------------------------------------------------------------------


@pytest.fixture
def queue(strong_account):
    url = strong_account.sqs.create_queue("q", visibility_timeout=30.0)
    return strong_account, url


class TestSendMessageBatch:
    def test_roundtrip_preserves_order(self, queue):
        account, url = queue
        bodies = [f"m{i}" for i in range(10)]
        ids = account.sqs.send_message_batch(url, bodies)
        assert len(ids) == 10
        received = account.sqs.receive_message(url, max_messages=10)
        assert sorted(m.body for m in received) == sorted(bodies)

    def test_one_request_per_call(self, queue):
        account, url = queue
        before = account.meter.snapshot()
        account.sqs.send_message_batch(url, ["a", "b", "c"])
        delta = account.meter.snapshot() - before
        assert delta.request_count(billing.SQS) == 1
        assert delta.request_count(billing.SQS, "SendMessageBatch") == 1

    def test_entry_cap(self, queue):
        account, url = queue
        with pytest.raises(errors.TooManyEntriesInBatchRequest):
            account.sqs.send_message_batch(url, [f"m{i}" for i in range(11)])

    def test_empty_batch_rejected(self, queue):
        account, url = queue
        with pytest.raises(errors.EmptyBatchRequest):
            account.sqs.send_message_batch(url, [])

    def test_all_or_nothing_validation(self, queue):
        account, url = queue
        with pytest.raises(errors.MessageTooLong):
            account.sqs.send_message_batch(url, ["ok", "x" * (8 * KB + 1)])
        assert account.sqs.exact_message_count(url) == 0


class TestDeleteMessageBatch:
    def test_deletes_all(self, queue):
        account, url = queue
        account.sqs.send_message_batch(url, [f"m{i}" for i in range(6)])
        received = account.sqs.receive_message(url, max_messages=10)
        failed = account.sqs.delete_message_batch(
            url, [m.receipt_handle for m in received]
        )
        assert failed == []
        account.clock.advance(60.0)
        assert account.sqs.exact_message_count(url) == 0

    def test_one_request_per_call(self, queue):
        account, url = queue
        account.sqs.send_message_batch(url, ["a", "b"])
        received = account.sqs.receive_message(url, max_messages=10)
        before = account.meter.snapshot()
        account.sqs.delete_message_batch(
            url, [m.receipt_handle for m in received]
        )
        delta = account.meter.snapshot() - before
        assert delta.request_count(billing.SQS) == 1

    def test_partial_success_reports_bad_handles(self, queue):
        """Per-entry failure, not all-or-nothing: the real API returns
        BatchResultErrorEntry per failed id, and the daemon treats a
        superseded handle exactly like the single call's
        ReceiptHandleInvalid — the rest of the batch still deletes."""
        account, url = queue
        account.sqs.send_message_batch(url, ["a", "b"])
        received = account.sqs.receive_message(url, max_messages=10)
        handles = [m.receipt_handle for m in received]
        failed = account.sqs.delete_message_batch(
            url, ["garbage-handle"] + handles
        )
        assert failed == ["garbage-handle"]
        account.clock.advance(60.0)
        assert account.sqs.exact_message_count(url) == 0

    def test_entry_cap(self, queue):
        account, url = queue
        with pytest.raises(errors.TooManyEntriesInBatchRequest):
            account.sqs.delete_message_batch(url, [f"h{i}#1" for i in range(11)])


# ---------------------------------------------------------------------------
# DynamoDB-style BatchWriteItem
# ---------------------------------------------------------------------------


class TestBatchWriteItem:
    def test_matches_sequential_updates(self, strong_account):
        ddb = strong_account.dynamodb
        ddb.create_table("a")
        ddb.create_table("b")
        puts = [(f"k{i}", [("type", "file"), ("seq", str(i))]) for i in range(9)]
        for key, adds in puts:
            ddb.update_item("a", key, list(adds))
        unprocessed = ddb.batch_write_item("b", puts)
        assert unprocessed == []
        for key, _ in puts:
            assert ddb.authoritative_item("b", key) == ddb.authoritative_item(
                "a", key
            )

    def test_one_request_same_write_units(self, strong_account):
        """The batch saves round trips, never write units: capacity cost
        equals the equivalent UpdateItem sequence, request count is 1."""
        ddb = strong_account.dynamodb
        ddb.create_table("one")
        ddb.create_table("many")
        puts = [(f"k{i}", [("v", "x" * 600)]) for i in range(10)]
        before = strong_account.meter.snapshot()
        assert ddb.batch_write_item("one", puts) == []
        batched = strong_account.meter.snapshot() - before
        before = strong_account.meter.snapshot()
        for key, adds in puts:
            ddb.update_item("many", key, list(adds))
        single = strong_account.meter.snapshot() - before
        assert batched.request_count(billing.DDB) == 1
        assert single.request_count(billing.DDB) == 10
        assert batched.write_units(billing.DDB) == pytest.approx(
            single.write_units(billing.DDB)
        )

    def test_per_request_price_line_amortises(self, strong_account):
        """The dynamodb.requests price line is what batching shrinks."""
        prices = strong_account.prices
        ddb = strong_account.dynamodb
        ddb.create_table("one")
        ddb.create_table("many")
        puts = [(f"k{i}", [("v", "x")]) for i in range(25)]
        before = strong_account.meter.snapshot()
        ddb.batch_write_item("one", puts)
        batched = strong_account.meter.snapshot() - before
        before = strong_account.meter.snapshot()
        for key, adds in puts:
            ddb.update_item("many", key, list(adds))
        single = strong_account.meter.snapshot() - before

        def request_usd(usage):
            return dict(prices.cost(usage).lines)["dynamodb.requests"]

        assert request_usd(batched) == pytest.approx(request_usd(single) / 25)

    def test_entry_cap(self, strong_account):
        ddb = strong_account.dynamodb
        ddb.create_table("t")
        with pytest.raises(errors.TooManyEntriesInBatchRequest):
            ddb.batch_write_item(
                "t", [(f"k{i}", [("a", "b")]) for i in range(26)]
            )

    def test_empty_batch_rejected(self, strong_account):
        ddb = strong_account.dynamodb
        ddb.create_table("t")
        with pytest.raises(errors.EmptyBatchRequest):
            ddb.batch_write_item("t", [])

    def test_unprocessed_items_partial_success(self, strong_account):
        """A tiny write window admits some entries and returns the rest
        as UnprocessedItems; only the admitted work is metered."""
        ddb = strong_account.dynamodb
        ddb.create_table("t", write_capacity=2)
        puts = [(f"k{i}", [("v", "x" * 600)]) for i in range(10)]  # 1 WCU each
        before = strong_account.meter.snapshot()
        unprocessed = ddb.batch_write_item("t", puts)
        delta = strong_account.meter.snapshot() - before
        assert 0 < len(unprocessed) < 10
        admitted = 10 - len(unprocessed)
        assert {k for k, _ in unprocessed} <= {k for k, _ in puts}
        assert delta.write_units(billing.DDB) == pytest.approx(admitted)
        for key, _ in unprocessed:
            assert ddb.authoritative_item("t", key) is None

    def test_every_entry_throttled_raises_unmetered(self, strong_account):
        ddb = strong_account.dynamodb
        ddb.create_table("t", write_capacity=2)
        # Exhaust the window first, then batch: nothing can be admitted.
        ddb.update_item("t", "warm", [("v", "x" * 1500)])
        before = strong_account.meter.snapshot()
        with pytest.raises(errors.ProvisionedThroughputExceeded):
            ddb.batch_write_item("t", [("k", [("v", "x")])])
        delta = strong_account.meter.snapshot() - before
        assert delta.request_count(billing.DDB) == 0
        assert delta.write_units(billing.DDB) == 0

    def test_validation_precedes_admission(self, strong_account):
        """An oversized item anywhere rejects the whole batch before any
        entry commits."""
        ddb = strong_account.dynamodb
        ddb.create_table("t")
        with pytest.raises(errors.ItemSizeLimitExceeded):
            ddb.batch_write_item(
                "t",
                [
                    ("good", [("v", "x")]),
                    ("big", [(f"a{i}", "x" * 60 * KB) for i in range(8)]),
                ],
            )
        assert ddb.authoritative_item("t", "good") is None


# ---------------------------------------------------------------------------
# Backend adapters: put_provenance_items
# ---------------------------------------------------------------------------


class TestBackendBatchPuts:
    def test_simpledb_adapter_packs_and_chunks(self, strong_account):
        backend = SimpleDBBackend(strong_account.simpledb)
        backend.provision("p")
        wide = [(f"wide-a{i}", "v") for i in range(130)]  # > 100 attrs
        items = [("wide", wide)] + [
            (f"item-{i}", [("k", str(i))]) for i in range(30)
        ]
        before = strong_account.meter.snapshot()
        backend.put_provenance_items("p", items)
        delta = strong_account.meter.snapshot() - before
        # 32 entries (wide split into two) -> two 25-capped batch calls.
        assert delta.request_count(billing.SDB, "BatchPutAttributes") == 2
        assert backend.authoritative_item("p", "wide") == {
            f"wide-a{i}": ("v",) for i in range(130)
        }
        assert backend.authoritative_item("p", "item-29") == {"k": ("29",)}

    def test_dynamo_adapter_retries_unprocessed(self, strong_account):
        """A tight write window forces UnprocessedItems; the adapter
        backs off (advancing the clock, counting throttles) until every
        entry lands."""
        ddb = strong_account.dynamodb
        ddb.create_table("p", write_capacity=3)
        backend = DynamoBackend(ddb)
        items = [(f"k{i}", [("v", "x" * 600)]) for i in range(12)]
        start = strong_account.clock.now
        backend.put_provenance_items("p", items)
        assert backend.throttled_requests > 0
        assert strong_account.clock.now > start
        for key, _ in items:
            assert ddb.authoritative_item("p", key) == {"v": ("x" * 600,)}
