"""Unit tests: the LiveMigration state machine and its exact accounting.

The heavyweight correctness property (crash anywhere + re-run converges
with the exact item union, under interleaved fleet writes) lives in
``tests/properties/test_prop_migration.py``; these tests pin the state
machine's observable contract — phase order, counters, billing lines,
the Simulation/ClientFleet/CLI entry points, and the knobs.
"""

from __future__ import annotations

import random

import pytest

from repro.cli import main
from repro.migration import MIGRATION_ENV, parse_migration_spec
from repro.migration.live import DONE, PHASES
from repro.sharding import ShardRouter, authoritative_snapshot
from repro.sim import Simulation
from repro.workloads import CombinedWorkload


def _events(scale: float = 0.4, seed: str = "live-mig"):
    return list(CombinedWorkload().iter_events(random.Random(seed), scale))


def _interleaved_migration(sim: Simulation, events, start_at: int, **knobs):
    """Start a migration and store ``events[start_at:]`` one per step."""
    migration = sim.start_migration(**knobs)
    index = start_at
    while True:
        if index < len(events):
            sim.store.store(events[index])
            index += 1
        if not migration.step():
            break
    while index < len(events):
        sim.store.store(events[index])
        index += 1
    sim.settle()
    return migration.report


def test_online_migration_report_counters():
    events = _events()
    sim = Simulation(architecture="s3+simpledb", seed=11, shards=2)
    sim.store_events(events[: len(events) // 2], collect=False)
    report = _interleaved_migration(
        sim, events, len(events) // 2, shards=4, placement="mixed"
    )
    assert report.phases_completed == list(PHASES[1:-1])
    assert report.items_scanned == report.items_moved + report.items_kept
    assert report.items_moved > 0
    assert report.cutover_epochs == 4
    # One epoch per shard flip, plus the final collapse to the target.
    assert sim.store.routing.epoch == 5
    assert report.double_writes > 0
    assert report.wal_records > 0
    assert report.replayed_records == report.wal_records
    assert report.verification_reads > 0
    assert report.cross_backend_moves > 0  # mixed placement flips some shards
    assert sum(report.writes_by_backend.values()) >= report.items_moved
    assert set(report.writes_by_backend) == {"sdb", "ddb"}
    # The layout settled: the store and its engines route to the target.
    assert sim.store.router.shards == 4
    measurement = sim.query_engine().q2_outputs_of("blast")
    assert {domain for domain, _, _ in measurement.per_shard} == set(
        sim.store.router.domains
    )


def test_online_migration_loses_and_duplicates_nothing():
    """The acceptance bar, in miniature: migrating under live writes
    produces exactly the item set a native target-layout deployment
    stores for the same events."""
    events = _events()
    sim = Simulation(architecture="s3+simpledb", seed=12, shards=1)
    sim.store_events(events[: len(events) // 2], collect=False)
    _interleaved_migration(sim, events, len(events) // 2, shards=3)
    control = Simulation(architecture="s3+simpledb", seed=12, shards=3)
    control.store_events(events, collect=False)
    migrated = authoritative_snapshot(sim.account, sim.store.router)
    oracle = authoritative_snapshot(control.account, control.store.router)
    assert migrated == oracle


def test_migration_billing_lines_are_itemised():
    events = _events(0.3)
    sim = Simulation(architecture="s3+simpledb", seed=13, shards=1)
    sim.store_events(events[: len(events) // 2], collect=False)
    report = _interleaved_migration(sim, events, len(events) // 2, shards=2)
    lines = dict(report.cost_lines(sim.account.prices))
    assert set(lines) == {
        "migration.copy",
        "migration.double_write",
        "migration.catch_up",
        "migration.verification",
        "migration.drop",
    }
    assert lines["migration.copy"] > 0
    assert lines["migration.double_write"] > 0
    assert report.overhead_cost(sim.account.prices) == pytest.approx(
        sum(lines.values())
    )
    overhead = report.overhead_usage()
    assert overhead.request_count() > 0
    assert (
        overhead.request_count()
        == report.copy_usage.request_count()
        + report.double_write_usage.request_count()
        + report.catch_up_usage.request_count()
        + report.verification_usage.request_count()
        + report.drop_usage.request_count()
    )


def test_backend_flip_backfills_target_indexes():
    events = _events(0.3)
    # Source pinned to the paper's SimpleDB placement so the flip is a
    # real cross-backend move under every REPRO_BACKEND_PLACEMENT env.
    sim = Simulation(
        architecture="s3+simpledb", seed=14, shards=2, placement="sdb",
        ddb_indexes="name,input",
    )
    sim.store_events(events, collect=False)
    report = sim.migrate(placement="ddb", online=True)
    assert report.cross_backend_moves == report.items_moved > 0
    assert report.index_write_units > 0  # GSI backfill is migration overhead
    assert sorted(report.domains_deleted) == ["pass-prov-00", "pass-prov-01"]
    q2 = sim.query_engine().q2_outputs_of("blast")
    assert all(kind == "ddb" for kind, _, _ in q2.per_backend)


def test_offline_migrate_swaps_layout_atomically():
    events = _events(0.3)
    sim = Simulation(architecture="s3+simpledb", seed=15, shards=1)
    sim.store_events(events, collect=False)
    before = sim.query_engine().q2_outputs_of("blast")
    report = sim.migrate(shards=4, online=False)
    assert not hasattr(report, "double_writes")  # the plain offline report
    assert sim.store.routing.epoch == 1
    assert sim.store.router.shards == 4
    after = sim.query_engine().q2_outputs_of("blast")
    assert set(after.refs) == set(before.refs)


def test_replay_does_not_resurrect_deleted_orphans():
    """Regression: an item captured to the migration WAL during the
    copy phase and then deleted by orphan recovery (the client crashed
    before its data PUT) must NOT be re-created in the target by the
    catch-up replay — the stale record is skipped, not transported."""
    from repro.aws.faults import FaultPlan
    from repro.errors import ClientCrash
    from repro.migration.live import COPY

    sim = Simulation(architecture="s3+simpledb", seed=41, shards=1)
    sim.store_events(_events(0.1), collect=False)
    migration = sim.start_migration(shards=2)
    assert migration.phase == COPY

    # A second client on the SAME cloud and routing handle crashes
    # between the provenance put (WAL-captured: every item moves off
    # the N=1 layout) and the data put — an orphan.
    from repro.core.s3_simpledb import S3SimpleDB
    from repro.passlib.capture import PassSystem

    crashing = S3SimpleDB(
        sim.account,
        faults=FaultPlan().crash_at("a2.store.before_data_put"),
        router=sim.store.routing,
    )
    pas = PassSystem(workload="orphan")
    with pas.process("doomed", argv="--orphan") as proc:
        proc.write("orphan/only.dat", b"never reaches S3")
        proc.close("orphan/only.dat")
    victim = pas.drain_flushes()[0]
    with pytest.raises(ClientCrash):
        crashing.store(victim)
    assert migration.report.wal_records > 0

    removed = sim.store.recover_orphans()
    assert victim.subject.item_name in removed

    migration.run()
    sim.settle()
    assert migration.report.skipped_replays > 0
    migrated = authoritative_snapshot(sim.account, sim.store.router)
    assert victim.subject.item_name not in migrated


def test_failed_start_leaves_the_handle_clean():
    """Regression: if target provisioning fails, the half-started
    migration must not stay registered on the handle (client writes
    would route toward a never-provisioned target)."""
    from repro.migration.live import LiveMigration

    sim = Simulation(architecture="s3+simpledb", seed=42, shards=1)
    migration = LiveMigration(
        sim.account, sim.store.routing, ShardRouter(2)
    )
    original = migration.target.provision
    migration.target.provision = lambda cloud: (_ for _ in ()).throw(
        RuntimeError("provisioning exploded")
    )
    with pytest.raises(RuntimeError, match="exploded"):
        migration.start()
    assert sim.store.routing.migration is None
    # A clean retry succeeds once provisioning works again.
    migration.target.provision = original
    migration.start()
    migration.run()
    assert sim.store.router.shards == 2


def test_shards_only_migration_preserves_placement():
    """Regression: a shards-only migrate() must tile the deployment's
    current placement pattern across the new count — never reset to the
    REPRO_BACKEND_PLACEMENT environment default (which would turn a
    grow into a silent full backend flip)."""
    sim = Simulation(architecture="s3+simpledb", seed=19, shards=2, placement="ddb")
    sim.store_events(_events(0.1), collect=False)
    report = sim.migrate(shards=4, online=True)
    assert sim.store.router.placement == ("ddb", "ddb", "ddb", "ddb")
    assert report.cross_backend_moves == 0
    alternating = ShardRouter(2, placement="mixed")
    assert alternating.resized(4).placement == ("sdb", "ddb", "sdb", "ddb")
    assert alternating.resized(1).placement == ("sdb",)
    assert alternating.resized(3, placement="ddb").placement == ("ddb",) * 3
    # vnodes carry over too (they shape the ring, i.e. item ownership).
    assert ShardRouter(2, vnodes=16).resized(4).vnodes == 16


def test_migrate_rejects_s3_architecture_and_conflicting_knobs():
    sim = Simulation(architecture="s3", seed=16)
    with pytest.raises(ValueError):
        sim.migrate(shards=2)
    sim2 = Simulation(architecture="s3+simpledb", seed=16)
    with pytest.raises(ValueError):
        sim2.migrate(shards=2, router=ShardRouter(2))


def test_crashed_migration_rerun_converges():
    events = _events(0.3)
    sim = Simulation(architecture="s3+simpledb", seed=17, shards=2)
    sim.store_events(events[: len(events) // 2], collect=False)
    migration = sim.start_migration(shards=4)
    for _ in range(3):  # crash mid-copy
        migration.step()
    sim.store.routing.abort_migration()
    # Writes keep landing while no migration runs (source layout).
    for event in events[len(events) // 2 :]:
        sim.store.store(event)
    report = sim.migrate(shards=4, online=True)
    assert report.items_scanned > 0
    sim.settle()
    control = Simulation(architecture="s3+simpledb", seed=17, shards=4)
    control.store_events(events, collect=False)
    assert authoritative_snapshot(
        sim.account, sim.store.router
    ) == authoritative_snapshot(control.account, control.store.router)


def test_parse_migration_spec():
    assert parse_migration_spec("shards=8,placement=mixed") == {
        "shards": 8,
        "placement": "mixed",
    }
    assert parse_migration_spec("shards=2,online=false") == {
        "shards": 2,
        "online": False,
    }
    for bad in ("", "shards", "shards=", "bogus=1", "online=maybe"):
        with pytest.raises(ValueError):
            parse_migration_spec(bad)


def test_demo_cli_migrate_flag(capsys):
    code = main(
        ["demo", "--shards", "2", "--migrate", "shards=4,placement=mixed"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "online migration -> shards=4" in out
    assert "double-writes" in out
    assert "Q2 after migration" in out


def test_demo_cli_migrate_env(capsys, monkeypatch):
    monkeypatch.setenv(MIGRATION_ENV, "shards=3,online=false")
    code = main(["demo"])
    out = capsys.readouterr().out
    assert code == 0
    assert "offline migration -> shards=3" in out


def test_demo_cli_migrate_bad_spec(capsys):
    code = main(["demo", "--migrate", "bogus"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_fleet_live_migration_scenario():
    from repro.fleet import ClientFleet

    fleet = ClientFleet(
        n_clients=3, architecture="s3+simpledb", seed=18, shards=2
    )
    events = _events(0.4, seed="fleet-mig")
    traces = [events[i : i + 8] for i in range(0, len(events), 8)]
    fleet.scatter(traces[: len(traces) // 2])
    fleet.run_round_robin()
    fleet.scatter(traces[len(traces) // 2 :])
    report = fleet.run_live_migration(shards=4, placement="mixed", batch=2)
    assert report.phases_completed[-1] == "drop"
    assert fleet.router.shards == 4
    assert all(client.backlog == 0 for client in fleet.clients.values())
    # Control: a fleet that stored the same traces natively on the target.
    control = ClientFleet(
        n_clients=3,
        architecture="s3+simpledb",
        seed=18,
        shards=4,
        placement="mixed",
    )
    control.scatter(traces)
    control.run_round_robin()
    assert authoritative_snapshot(
        fleet.account, fleet.router
    ) == authoritative_snapshot(control.account, control.router)


def test_migration_report_phase_names():
    assert PHASES == (
        "pending",
        "copy",
        "double_write",
        "catch_up",
        "cutover",
        "drop",
        "done",
    )
    assert DONE == "done"
