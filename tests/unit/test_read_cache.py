"""Unit tests for the ElastiCache-style read-cache authority.

Covers the authority in isolation — LRU capacity and eviction order,
hit/miss/fill metering on the ``elasticache`` key, fenced fills, the
staleness age-out, item-vs-memo invalidation semantics — plus the knob
plumbing (spec grammar, environment default, account/sim/fleet/CLI
wiring) and the price-book lines the meter keys must match.
"""

from __future__ import annotations

import pytest

from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.billing import ELASTICACHE, Meter, PriceBook
from repro.aws.elasticache import (
    CACHE_STALENESS_BOUND,
    DEFAULT_CAPACITY,
    READ_CACHE_ENV,
    ReadCacheAuthority,
    attrs_nbytes,
    build_read_cache,
    resolve_read_cache,
)
from repro.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def meter(clock):
    return Meter(clock)


def authority(clock, meter, capacity=DEFAULT_CAPACITY, staleness=CACHE_STALENESS_BOUND):
    return ReadCacheAuthority(
        clock, meter, capacity=capacity, staleness_bound=staleness
    )


def attrs_of(size: int, key: str = "k"):
    """An attribute map whose node-memory estimate is exactly ``size``."""
    assert size > len(key)
    return {key: ("x" * (size - len(key)),)}


class TestSpecResolution:
    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(READ_CACHE_ENV, "on")
        assert resolve_read_cache("off") == ""
        assert resolve_read_cache("4096") == "4096"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(READ_CACHE_ENV, "1")
        assert resolve_read_cache() == "1"
        monkeypatch.delenv(READ_CACHE_ENV)
        assert resolve_read_cache() == ""

    @pytest.mark.parametrize("spec", ["", "0", "off", "none", "false", False, None])
    def test_disabled_spellings(self, spec, monkeypatch):
        monkeypatch.delenv(READ_CACHE_ENV, raising=False)
        assert resolve_read_cache(spec) == ""

    def test_boolean_true_means_defaults(self, clock, meter):
        cache = build_read_cache(True, clock, meter)
        assert cache is not None
        assert cache.capacity == DEFAULT_CAPACITY
        assert cache.staleness_bound == CACHE_STALENESS_BOUND

    def test_off_builds_nothing(self, clock, meter, monkeypatch):
        monkeypatch.delenv(READ_CACHE_ENV, raising=False)
        assert build_read_cache(None, clock, meter) is None
        assert build_read_cache("off", clock, meter) is None

    def test_plain_digits_set_capacity(self, clock, meter):
        cache = build_read_cache("4096", clock, meter)
        assert cache.capacity == 4096
        assert cache.staleness_bound == CACHE_STALENESS_BOUND

    def test_option_pairs(self, clock, meter):
        cache = build_read_cache("capacity=512,staleness=2.5", clock, meter)
        assert cache.capacity == 512
        assert cache.staleness_bound == 2.5

    @pytest.mark.parametrize("spec", ["capacity", "weird=1", "capacity=512,bogus=2"])
    def test_malformed_specs_raise(self, spec, clock, meter):
        with pytest.raises(ValueError):
            build_read_cache(spec, clock, meter)

    def test_rejects_degenerate_parameters(self, clock, meter):
        with pytest.raises(ValueError):
            ReadCacheAuthority(clock, meter, capacity=0)
        with pytest.raises(ValueError):
            ReadCacheAuthority(clock, meter, staleness_bound=-1.0)

    def test_attrs_nbytes_counts_names_and_values(self):
        assert attrs_nbytes({"type": ("file",), "input": ("a", "bc")}) == (
            len("type") + len("file") + len("input") + 3
        )


class TestItemEntries:
    def test_miss_then_fill_then_hit(self, clock, meter):
        cache = authority(clock, meter)
        hit, value = cache.get_item("obj_v0001")
        assert (hit, value) == (False, None)
        fence = cache.fence()
        attrs = {"type": ("file",)}
        assert cache.put_item("obj_v0001", attrs, fence)
        hit, value = cache.get_item("obj_v0001")
        assert hit and value == attrs
        assert cache.hits == 1 and cache.misses == 1

    def test_own_invalidation_drops_the_entry(self, clock, meter):
        cache = authority(clock, meter)
        cache.put_item("a_v0001", {"k": ("v",)}, cache.fence())
        cache.invalidate("a_v0001")
        assert cache.get_item("a_v0001") == (False, None)
        assert cache.invalidations == 1

    def test_writes_to_other_items_do_not_disturb_it(self, clock, meter):
        cache = authority(clock, meter)
        cache.put_item("a_v0001", {"k": ("v",)}, cache.fence())
        cache.invalidate("b_v0001")
        hit, _ = cache.get_item("a_v0001")
        assert hit

    def test_age_out_past_the_staleness_bound(self, clock, meter):
        cache = authority(clock, meter, staleness=2.0)
        cache.put_item("a_v0001", {"k": ("v",)}, cache.fence())
        clock.advance(1.9)
        hit, _ = cache.get_item("a_v0001")
        assert hit
        assert cache.max_served_age == pytest.approx(1.9)
        clock.advance(0.2)
        assert cache.get_item("a_v0001") == (False, None)
        assert cache.entry_count() == 0  # dropped, not just skipped
        assert cache.max_served_age <= 2.0

    def test_fenced_fill_refused_after_any_invalidation(self, clock, meter):
        cache = authority(clock, meter)
        fence = cache.fence()
        cache.invalidate("other_v0001")
        assert not cache.put_item("a_v0001", {"k": ("v",)}, fence)
        assert cache.refused_fills == 1
        assert cache.get_item("a_v0001") == (False, None)

    def test_invalidate_many_bumps_generation_once(self, clock, meter):
        cache = authority(clock, meter)
        before = cache.generation
        cache.invalidate_many(["a_v0001", "b_v0001", "c_v0001"])
        assert cache.generation == before + 1
        assert cache.invalidations == 3
        cache.invalidate_many([])
        assert cache.generation == before + 1  # empty batch is free


class TestMemoEntries:
    def test_memo_round_trip(self, clock, meter):
        cache = authority(clock, meter)
        hit, value, fence = cache.memo_get(("q2", "blast"))
        assert not hit
        assert cache.memo_put(("q2", "blast"), fence, {"r1", "r2"}, 16)
        hit, value, _ = cache.memo_get(("q2", "blast"))
        assert hit and value == {"r1", "r2"}

    def test_any_invalidation_supersedes_memos(self, clock, meter):
        cache = authority(clock, meter)
        _, _, fence = cache.memo_get(("q2", "blast"))
        cache.memo_put(("q2", "blast"), fence, {"r"}, 8)
        cache.invalidate("unrelated_v0001")
        hit, _, _ = cache.memo_get(("q2", "blast"))
        assert not hit

    def test_memo_and_item_keys_never_collide(self, clock, meter):
        cache = authority(clock, meter)
        cache.put_item("x", {"k": ("v",)}, cache.fence())
        hit, _, _ = cache.memo_get(("x",))
        assert not hit


class TestLRUCapacity:
    def test_eviction_follows_recency_of_use(self, clock, meter):
        cache = authority(clock, meter, capacity=100)
        for name in ("a", "b"):
            cache.put_item(name, attrs_of(50), cache.fence())
        cache.get_item("a")  # refresh a: b becomes least recent
        cache.put_item("c", attrs_of(50), cache.fence())
        assert cache.get_item("a")[0]
        assert not cache.get_item("b")[0]
        assert cache.get_item("c")[0]
        assert cache.evictions == 1

    def test_stored_bytes_never_exceed_capacity(self, clock, meter):
        cache = authority(clock, meter, capacity=120)
        for index in range(10):
            cache.put_item(f"n{index}", attrs_of(40), cache.fence())
            assert cache.stored_nbytes() <= 120
        assert meter.stored_bytes(ELASTICACHE) == cache.stored_nbytes()

    def test_oversized_value_is_refused_not_thrashed(self, clock, meter):
        cache = authority(clock, meter, capacity=64)
        cache.put_item("small", attrs_of(32), cache.fence())
        assert not cache.put_item("huge", attrs_of(65), cache.fence())
        assert cache.refused_fills == 1
        assert cache.get_item("small")[0]  # nothing was evicted for it

    def test_refill_replaces_rather_than_doubles(self, clock, meter):
        cache = authority(clock, meter, capacity=100)
        cache.put_item("a", attrs_of(40), cache.fence())
        cache.put_item("a", attrs_of(60), cache.fence())
        assert cache.entry_count() == 1
        assert cache.stored_nbytes() == 60


class TestMetering:
    def test_consults_and_fills_are_metered_requests(self, clock, meter):
        cache = authority(clock, meter)
        cache.get_item("a")                                    # miss
        cache.put_item("a", attrs_of(30), cache.fence())       # fill
        cache.get_item("a")                                    # hit
        usage = meter.snapshot()
        assert usage.request_count(ELASTICACHE, "Get") == 2
        assert usage.request_count(ELASTICACHE, "Put") == 1
        assert usage.transfer_in(ELASTICACHE) == 30
        assert usage.transfer_out(ELASTICACHE) == 30

    def test_fence_and_invalidation_are_not_metered(self, clock, meter):
        cache = authority(clock, meter)
        before = meter.snapshot()
        cache.fence()
        cache.invalidate("a")
        cache.invalidate_many(["b", "c"])
        assert meter.snapshot() - before == billing.Usage.empty()

    def test_eviction_returns_node_memory_to_the_meter(self, clock, meter):
        cache = authority(clock, meter, capacity=100)
        cache.put_item("a", attrs_of(60), cache.fence())
        cache.put_item("b", attrs_of(60), cache.fence())  # evicts a
        assert meter.stored_bytes(ELASTICACHE) == 60
        cache.invalidate("b")
        assert meter.stored_bytes(ELASTICACHE) == 0

    def test_price_book_prices_cache_usage(self, clock, meter):
        cache = authority(clock, meter)
        cache.get_item("a")
        cache.put_item("a", attrs_of(30), cache.fence())
        clock.advance(3600.0)  # accrue node-memory byte-hours
        lines = dict(PriceBook().cost(meter.snapshot()).lines)
        assert lines["elasticache.requests"] > 0
        assert lines["elasticache.transfer.in"] > 0
        assert lines["elasticache.storage"] > 0


class TestWiring:
    def test_account_default_is_off_and_byte_identical(self, monkeypatch):
        monkeypatch.delenv(READ_CACHE_ENV, raising=False)
        account = AWSAccount(seed=1, consistency=ConsistencyConfig.strong())
        assert account.read_cache is None

    def test_account_env_default(self, monkeypatch):
        monkeypatch.setenv(READ_CACHE_ENV, "capacity=2048,staleness=1.5")
        account = AWSAccount(seed=1, consistency=ConsistencyConfig.strong())
        assert account.read_cache.capacity == 2048
        assert account.read_cache.staleness_bound == 1.5

    def test_simulation_and_fleet_pass_the_knob_through(self, monkeypatch):
        monkeypatch.delenv(READ_CACHE_ENV, raising=False)
        from repro.fleet import ClientFleet
        from repro.sim import Simulation

        sim = Simulation(architecture="s3+simpledb", seed=1, read_cache="on")
        assert sim.account.read_cache is not None
        assert sim.query_engine().cache is sim.account.read_cache
        assert Simulation(architecture="s3+simpledb", seed=1).account.read_cache is None
        fleet = ClientFleet(architecture="s3+simpledb", n_clients=1, read_cache="on")
        assert fleet.account.read_cache is not None

    def test_cli_flag_grammar(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["demo"]).read_cache is None
        assert parser.parse_args(["demo", "--read-cache"]).read_cache == "on"
        assert (
            parser.parse_args(["demo", "--read-cache", "capacity=512"]).read_cache
            == "capacity=512"
        )
