"""Unit + fuzz tests for the DynamoDB-style global secondary indexes.

What must hold for GSI-served queries to be sound and honestly priced:

* maintenance — every base put/delete updates the index's entry space,
  asynchronously (the index converges on its own replica schedule) and
  sparsely (items lacking the key attribute have no entries);
* amplification — changed entries cost index write units; unchanged
  replays cost nothing; backfilling an index on a populated table is
  metered the same way;
* queries — batch key-value Query pages by the shared byte budget,
  returns projected entries only, always at eventual-read pricing;
* fallbacks — the backend adapter scans when no index fits a predicate
  (or the index lags past the staleness bound) and results never differ;
* convergence fuzz (mirroring ``test_sdb_query_fuzz``'s style) —
  interleaved puts/deletes/index-queries under eventual consistency
  never surface data that was never written, and quiescing converges
  the index to exactly what the base table implies.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import errors
from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.backend import DynamoBackend, parse_index_specs
from repro.aws.dynamo import IndexSpec
from repro.units import DDB_PAGE_BYTES


@pytest.fixture
def account():
    return AWSAccount(seed=7, consistency=ConsistencyConfig.strong())


@pytest.fixture
def ddb(account):
    account.dynamodb.create_table("t")
    account.dynamodb.create_index("t", IndexSpec("gsi-k", "k", include=("t",)))
    return account.dynamodb


class TestIndexSpecs:
    def test_parse_defaults_and_includes(self):
        specs = parse_index_specs("name,input")
        assert [s.name for s in specs] == ["gsi-name", "gsi-input"]
        assert all(s.include == ("type",) for s in specs)
        explicit = parse_index_specs("input+type+name")
        assert explicit[0].projected_attributes == {"input", "type", "name"}

    def test_parse_auto_off_and_passthrough(self):
        assert parse_index_specs("") == ()
        assert parse_index_specs("none") == ()
        auto = parse_index_specs("auto")
        assert {s.key_attribute for s in auto} == {"name", "input"}
        ready = (IndexSpec("i", "k"),)
        assert parse_index_specs(ready) == ready

    def test_parse_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DDB_INDEXES", "name")
        assert [s.key_attribute for s in parse_index_specs()] == ["name"]
        monkeypatch.delenv("REPRO_DDB_INDEXES")
        assert parse_index_specs() == ()

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_index_specs("name,+type")


class TestMaintenance:
    def test_entries_track_puts_one_per_value(self, ddb):
        ddb.update_item("t", "item", [("k", "a"), ("k", "b"), ("t", "file")])
        entries = ddb.authoritative_index_entries("t", "gsi-k")
        assert set(entries) == {("a", "item"), ("b", "item")}
        assert entries[("a", "item")] == {"k": ("a", "b"), "t": ("file",)}

    def test_sparse_items_without_key_attribute(self, ddb):
        ddb.update_item("t", "plain", [("t", "file")])
        assert ddb.authoritative_index_entries("t", "gsi-k") == {}

    def test_projection_excludes_unlisted_attributes(self, ddb):
        ddb.update_item("t", "item", [("k", "a"), ("x", "secret")])
        entries = ddb.authoritative_index_entries("t", "gsi-k")
        assert entries[("a", "item")] == {"k": ("a",)}

    def test_replayed_put_amplifies_nothing(self, account, ddb):
        adds = [("k", "a"), ("t", "file")]
        ddb.update_item("t", "item", adds)
        before = account.meter.snapshot()
        ddb.update_item("t", "item", adds)
        spent = account.meter.snapshot() - before
        assert spent.write_units(billing.DDB_GSI) == 0.0

    def test_delete_removes_entries_and_charges(self, account, ddb):
        ddb.update_item("t", "item", [("k", "a"), ("k", "b")])
        stored = account.meter.stored_bytes(billing.DDB_GSI)
        assert stored > 0
        before = account.meter.snapshot()
        ddb.delete_item("t", "item")
        spent = account.meter.snapshot() - before
        assert spent.write_units(billing.DDB_GSI) >= 2.0  # one per entry
        assert ddb.authoritative_index_entries("t", "gsi-k") == {}
        assert account.meter.stored_bytes(billing.DDB_GSI) == 0

    def test_backfill_on_populated_table_is_metered(self, account):
        ddb = account.dynamodb
        ddb.create_table("late")
        for index in range(5):
            ddb.update_item("late", f"i{index}", [("k", "a"), ("t", "file")])
        before = account.meter.snapshot()
        backfill = ddb.create_index("late", IndexSpec("gsi-k", "k"))
        spent = account.meter.snapshot() - before
        assert backfill == spent.write_units(billing.DDB_GSI) == 5.0
        assert len(ddb.authoritative_index_entries("late", "gsi-k")) == 5
        # Re-creating is idempotent: no new charge, entries untouched.
        assert ddb.create_index("late", IndexSpec("gsi-k", "k")) == 0.0

    def test_delete_index_and_table_free_storage(self, account, ddb):
        ddb.update_item("t", "item", [("k", "a")])
        ddb.create_index("t", IndexSpec("gsi-2", "k"))
        assert account.meter.stored_bytes(billing.DDB_GSI) > 0
        ddb.delete_index("t", "gsi-2")
        remaining = account.meter.stored_bytes(billing.DDB_GSI)
        assert remaining > 0  # gsi-k still holds its entry
        ddb.delete_table("t")
        assert account.meter.stored_bytes(billing.DDB_GSI) == 0

    def test_index_write_units_charge_admission_window(self, account):
        """An indexed table throttles sooner: base + index units share
        the provisioned write window (GSI back-pressure)."""
        ddb = account.dynamodb
        ddb.create_table("tiny", read_capacity=5, write_capacity=3)
        ddb.create_index("tiny", IndexSpec("gsi-k", "k"))
        ddb.update_item("tiny", "a", [("k", "v")])  # 1 base + 1 index unit
        with pytest.raises(errors.ProvisionedThroughputExceeded):
            ddb.update_item("tiny", "b", [("k", "v")])  # needs 2 more


class TestIndexQuery:
    def test_batch_values_dedup_is_callers_job(self, ddb):
        ddb.update_item("t", "multi", [("k", "a"), ("k", "b")])
        page = ddb.query_index("t", "gsi-k", ["a", "b"])
        # One entry per (value, item): the service does not deduplicate.
        assert [name for name, _ in page.entries] == ["multi", "multi"]

    def test_misses_still_cost_the_minimum_unit(self, account, ddb):
        before = account.meter.snapshot()
        page = ddb.query_index("t", "gsi-k", ["absent"])
        spent = account.meter.snapshot() - before
        assert page.entries == ()
        assert spent.read_units(billing.DDB_GSI) == 0.5
        assert spent.request_count(billing.DDB_GSI, "Query") == 1

    def test_pagination_walks_every_entry_once(self, ddb):
        wide = "x" * 600
        for index in range(40):
            ddb.update_item("t", f"i{index:02d}", [("k", "a"), ("t", wide)])
        seen, start, pages = [], None, 0
        while True:
            page = ddb.query_index("t", "gsi-k", ["a"], exclusive_start_key=start)
            seen.extend(name for name, _ in page.entries)
            pages += 1
            start = page.last_evaluated_key
            if start is None:
                break
        assert seen == [f"i{index:02d}" for index in range(40)]
        # ~700 B entries against the shared byte budget: several pages.
        assert pages >= (40 * 700) // DDB_PAGE_BYTES

    def test_unknown_index_and_empty_values_rejected(self, ddb):
        with pytest.raises(errors.NoSuchIndex):
            ddb.query_index("t", "nope", ["a"])
        with pytest.raises(ValueError):
            ddb.query_index("t", "gsi-k", [])

    def test_billing_lines_itemised(self, account, ddb):
        ddb.update_item("t", "item", [("k", "a")])
        ddb.query_index("t", "gsi-k", ["a"])
        cost = account.prices.cost(account.meter.snapshot())
        labels = {label for label, _ in cost.lines}
        assert {
            "dynamodb.gsi.read_units",
            "dynamodb.gsi.write_units",
            "dynamodb.gsi.transfer.out",
            "dynamodb.gsi.storage",
        } <= labels


class TestAdapterPlanning:
    def make_adapter(self, account, **kwargs):
        adapter = DynamoBackend(
            account.dynamodb, index_specs=(IndexSpec("gsi-k", "k", ("t",)),),
            **kwargs,
        )
        adapter.provision("p")
        return adapter

    def test_equality_predicate_served_by_index(self, account):
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "hit", [("k", "a"), ("t", "file")])
        adapter.put_provenance_item("p", "miss", [("k", "z"), ("t", "file")])
        before = account.meter.snapshot()
        rows = list(adapter.query_pages("p", "['k' = 'a']", "", False, ["t"]))
        spent = account.meter.snapshot() - before
        assert rows == [("hit", {"t": ("file",)})]
        assert adapter.gsi_queries == 1
        assert spent.request_count(billing.DDB, "Scan") == 0
        assert spent.request_count(billing.DDB_GSI, "Query") == 1

    def test_multivalued_match_deduplicated_by_adapter(self, account):
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "multi", [("k", "a"), ("k", "b")])
        rows = list(
            adapter.query_pages("p", "['k' = 'a' or 'k' = 'b']", "", False, ["t"])
        )
        assert [name for name, _ in rows] == ["multi"]
        assert adapter.gsi_queries == 1

    def test_full_projection_request_falls_back_to_scan(self, account):
        """wanted=None asks for every attribute — an INCLUDE projection
        cannot promise that, so the adapter scans."""
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "item", [("k", "a"), ("x", "1")])
        rows = list(adapter.query_pages("p", "['k' = 'a']", "", False, None))
        assert rows == [("item", {"k": ("a",), "x": ("1",)})]
        assert adapter.gsi_queries == 0 and adapter.scan_fallbacks == 1

    def test_non_equality_predicate_falls_back_to_scan(self, account):
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "item", [("k", "abc")])
        before = account.meter.snapshot()
        rows = list(
            adapter.query_pages("p", "['k' starts-with 'ab']", "", False, ["k"])
        )
        spent = account.meter.snapshot() - before
        assert [name for name, _ in rows] == ["item"]
        assert adapter.scan_fallbacks == 1
        assert spent.request_count(billing.DDB, "Scan") >= 1

    def test_projection_gap_falls_back_to_scan(self, account):
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "item", [("k", "a"), ("x", "1")])
        rows = list(adapter.query_pages("p", "['k' = 'a']", "", False, ["x"]))
        assert rows == [("item", {"x": ("1",)})]
        assert adapter.gsi_queries == 0 and adapter.scan_fallbacks == 1

    def test_intersection_predicate_uses_index_and_refilters(self, account):
        adapter = self.make_adapter(account)
        adapter.put_provenance_item("p", "good", [("k", "a"), ("t", "file")])
        adapter.put_provenance_item("p", "bad", [("k", "a"), ("t", "proc")])
        rows = list(
            adapter.query_pages(
                "p", "['k' = 'a'] intersection ['t' = 'file']", "", False, ["t"]
            )
        )
        assert [name for name, _ in rows] == ["good"]
        assert adapter.gsi_queries == 1

    def test_results_identical_index_vs_scan(self, account):
        """Same items on an indexed and an unindexed table: the GSI
        access path and the scan path answer identically (indexes are a
        per-table property, so the split needs two tables)."""
        indexed = self.make_adapter(account)
        plain = DynamoBackend(account.dynamodb, index_specs="")
        plain.provision("q")
        for i in range(12):
            item = (f"i{i}", [("k", "ab"[i % 2]), ("t", "file")])
            indexed.put_provenance_item("p", *item)
            plain.put_provenance_item("q", *item)
        expression = "['k' = 'a']"
        assert list(indexed.query_pages("p", expression, "", False, ["t"])) == list(
            plain.query_pages("q", expression, "", False, ["t"])
        )
        assert indexed.gsi_queries == 1
        assert plain.gsi_queries == 0 and plain.scan_fallbacks == 0


class TestStalenessBound:
    def test_lagging_index_forces_scan_then_recovers(self):
        account = AWSAccount(
            seed=5,
            consistency=ConsistencyConfig.eventual(
                window=8.0, immediate_fraction=0.0
            ),
        )
        # Strongly consistent base reads: the point is that the *index*
        # is behind (index reads have no strong option), so the adapter
        # must prefer the scan while the lag exceeds the bound.
        adapter = DynamoBackend(
            account.dynamodb,
            consistent_reads=True,
            index_specs=(IndexSpec("gsi-k", "k", ("t",)),),
            index_staleness_bound=0.5,
        )
        adapter.provision("p")
        adapter.put_provenance_item("p", "item", [("k", "a"), ("t", "file")])
        assert account.dynamodb.index_pending_writes("p", "gsi-k") > 0
        account.clock.advance(1.0)  # lag now exceeds the 0.5 s bound
        assert account.dynamodb.index_lag_seconds("p", "gsi-k") > 0.5
        rows = list(adapter.query_pages("p", "['k' = 'a']", "", False, ["t"]))
        assert [name for name, _ in rows] == ["item"]  # scan still answers
        assert adapter.stale_index_fallbacks == 1 and adapter.gsi_queries == 0
        account.quiesce()
        assert account.dynamodb.index_lag_seconds("p", "gsi-k") == 0.0
        list(adapter.query_pages("p", "['k' = 'a']", "", False, ["t"]))
        assert adapter.gsi_queries == 1

    def test_steady_write_stream_does_not_inflate_lag(self):
        """Lag is the age of the oldest *outstanding* install, not the
        length of the busy period: a steady write stream whose installs
        always overlap must report lag bounded by the delay window, so
        the staleness fallback never latches permanently."""
        account = AWSAccount(
            seed=9,
            consistency=ConsistencyConfig.eventual(
                window=1.0, immediate_fraction=0.0
            ),
        )
        ddb = account.dynamodb
        ddb.create_table("t")
        ddb.create_index("t", IndexSpec("gsi-k", "k"))
        for step in range(30):
            ddb.update_item("t", f"i{step}", [("k", "a")])
            account.clock.advance(0.4)
            assert ddb.index_lag_seconds("t", "gsi-k") <= 1.0 + 1e-9
        account.quiesce()
        assert ddb.index_lag_seconds("t", "gsi-k") == 0.0


# -- convergence fuzzing -----------------------------------------------------

_keys = st.sampled_from([f"item-{i}" for i in range(6)])
_values = st.sampled_from(["a", "b", "c"])


@st.composite
def interleavings(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("put"), _keys, _values, _values),
                st.tuples(st.just("delete"), _keys),
                st.tuples(st.just("query"), _values),
                st.tuples(st.just("advance"), st.floats(0.1, 2.0)),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=interleavings(), seed=st.integers(0, 10_000))
def test_gsi_fuzz_interleaved_ops_never_invent_data(ops, seed):
    """Under eventual index convergence, an index query may be stale —
    but everything it returns was once written, and after quiescence the
    index agrees exactly with the base table."""
    account = AWSAccount(
        seed=seed,
        consistency=ConsistencyConfig.eventual(window=3.0, immediate_fraction=0.3),
    )
    ddb = account.dynamodb
    ddb.create_table("t")
    ddb.create_index("t", IndexSpec("gsi-k", "k", include=("t",)))
    ever_added: dict[str, set[tuple[str, str]]] = {}
    for op in ops:
        if op[0] == "put":
            _, key, k_value, t_value = op
            ddb.update_item("t", key, [("k", k_value), ("t", t_value)])
            ever_added.setdefault(key, set()).update(
                {("k", k_value), ("t", t_value)}
            )
        elif op[0] == "delete":
            ddb.delete_item("t", op[1])
        elif op[0] == "query":
            page = ddb.query_index("t", "gsi-k", [op[1]])
            for item_name, attrs in page.entries:
                assert item_name in ever_added, "index invented an item"
                for attribute, values in attrs.items():
                    for value in values:
                        assert (attribute, value) in ever_added[item_name], (
                            f"index invented {attribute}={value!r} "
                            f"for {item_name}"
                        )
        else:
            account.clock.advance(op[1])

    account.quiesce()
    # Convergence: for every key value, the index answers exactly what
    # the base table's authoritative state implies.
    for value in ("a", "b", "c"):
        page = ddb.query_index("t", "gsi-k", [value])
        got = dict(page.entries)
        expected = {}
        for item_name in ddb.authoritative_item_names("t"):
            state = ddb.authoritative_item("t", item_name)
            if value in state.get("k", ()):
                expected[item_name] = {
                    a: v for a, v in state.items() if a in ("k", "t")
                }
        assert got == expected
    assert ddb.index_converged("t", "gsi-k")
