"""Unit tests for PROV-JSON and lineage-DOT export."""

import json

import pytest

from repro.graph.export import lineage_dot, prov_json_dumps, to_prov_json
from repro.passlib.capture import PassSystem
from repro.passlib.records import ObjectRef


@pytest.fixture
def bundles():
    pas = PassSystem(workload="export")
    pas.stage_input("in/data.csv", b"rows")
    with pas.process("transform", argv="--normalise") as proc:
        proc.read("in/data.csv")
        proc.write("out/clean.csv", b"rows2")
        proc.close("out/clean.csv")
    with pas.process("rewrite") as proc:
        proc.write("out/clean.csv", b"rows3")
        proc.close("out/clean.csv")
    return [b for e in pas.drain_flushes() for b in e.all_bundles()]


class TestProvJson:
    def test_entities_and_activities_partitioned(self, bundles):
        document = to_prov_json(bundles)
        assert any("in/data.csv" in key for key in document["entity"])
        assert any("proc/transform" in key for key in document["activity"])
        assert not any("proc/" in key for key in document["entity"])

    def test_used_and_generated_relations(self, bundles):
        document = to_prov_json(bundles)
        used_pairs = {
            (rel["prov:activity"], rel["prov:entity"])
            for rel in document["used"].values()
        }
        assert any(
            "proc/transform" in activity and "in/data.csv" in entity
            for activity, entity in used_pairs
        )
        generated = {
            (rel["prov:entity"], rel["prov:activity"])
            for rel in document["wasGeneratedBy"].values()
        }
        assert any(
            "out/clean.csv:v0001" in entity for entity, _ in generated
        )

    def test_version_chain_is_revision(self, bundles):
        document = to_prov_json(bundles)
        revisions = [
            rel
            for rel in document["wasDerivedFrom"].values()
            if rel.get("prov:type") == "prov:Revision"
        ]
        assert len(revisions) == 1
        assert "out/clean.csv:v0002" in revisions[0]["prov:generatedEntity"]
        assert "out/clean.csv:v0001" in revisions[0]["prov:usedEntity"]

    def test_attributes_carried(self, bundles):
        document = to_prov_json(bundles)
        transform = next(
            value
            for key, value in document["activity"].items()
            if "proc/transform" in key
        )
        assert transform["pass:argv"] == "--normalise"

    def test_json_serialisable(self, bundles):
        text = prov_json_dumps(bundles)
        parsed = json.loads(text)
        assert parsed["prefix"]["pass"].startswith("urn:")

    def test_empty_document(self):
        document = to_prov_json([])
        assert document["entity"] == {} and document["activity"] == {}


class TestLineageDot:
    def test_full_graph_shapes(self, bundles):
        dot = lineage_dot(bundles)
        assert dot.startswith("digraph lineage")
        assert "[shape=box];" in dot
        assert "[shape=ellipse];" in dot

    def test_version_edges_dashed(self, bundles):
        dot = lineage_dot(bundles)
        assert "[style=dashed];" in dot

    def test_focus_restricts_to_ancestry(self, bundles):
        focus = ObjectRef("out/clean.csv", 1)
        dot = lineage_dot(bundles, focus=focus)
        assert "out/clean.csv:v0001" in dot
        assert "in/data.csv:v0001" in dot
        assert "out/clean.csv:v0002" not in dot  # descendant, not ancestor

    def test_focus_unknown_object(self, bundles):
        dot = lineage_dot(bundles, focus=ObjectRef("ghost", 1))
        assert "ghost" not in dot  # nothing known about it, nothing drawn
