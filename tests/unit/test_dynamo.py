"""Unit tests for the DynamoDB-style service and its backend adapter.

What must hold for heterogeneous placement to be sound:

* string-set merge semantics (idempotent replays, like SimpleDB);
* item-size-based capacity metering, strong vs eventual read pricing;
* provisioned-throughput throttling and the adapter's clock backoff;
* storage accounting that survives put/delete/delete_table round trips;
* the billing lines that make backend choice an auditable tradeoff.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.backend import DynamoBackend
from repro.units import DDB_RCU_BYTES, DDB_WCU_BYTES


@pytest.fixture
def account():
    return AWSAccount(seed=3, consistency=ConsistencyConfig.strong())


@pytest.fixture
def ddb(account):
    account.dynamodb.create_table("t")
    return account.dynamodb


class TestUpdateItemSemantics:
    def test_values_merge_as_sets(self, ddb):
        ddb.update_item("t", "item", [("input", "a"), ("input", "b")])
        ddb.update_item("t", "item", [("input", "b"), ("type", "file")])
        assert ddb.get_item("t", "item", consistent=True) == {
            "input": ("a", "b"),
            "type": ("file",),
        }

    def test_replay_is_idempotent(self, ddb):
        adds = [("name", "out.dat"), ("type", "file")]
        ddb.update_item("t", "item", adds)
        before = ddb.authoritative_item("t", "item")
        ddb.update_item("t", "item", adds)
        assert ddb.authoritative_item("t", "item") == before

    def test_missing_table_raises(self, ddb):
        with pytest.raises(errors.NoSuchTable):
            ddb.update_item("absent", "item", [("a", "b")])

    def test_item_size_limit_enforced(self, ddb):
        big = "x" * (300 * 1024)
        ddb.update_item("t", "item", [("v1", big)])
        with pytest.raises(errors.ItemSizeLimitExceeded):
            ddb.update_item("t", "item", [("v2", big)])

    def test_delete_item_idempotent(self, ddb):
        ddb.update_item("t", "item", [("a", "b")])
        ddb.delete_item("t", "item")
        ddb.delete_item("t", "item")  # absent: succeeds silently
        assert ddb.authoritative_item("t", "item") is None


class TestCapacityMetering:
    def test_write_units_scale_with_item_size(self, account, ddb):
        ddb.update_item("t", "small", [("a", "b")])
        assert account.meter.snapshot().write_units(billing.DDB) == 1.0
        ddb.update_item("t", "large", [("v", "x" * (3 * DDB_WCU_BYTES))])
        # ~3 KB item rounds up to 4 write units (key + attr bytes).
        assert account.meter.snapshot().write_units(billing.DDB) == 5.0

    def test_strong_read_costs_double_eventual(self, account, ddb):
        ddb.update_item("t", "item", [("v", "x" * (6 * DDB_WCU_BYTES))])
        before = account.meter.snapshot()
        ddb.get_item("t", "item", consistent=False)
        eventual = account.meter.snapshot().read_units(billing.DDB) - before.read_units(
            billing.DDB
        )
        before = account.meter.snapshot()
        ddb.get_item("t", "item", consistent=True)
        strong = account.meter.snapshot().read_units(billing.DDB) - before.read_units(
            billing.DDB
        )
        assert strong == 2 * eventual
        # A ~6 KB item is 2 strong read units (4 KB steps).
        assert strong == 2.0

    def test_scan_charges_for_every_item_scanned(self, account, ddb):
        for index in range(8):
            ddb.update_item("t", f"i{index}", [("v", "x" * DDB_RCU_BYTES)])
        before = account.meter.snapshot()
        items, pages, start = [], 0, None
        while True:
            page = ddb.scan("t", exclusive_start_key=start, consistent=True)
            items.extend(page.items)
            pages += 1
            start = page.last_evaluated_key
            if start is None:
                break
        assert len(items) == 8
        # 8 items x ~4 KB each overflow the 16 KB page byte budget at
        # four items per page, so the walk pays two round trips (the
        # scan-pagination economics the GSI benchmark leans on).
        assert pages == 2
        spent = account.meter.snapshot() - before
        # ~32 KB scanned in total, aggregated per page then rounded.
        assert spent.read_units(billing.DDB) >= 8.0
        assert spent.request_count(billing.DDB, "Scan") == pages

    def test_storage_round_trip_returns_to_zero(self, account, ddb):
        ddb.update_item("t", "a", [("v", "payload")])
        ddb.update_item("t", "b", [("v", "payload")])
        assert account.meter.stored_bytes(billing.DDB) > 0
        ddb.delete_item("t", "a")
        ddb.delete_table("t")
        assert account.meter.stored_bytes(billing.DDB) == 0

    def test_billing_lines_present_and_priced(self, account, ddb):
        ddb.update_item("t", "item", [("v", "x" * 2048)])
        ddb.get_item("t", "item", consistent=True)
        cost = account.prices.cost(account.meter.snapshot())
        by_service = cost.by_service()
        assert by_service["dynamodb"] > 0
        labels = {label for label, _ in cost.lines}
        assert {"dynamodb.read_units", "dynamodb.write_units",
                "dynamodb.storage"} <= labels


class TestEventualConsistency:
    def test_eventual_read_can_miss_then_converges(self):
        account = AWSAccount(
            seed=11, consistency=ConsistencyConfig.eventual(window=5.0)
        )
        ddb = account.dynamodb
        ddb.create_table("t")
        ddb.update_item("t", "item", [("a", "b")])
        misses = 0
        for _ in range(30):
            if not ddb.get_item("t", "item", consistent=False):
                misses += 1
        assert misses > 0, "eventual reads never went stale"
        # Strong reads never miss, even before convergence.
        assert ddb.get_item("t", "item", consistent=True) == {"a": ("b",)}
        account.quiesce()
        assert ddb.get_item("t", "item", consistent=False) == {"a": ("b",)}


class TestProvisionedThroughput:
    def test_throttles_when_window_exhausted(self, account):
        account.dynamodb.create_table("tiny", read_capacity=5, write_capacity=2)
        account.dynamodb.update_item("tiny", "a", [("v", "x")])
        account.dynamodb.update_item("tiny", "b", [("v", "x")])
        with pytest.raises(errors.ProvisionedThroughputExceeded):
            account.dynamodb.update_item("tiny", "c", [("v", "x")])

    def test_fresh_second_opens_fresh_window(self, account):
        account.dynamodb.create_table("tiny", read_capacity=5, write_capacity=1)
        account.dynamodb.update_item("tiny", "a", [("v", "x")])
        account.clock.advance(1.0)
        account.dynamodb.update_item("tiny", "b", [("v", "x")])  # no throttle

    def test_throttled_attempts_are_not_metered(self, account):
        account.dynamodb.create_table("tiny", read_capacity=5, write_capacity=1)
        account.dynamodb.update_item("tiny", "a", [("v", "x")])
        before = account.meter.snapshot()
        with pytest.raises(errors.ProvisionedThroughputExceeded):
            account.dynamodb.update_item("tiny", "b", [("v", "x")])
        spent = account.meter.snapshot() - before
        assert spent.request_count(billing.DDB) == 0
        assert spent.write_units(billing.DDB) == 0

    def test_retried_503_does_not_double_charge_the_window(self, account):
        """Fault injection fires before admission control mutates the
        per-second window, so the adapter's 503 retry of one logical
        write charges provisioned capacity exactly once."""
        account.dynamodb.create_table("tiny", read_capacity=5, write_capacity=2)
        adapter = DynamoBackend(account.dynamodb)
        account.request_faults.fail_next(billing.DDB, "UpdateItem", times=1)
        adapter.put_provenance_item("tiny", "a", [("v", "x")])
        # Window has 1 of 2 units consumed — a second write must fit
        # without throttling (a double charge would have used both).
        account.dynamodb.update_item("tiny", "b", [("v", "x")])
        assert adapter.throttled_requests == 0
        assert account.meter.snapshot().write_units(billing.DDB) == 2.0

    def test_backend_adapter_backs_off_and_succeeds(self, account):
        account.dynamodb.create_table("tiny", read_capacity=50, write_capacity=1)
        adapter = DynamoBackend(account.dynamodb)
        for index in range(6):
            adapter.put_provenance_item("tiny", f"item-{index}", [("v", "x")])
        assert adapter.throttled_requests > 0
        assert account.clock.now > 0  # backoff advanced the simulated clock
        assert account.dynamodb.item_count("tiny") == 6


class TestBackendAdapterReads:
    def test_query_pages_filters_like_simpledb(self, account):
        """The same bracket predicate yields the same matches on either
        backend — DynamoDB evaluates it client-side over a Scan."""
        adapter = DynamoBackend(account.dynamodb)
        adapter.provision("t")
        adapter.put_provenance_item(
            "t", "proc/blast.1_v0001", [("type", "process"), ("name", "blast")]
        )
        adapter.put_provenance_item(
            "t", "out/a.dat_v0001", [("type", "file"), ("name", "a.dat")]
        )
        expression = "['type' = 'process'] intersection ['name' = 'blast']"
        matches = list(adapter.query_pages("t", expression, "", False, ["type"]))
        assert matches == [("proc/blast.1_v0001", {"type": ("process",)})]

    def test_enumerate_items_uses_scan_not_per_item_gets(self, account):
        adapter = DynamoBackend(account.dynamodb)
        adapter.provision("t")
        for index in range(5):
            adapter.put_provenance_item("t", f"i{index}", [("type", "file")])
        before = account.meter.snapshot()
        items = list(adapter.enumerate_items("t"))
        spent = account.meter.snapshot() - before
        assert len(items) == 5
        assert spent.request_count(billing.DDB, "Scan") == 1
        assert spent.request_count(billing.DDB, "GetItem") == 0
