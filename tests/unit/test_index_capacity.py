"""Unit tests: per-index provisioned capacity and GSI-streamed migration.

Two ROADMAP gaps closed here:

* index WCU used to charge the base table's admission window; an
  :class:`IndexSpec` may now carry its own ``wcu=``/``rcu=``, making
  index maintenance throttle independently — with ``None`` (the
  default) preserving the shared-window behaviour byte-for-byte;
* migration reads always Scanned the base table; a covering
  (ALL-projection) GSI can now stream full items instead, counted on
  ``RebalanceReport.index_streamed_items``.
"""

from __future__ import annotations

import pytest

from repro.aws import billing
from repro.aws.backend import DynamoBackend, parse_index_specs
from repro.aws.dynamo import IndexSpec
from repro.errors import ProvisionedThroughputExceeded
from repro.sharding import ShardRouter, authoritative_snapshot, rebalance
from repro.sim import Simulation


@pytest.fixture
def ddb(strong_account):
    return strong_account.dynamodb


def test_spec_parse_capacity_and_project_all():
    spec, = parse_index_specs("type+*@40:20")
    assert spec.project_all and spec.include == ()
    assert (spec.wcu, spec.rcu) == (40, 20)
    spec, = parse_index_specs("name@7")
    assert (spec.wcu, spec.rcu) == (7, None)
    assert spec.include == ("type",)  # default projection preserved
    with pytest.raises(ValueError):
        parse_index_specs("name@fast")
    # covers(): an ALL projection answers anything, others their set.
    assert parse_index_specs("type+*")[0].covers({"name", "input", "md5"})
    assert not parse_index_specs("name")[0].covers({"input"})


def test_default_index_charges_base_window(ddb):
    """wcu=None: maintenance units land on the base table's window —
    the historical shared-window behaviour, byte-for-byte."""
    ddb.create_table("t", read_capacity=1000, write_capacity=2)
    ddb.create_index("t", IndexSpec(name="gsi-a", key_attribute="a"))
    # 1 base write unit + 1 index write unit fill the 2-unit window...
    ddb.update_item("t", "item-1", [("a", "x")])
    # ...so the next write (again 1+1 units) must throttle on the BASE.
    with pytest.raises(ProvisionedThroughputExceeded) as excinfo:
        ddb.update_item("t", "item-2", [("a", "y")])
    assert "index" not in str(excinfo.value)


def test_own_wcu_throttles_index_independently(ddb):
    """With wcu= set, maintenance stops charging the base window and
    throttles against the index's own."""
    ddb.create_table("t", read_capacity=1000, write_capacity=2)
    ddb.create_index("t", IndexSpec(name="gsi-a", key_attribute="a", wcu=1))
    ddb.update_item("t", "item-1", [("a", "x")])  # 1 base + 1 index unit
    # The base window has 1 unit left; the index window has 0. A second
    # indexed write throttles on the *index*, naming it.
    with pytest.raises(ProvisionedThroughputExceeded) as excinfo:
        ddb.update_item("t", "item-2", [("a", "y")])
    assert "gsi-a" in str(excinfo.value)
    # A write that touches no indexed attribute sails through on the
    # base window the index no longer crowds.
    ddb.update_item("t", "item-3", [("b", "z")])


def test_throttled_request_consumes_no_window_anywhere(ddb):
    ddb.create_table("t", read_capacity=1000, write_capacity=1000)
    ddb.create_index("t", IndexSpec(name="gsi-a", key_attribute="a", wcu=1))
    ddb.update_item("t", "item-1", [("a", "x")])
    table = ddb._tables["t"]
    base_before = table.window_write_units
    with pytest.raises(ProvisionedThroughputExceeded):
        ddb.update_item("t", "item-2", [("a", "y")])
    # All-or-nothing admission: the rejected write charged neither the
    # base window nor the index window.
    assert table.window_write_units == base_before
    assert table.indexes["gsi-a"].window_write_units == 1.0
    ddb.clock.advance(1.5)  # a fresh window admits the retry
    ddb.update_item("t", "item-2", [("a", "y")])


def test_own_rcu_charges_index_window_for_queries(ddb):
    ddb.create_table("t", read_capacity=1000, write_capacity=1000)
    ddb.create_index("t", IndexSpec(name="gsi-a", key_attribute="a", rcu=1))
    ddb.update_item("t", "item-1", [("a", "x"), ("b", "big")])
    table = ddb._tables["t"]
    reads_before = table.window_read_units
    ddb.query_index("t", "gsi-a", ["x"])
    assert table.window_read_units == reads_before  # base untouched
    assert table.indexes["gsi-a"].window_read_units > 0


def test_scan_index_pages_and_deduplicates():
    sim = Simulation(
        architecture="s3+simpledb",
        seed=21,
        placement="ddb",
        ddb_indexes="type+*",
    )
    service = sim.account.dynamodb
    service.create_table("scan-idx")
    spec = IndexSpec(name="gsi-type", key_attribute="type", project_all=True)
    service.create_index("scan-idx", spec)
    for index in range(7):
        service.update_item(
            "scan-idx", f"item-{index:02d}", [("type", "file"), ("n", str(index))]
        )
    sim.account.quiesce()
    entries = []
    start = None
    while True:
        page = service.scan_index("scan-idx", "gsi-type", exclusive_start_key=start, limit=3)
        entries.extend(page.entries)
        start = page.last_evaluated_key
        if start is None:
            break
    assert [name for name, _ in entries] == [f"item-{i:02d}" for i in range(7)]
    # ALL projection: entries carry the full item, not a projection.
    assert entries[0][1]["n"] == ("0",)


def test_migration_streams_from_covering_index():
    sim = Simulation(
        architecture="s3+simpledb",
        seed=22,
        shards=2,
        placement="ddb",
        ddb_indexes="type+*,name,input",
    )
    from repro.workloads import CombinedWorkload
    import random

    events = list(CombinedWorkload().iter_events(random.Random("gsi-mig"), 0.3))
    sim.store_events(events, collect=False)
    before = sim.account.meter.snapshot()
    snapshot_before = authoritative_snapshot(sim.account, sim.store.router)
    target = ShardRouter(3, placement="ddb")
    report = rebalance(sim.account, sim.store.router, target)
    spent = sim.account.meter.snapshot() - before
    # Every scanned item came off the index: zero base-table Scans.
    assert report.index_streamed_items == report.items_scanned > 0
    assert spent.request_count(billing.DDB, "Scan") == 0
    assert spent.request_count(billing.DDB_GSI, "Scan") > 0
    assert authoritative_snapshot(sim.account, target) == snapshot_before
    ddb_backend = sim.account.provenance_backends()["ddb"]
    assert ddb_backend.migration_index_streams == 2  # one per source shard


def test_migration_falls_back_when_index_is_sparse(strong_account):
    """A sparse ALL-projection index (some item lacks the key
    attribute) cannot enumerate the table; the migration must detect
    the shortfall and Scan the base table instead."""
    backend = DynamoBackend(
        strong_account.dynamodb, index_specs=(
            IndexSpec(name="gsi-k", key_attribute="k", project_all=True),
        )
    )
    backend.provision("sparse")
    backend.put_provenance_item("sparse", "covered", [("k", "x"), ("v", "1")])
    backend.put_provenance_item("sparse", "bare", [("v", "2")])  # no "k"
    strong_account.quiesce()
    via_index, pages = backend.migration_pages("sparse")
    assert not via_index
    assert {name for name, _ in pages} == {"covered", "bare"}
    assert backend.migration_index_streams == 0


def test_migration_falls_back_without_project_all(strong_account):
    """The provenance defaults (key+type projections) are not covering
    — the migration read path must not regress to partial items."""
    backend = DynamoBackend(strong_account.dynamodb, index_specs="name,input")
    backend.provision("plain")
    backend.put_provenance_item("plain", "item", [("name", "x"), ("other", "y")])
    strong_account.quiesce()
    via_index, pages = backend.migration_pages("plain")
    assert not via_index
    assert dict(pages)["item"]["other"] == ("y",)
