"""Unit tests for metering and the Jan-2009 price book."""

import pytest

from repro.aws import billing
from repro.clock import SimClock
from repro.units import GB, SECONDS_PER_MONTH


@pytest.fixture
def meter():
    return billing.Meter(SimClock())


class TestMeter:
    def test_counts_requests_by_service_and_op(self, meter):
        meter.record_request(billing.S3, "PUT")
        meter.record_request(billing.S3, "PUT")
        meter.record_request(billing.S3, "GET")
        meter.record_request(billing.SQS, "SendMessage", count=5)
        usage = meter.snapshot()
        assert usage.request_count() == 8
        assert usage.request_count(billing.S3) == 3
        assert usage.request_count(billing.S3, "PUT") == 2
        assert usage.request_count(billing.SQS) == 5

    def test_transfer_accounting(self, meter):
        meter.record_transfer_in(billing.S3, 1000)
        meter.record_transfer_out(billing.S3, 300)
        meter.record_transfer_out(billing.SDB, 200)
        usage = meter.snapshot()
        assert usage.transfer_in() == 1000
        assert usage.transfer_out() == 500
        assert usage.transfer_out(billing.SDB) == 200

    def test_storage_integrates_over_time(self):
        clock = SimClock()
        meter = billing.Meter(clock)
        meter.adjust_stored(billing.S3, GB)
        clock.advance(SECONDS_PER_MONTH)
        usage = meter.snapshot()
        assert usage.gb_months(billing.S3) == pytest.approx(1.0)

    def test_storage_level_changes_integrate_piecewise(self):
        clock = SimClock()
        meter = billing.Meter(clock)
        meter.adjust_stored(billing.S3, 2 * GB)
        clock.advance(SECONDS_PER_MONTH / 2)
        meter.adjust_stored(billing.S3, -GB)
        clock.advance(SECONDS_PER_MONTH / 2)
        # 2 GB for half a month + 1 GB for half a month = 1.5 GB-months.
        assert meter.snapshot().gb_months(billing.S3) == pytest.approx(1.5)

    def test_negative_storage_rejected(self, meter):
        with pytest.raises(ValueError):
            meter.adjust_stored(billing.S3, -1)

    def test_box_usage_accumulates_for_simpledb(self, meter):
        meter.record_request(billing.SDB, "PutAttributes")
        meter.record_request(billing.SDB, "Query")
        usage = meter.snapshot()
        assert usage.box_usage_hours > 0

    def test_usage_subtraction_measures_deltas(self, meter):
        meter.record_request(billing.S3, "PUT")
        before = meter.snapshot()
        meter.record_request(billing.S3, "PUT", count=3)
        meter.record_transfer_out(billing.S3, 100)
        delta = meter.snapshot() - before
        assert delta.request_count(billing.S3, "PUT") == 3
        assert delta.transfer_out() == 100


class TestPriceBook:
    def test_paper_prices(self):
        prices = billing.PriceBook()
        # §2.1 quotes these exact figures.
        assert prices.s3_storage_gb_month == 0.15
        assert prices.s3_transfer_in_gb == 0.10
        assert prices.s3_transfer_out_gb == 0.17
        assert prices.s3_put_class_per_1000 == 0.01
        assert prices.s3_get_class_per_10000 == 0.01

    def test_put_class_pricing(self, meter):
        meter.record_request(billing.S3, "PUT", count=1000)
        meter.record_request(billing.S3, "COPY", count=1000)
        cost = billing.PriceBook().cost(meter.snapshot())
        assert cost.by_service()["s3"] == pytest.approx(0.02)

    def test_get_class_cheaper_than_put_class(self, meter):
        meter.record_request(billing.S3, "GET", count=10_000)
        get_cost = billing.PriceBook().cost(meter.snapshot()).total
        meter2 = billing.Meter(SimClock())
        meter2.record_request(billing.S3, "PUT", count=10_000)
        put_cost = billing.PriceBook().cost(meter2.snapshot()).total
        assert put_cost == pytest.approx(10 * get_cost)

    def test_deletes_are_free(self, meter):
        meter.record_request(billing.S3, "DELETE", count=100_000)
        assert billing.PriceBook().cost(meter.snapshot()).total == 0.0

    def test_transfer_pricing(self, meter):
        meter.record_transfer_in(billing.S3, GB)
        meter.record_transfer_out(billing.S3, GB)
        cost = billing.PriceBook().cost(meter.snapshot())
        assert cost.total == pytest.approx(0.27)

    def test_render_includes_total(self, meter):
        meter.record_request(billing.S3, "PUT", count=5000)
        text = billing.PriceBook().cost(meter.snapshot()).render()
        assert "TOTAL" in text
        assert "$" in text

    def test_ops_cheaper_than_storage_at_paper_scale(self):
        """§5: 'operations are much cheaper (in USD) than storage'.

        A3's one-time operation bill must be small next to what keeping
        the dataset (data + provenance) costs over a research-project
        retention horizon (a few months).
        """
        clock = SimClock()
        meter = billing.Meter(clock)
        # A3's ~231K operations, priced at their true service mix.
        meter.record_request(billing.S3, "PUT", count=62_000)
        meter.record_request(billing.SQS, "SendMessage", count=170_000)
        op_cost = billing.PriceBook().cost(meter.snapshot()).total
        # ...versus storing the 1.27 GB dataset + 421 MB of provenance.
        meter2 = billing.Meter(clock)
        meter2.adjust_stored(billing.S3, int(1.27 * GB))
        meter2.adjust_stored(billing.SDB, int(0.41 * GB))
        clock.advance(3 * SECONDS_PER_MONTH)
        storage_cost = billing.PriceBook().cost(meter2.snapshot()).total
        assert op_cost < storage_cost
