"""The JSONL trace codec: canonical round-trips, all-or-nothing loads.

A corrupt capture must never be partially applied: every defect —
truncation, padding, version skew, malformed lines, type confusion —
raises :class:`~repro.errors.TraceFormatError` before a single event is
returned, and no other exception type may escape the codec.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceFormatError
from repro.workloads import (
    TraceDocument,
    TraceReplayWorkload,
    ZipfianFleetWorkload,
    dump_trace,
    load_trace,
)


def sample_events(seed: int = 0, n_ops: int = 10):
    workload = ZipfianFleetWorkload(n_tenants=2, keys_per_tenant=4, n_ops=n_ops)
    return list(workload.iter_events(random.Random(workload.seed_key(seed))))


# -- round trips -------------------------------------------------------------


def test_events_round_trip():
    events = sample_events()
    document = load_trace(dump_trace(events, workload="unit"))
    assert document.workload == "unit"
    assert document.events == events
    assert document.clients == [None] * len(events)
    assert document.delays == [None] * len(events)


def test_columns_round_trip_and_text_is_canonical():
    events = sample_events()
    clients = [f"c{i % 3}" for i in range(len(events))]
    delays = [0.25 * i for i in range(len(events))]
    text = dump_trace(events, workload="fleet", clients=clients, delays=delays)
    document = load_trace(text)
    assert document.clients == clients
    assert document.delays == delays
    # dump(load(text)) == text: the format is canonical bytes.
    assert document.dumps() == text


def test_dump_rejects_mismatched_columns():
    events = sample_events(n_ops=4)
    with pytest.raises(ValueError):
        dump_trace(events, clients=["only-one"])
    with pytest.raises(ValueError):
        dump_trace(events, delays=[0.0])


# -- typed rejection of malformed documents ---------------------------------


def _mutate_line(text: str, index: int, fn) -> str:
    lines = text.splitlines()
    obj = json.loads(lines[index])
    fn(obj)
    lines[index] = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return "\n".join(lines) + "\n"


def _set_header(text: str, **changes) -> str:
    def fn(header):
        header.update(changes)

    return _mutate_line(text, 0, fn)


def corrupt_documents() -> dict[str, str]:
    events = sample_events(n_ops=4)
    text = dump_trace(events, workload="victim")
    lines = text.splitlines()

    def drop_last(t: str) -> str:
        return "\n".join(t.splitlines()[:-1]) + "\n"

    cases = {
        "empty": "",
        "header-not-json": "not json at all\n" + "\n".join(lines[1:]) + "\n",
        "wrong-magic": _set_header(text, format="some-other-format"),
        "version-skew": _set_header(text, version=2),
        "count-not-int": _set_header(text, events="4"),
        "count-bool": _set_header(text, events=True),
        "workload-not-str": _set_header(text, workload=7),
        "truncated": drop_last(text),
        "padded": text + lines[-1] + "\n",
        "event-not-json": "\n".join(lines[:-1] + ["{broken"]) + "\n",
        "event-not-object": "\n".join(lines[:-1] + ["[1,2,3]"]) + "\n",
        "event-extra-key": _mutate_line(
            text, 1, lambda obj: obj.update(surprise=1)
        ),
        "event-missing-key": _mutate_line(text, 1, lambda obj: obj.pop("data")),
        "client-not-str": _mutate_line(text, 1, lambda obj: obj.update(client=9)),
        "dt-negative": _mutate_line(text, 1, lambda obj: obj.update(dt=-0.5)),
        "dt-bool": _mutate_line(text, 1, lambda obj: obj.update(dt=True)),
        "ref-version-bool": _mutate_line(
            text, 1, lambda obj: obj["bundle"].update(subject=["x", True])
        ),
        "bundle-bad-keys": _mutate_line(
            text, 1, lambda obj: obj["bundle"].pop("kind")
        ),
        "record-bad-kind": _mutate_line(
            text,
            2,
            lambda obj: obj["bundle"]["records"].append(["attr", "int", 3]),
        ),
        "blob-bad-base64": _mutate_line(
            text, 1, lambda obj: obj.update(data=["bytes", "!!not base64!!"])
        ),
        "blob-unknown-kind": _mutate_line(
            text, 1, lambda obj: obj.update(data=["carved", "x", 3])
        ),
        "synthetic-size-bool": _mutate_line(
            text, 1, lambda obj: obj.update(data=["synthetic", "s", True])
        ),
    }
    return cases


@pytest.mark.parametrize("label", sorted(corrupt_documents()))
def test_malformed_documents_raise_typed_error(label):
    with pytest.raises(TraceFormatError):
        load_trace(corrupt_documents()[label])


def test_version_skew_message_names_the_version():
    with pytest.raises(TraceFormatError, match="unsupported trace version"):
        load_trace(corrupt_documents()["version-skew"])


def test_errors_carry_the_offending_line_number():
    text = dump_trace(sample_events(n_ops=4))
    broken = _mutate_line(text, 3, lambda obj: obj.update(dt=-1))
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace(broken)
    # Line numbers are 1-based file positions: header is 1, events 2..N+1.
    assert excinfo.value.line == 4
    assert "(line 4)" in str(excinfo.value)


def test_rejection_is_never_partial():
    """A defective file yields no workload and no events at all."""
    truncated = corrupt_documents()["truncated"]
    with pytest.raises(TraceFormatError):
        TraceReplayWorkload.from_text(truncated)


# -- fuzzing -----------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_corrupted_traces_reject_cleanly_or_load_whole(data):
    """Random structural damage either raises TraceFormatError or leaves
    a document that is *entirely* intact — never a partial load, never a
    foreign exception type."""
    events = sample_events(n_ops=3)
    text = dump_trace(events, workload="fuzz")
    lines = text.splitlines()
    mode = data.draw(
        st.sampled_from(["truncate", "drop-line", "dup-line", "splice", "insert"])
    )
    if mode == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        corrupted = text[:cut]
    elif mode == "drop-line":
        index = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
        corrupted = "\n".join(lines[:index] + lines[index + 1 :]) + "\n"
    elif mode == "dup-line":
        index = data.draw(st.integers(min_value=0, max_value=len(lines) - 1))
        corrupted = "\n".join(lines + [lines[index]]) + "\n"
    elif mode == "splice":
        at = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        char = data.draw(st.characters(min_codepoint=32, max_codepoint=126))
        corrupted = text[:at] + char + text[at + 1 :]
    else:  # insert
        at = data.draw(st.integers(min_value=0, max_value=len(text)))
        char = data.draw(st.characters(min_codepoint=32, max_codepoint=126))
        corrupted = text[:at] + char + text[at:]

    try:
        document = load_trace(corrupted)
    except TraceFormatError:
        return
    declared = json.loads(corrupted.splitlines()[0])["events"]
    assert len(document.events) == declared
    assert len(document.clients) == declared
    assert len(document.delays) == declared


@settings(max_examples=40, deadline=None)
@given(blob=st.text(max_size=200))
def test_arbitrary_text_never_escapes_the_typed_error(blob):
    try:
        document = load_trace(blob)
    except TraceFormatError:
        return
    assert isinstance(document, TraceDocument)
