"""Unit tests for the eventual-consistency replica engine."""

import random

import pytest

from repro.aws.consistency import DelayModel, ReplicaSet, STRONG, make_rng_family
from repro.clock import SimClock


def make_set(window=0.0, n_replicas=3, seed=7, immediate=0.0):
    clock = SimClock()
    rng = random.Random(seed)
    delays = DelayModel(max_delay=window, immediate_fraction=immediate)
    return clock, ReplicaSet("test", clock, rng, n_replicas, delays)


class TestStrongMode:
    def test_read_your_writes(self):
        _, replicas = make_set(window=0.0)
        replicas.write("k", "v1")
        assert replicas.read("k") == "v1"

    def test_delete_removes(self):
        _, replicas = make_set()
        replicas.write("k", "v")
        replicas.delete("k")
        assert replicas.read("k") is None
        assert "k" not in replicas.authoritative_keys()

    def test_last_writer_wins(self):
        _, replicas = make_set()
        replicas.write("k", "old")
        replicas.write("k", "new")
        assert replicas.read("k") == "new"


class TestEventualMode:
    def test_stale_reads_happen_then_converge(self):
        clock, replicas = make_set(window=5.0)
        replicas.write("k", "v1")
        # Immediately after the write, some replica likely lacks it.
        results = {replicas.read("k") for _ in range(50)}
        assert None in results or "v1" in results
        clock.run_until_idle()
        assert replicas.is_converged()
        assert all(replicas.read("k") == "v1" for _ in range(20))

    def test_delayed_old_write_never_clobbers_newer(self):
        clock, replicas = make_set(window=5.0)
        replicas.write("k", "old")
        replicas.write("k", "new")
        clock.run_until_idle()
        # Whatever the propagation interleaving, last write wins.
        assert replicas.read("k") == "new"
        assert replicas.read_authoritative("k") == "new"

    def test_stale_read_counter(self):
        clock, replicas = make_set(window=5.0, seed=3)
        for i in range(20):
            replicas.write(f"k{i}", i)
        for i in range(20):
            replicas.read(f"k{i}")
        clock.run_until_idle()
        assert replicas.stale_reads >= 1

    def test_snapshot_reflects_one_replica(self):
        clock, replicas = make_set(window=5.0)
        for i in range(10):
            replicas.write(f"k{i}", i)
        visible = replicas.keys_snapshot()
        assert set(visible) <= {f"k{i}" for i in range(10)}
        clock.run_until_idle()
        assert replicas.keys_snapshot() == sorted(f"k{i}" for i in range(10))

    def test_tombstone_propagates(self):
        clock, replicas = make_set(window=3.0)
        replicas.write("k", "v")
        clock.run_until_idle()
        replicas.delete("k")
        clock.run_until_idle()
        assert replicas.is_converged()
        assert replicas.read("k") is None


class TestDelayModel:
    def test_strong_is_zero(self):
        assert STRONG.is_strong
        assert STRONG.sample(random.Random(1)) == 0.0

    def test_immediate_fraction(self):
        model = DelayModel(max_delay=10.0, immediate_fraction=1.0)
        assert model.sample(random.Random(1)) == 0.0

    def test_window_bounds(self):
        model = DelayModel(max_delay=2.0)
        rng = random.Random(9)
        for _ in range(100):
            assert 0.0 <= model.sample(rng) <= 2.0


class TestRngFamily:
    def test_streams_independent_and_reproducible(self):
        family_a = make_rng_family(42)
        family_b = make_rng_family(42)
        assert family_a("s3").random() == family_b("s3").random()
        assert family_a("s3").random() != family_a("sqs").random()

    def test_replica_validation(self):
        with pytest.raises(ValueError):
            make_set(n_replicas=0)
