"""Unit tests for the workload generators."""

import random

import pytest

from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.records import Attr
from repro.workloads import (
    BlastWorkload,
    CombinedWorkload,
    LinuxCompileWorkload,
    ProvenanceChallengeWorkload,
    collect_stats,
)
from repro.units import KB, SDB_MAX_ATTRS_PER_ITEM


def generate(workload, scale=0.2, seed="test"):
    return list(workload.iter_events(random.Random(seed), scale))


class TestDeterminism:
    @pytest.mark.parametrize(
        "workload",
        [LinuxCompileWorkload(), BlastWorkload(), ProvenanceChallengeWorkload()],
        ids=["linux", "blast", "fmri"],
    )
    def test_same_seed_same_trace(self, workload):
        first = generate(workload)
        second = generate(workload)
        assert [e.subject for e in first] == [e.subject for e in second]
        assert [e.data.md5() for e in first] == [e.data.md5() for e in second]

    def test_different_seed_different_content(self):
        first = generate(BlastWorkload(), seed="a")
        second = generate(BlastWorkload(), seed="b")
        assert [e.data.md5() for e in first] != [e.data.md5() for e in second]


class TestCausalOrder:
    @pytest.mark.parametrize(
        "workload",
        [LinuxCompileWorkload(), BlastWorkload(), ProvenanceChallengeWorkload()],
        ids=["linux", "blast", "fmri"],
    )
    def test_ancestors_flushed_before_descendants(self, workload):
        events = generate(workload, scale=0.15)
        seen = set()
        for event in events:
            for bundle in event.all_bundles():
                for parent in bundle.inputs():
                    assert parent in seen or parent.name == bundle.subject.name, (
                        f"{bundle.subject.encode()} references unseen "
                        f"{parent.encode()}"
                    )
                seen.add(bundle.subject)

    def test_graph_acyclic(self):
        events = generate(CombinedWorkload(), scale=0.1)
        assert ProvenanceGraph.from_events(events).is_acyclic()


class TestStructure:
    def test_linux_versions_churn(self):
        events = generate(LinuxCompileWorkload(rebuild_passes=2), scale=0.3)
        versions = [e.subject.version for e in events]
        assert max(versions) >= 2  # rebuilds cut new versions

    def test_linux_pipeline_present(self):
        events = generate(LinuxCompileWorkload(), scale=0.1)
        obj_event = next(e for e in events if e.subject.name.endswith(".o"))
        names = {
            a.attribute_values(Attr.NAME)[0]
            for a in obj_event.ancestors
            if a.kind == "process"
        }
        assert {"cpp", "cc1", "as"} <= names
        assert any(a.kind == "pipe" for a in obj_event.ancestors)

    def test_simpledb_item_limit_respected(self):
        events = generate(LinuxCompileWorkload(), scale=0.6)
        for event in events:
            for bundle in event.all_bundles():
                assert len(bundle) <= SDB_MAX_ATTRS_PER_ITEM

    def test_blast_two_stage_pipeline(self):
        events = generate(BlastWorkload(n_runs=1, queries_per_run=3), scale=1.0)
        graph = ProvenanceGraph.from_events(events)
        outputs = graph.outputs_of("blast")
        assert len(outputs) == 3
        descendants = graph.descendants_of_outputs("blast")
        assert len(descendants) == 6  # hits + summaries

    def test_provchallenge_workflow_shape(self):
        events = generate(ProvenanceChallengeWorkload(n_workflows=1), scale=1.0)
        graph = ProvenanceGraph.from_events(events)
        # The published workflow: every GIF descends from all 4 anatomies.
        gif = next(e.subject for e in events if e.subject.name.endswith("-x.gif"))
        ancestor_names = {ref.name for ref in graph.ancestors(gif)}
        for i in range(1, 5):
            assert f"fmri/s0000/anatomy{i}.img" in ancestor_names

    def test_workload_tag_recorded(self):
        events = generate(BlastWorkload(n_runs=1, queries_per_run=2))
        for event in events:
            assert event.bundle.attribute_values(Attr.WORKLOAD) == ["blast"]


class TestStatistics:
    def test_stats_accumulate(self):
        events = generate(CombinedWorkload(), scale=0.1)
        stats = collect_stats(events)
        assert stats.n_objects == len(events)
        assert stats.raw_bytes == sum(e.data.size for e in events)
        assert stats.n_sdb_items >= stats.n_objects
        assert stats.per_workload_objects.keys() == {
            "linux-compile", "blast", "provchallenge",
        }

    def test_oversized_records_present(self):
        stats = collect_stats(generate(CombinedWorkload(), scale=0.15))
        assert stats.n_records_gt_1kb > 0
        # Everything that spilled was indeed >1 KB by construction.
        assert stats.s3_prov_bytes > stats.n_records_gt_1kb * KB

    def test_scaling_monotone(self):
        small = collect_stats(generate(CombinedWorkload(), scale=0.1, seed="s"))
        large = collect_stats(generate(CombinedWorkload(), scale=0.3, seed="s"))
        assert large.n_objects > small.n_objects
        assert large.raw_bytes > small.raw_bytes
