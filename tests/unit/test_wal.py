"""Unit tests for WAL record formats and transaction assembly."""

import json

import pytest

from repro.aws.sqs import ReceivedMessage
from repro.blob import SyntheticBlob
from repro.core.wal import (
    MESSAGE_BUDGET,
    TransactionAssembler,
    build_wal_bundle,
    parse_record,
)
from repro.passlib.capture import PassSystem
from repro.units import KB


def make_event(env_bytes=0, data=b"content"):
    pas = PassSystem(workload="wal")
    env = {"BIG": "x" * env_bytes} if env_bytes else {}
    with pas.process("tool", env=env) as proc:
        proc.write("out.dat", data)
        return proc.close("out.dat")


def as_received(bundle, start_id=0):
    return [
        ReceivedMessage(
            message_id=f"m{start_id + i}",
            body=body,
            receipt_handle=f"h{start_id + i}",
            receive_count=1,
            enqueued_at=0.0,
        )
        for i, body in enumerate(bundle.messages)
    ]


class TestBuildWalBundle:
    def test_structure(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        kinds = [json.loads(m)["t"] for m in bundle.messages]
        assert kinds[0] == "begin"
        assert kinds[-1] == "commit"
        assert "data" in kinds
        assert "prov" in kinds

    def test_begin_count_matches(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        begin = json.loads(bundle.messages[0])
        assert begin["n"] == len(bundle.messages) - 1 == bundle.record_count

    def test_data_staged_as_temp_object(self):
        """§4.3: large data cannot ride the 8 KB queue; stage in S3."""
        event = make_event(data=SyntheticBlob("big", 100 * KB).read(0, 1) or b"x")
        bundle = build_wal_bundle(make_event(), "txn-9")
        (temp_key, blob), *rest = bundle.temp_puts
        assert temp_key.startswith(".pass/tmp/txn-9/")
        data_record = next(
            json.loads(m) for m in bundle.messages if json.loads(m)["t"] == "data"
        )
        assert data_record["temp"] == temp_key
        assert data_record["nonce"] == "v0001"

    def test_all_messages_fit_sqs_limit(self):
        bundle = build_wal_bundle(make_event(env_bytes=6 * KB), "txn-2")
        for message in bundle.messages:
            assert len(message.encode()) <= 8 * KB

    def test_large_values_ride_as_ovfl_messages(self):
        bundle = build_wal_bundle(make_event(env_bytes=3 * KB), "txn-3")
        kinds = [json.loads(m)["t"] for m in bundle.messages]
        assert "ovfl" in kinds

    def test_huge_values_staged_like_data(self):
        bundle = build_wal_bundle(make_event(env_bytes=9 * KB), "txn-4")
        kinds = [json.loads(m)["t"] for m in bundle.messages]
        assert "ovfl_ptr" in kinds
        assert len(bundle.temp_puts) == 2  # data + staged overflow value

    def test_many_attributes_chunked(self):
        pas = PassSystem()
        for i in range(60):
            pas.stage_input(f"in{i}", b"x")
        pas.drain_flushes()
        with pas.process("wide", env={"E": "v" * 900}) as proc:
            for i in range(60):
                proc.read(f"in{i}")
            proc.write("out", b"y")
            event = proc.close("out")
        bundle = build_wal_bundle(event, "txn-5")
        for message in bundle.messages:
            assert len(message.encode()) <= MESSAGE_BUDGET + 256


class TestParseRecord:
    def test_parse_valid(self):
        record = parse_record('{"t":"commit","txn":"a"}')
        assert record["t"] == "commit"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_record('{"no":"type"}')


class TestTransactionAssembler:
    def test_complete_transaction(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        assembler = TransactionAssembler()
        for message in as_received(bundle):
            assembler.add(message)
        complete = assembler.complete()
        assert [t.txn_id for t in complete] == ["txn-1"]
        txn = complete[0]
        assert txn.data is not None
        assert txn.items()

    def test_out_of_order_assembly(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        assembler = TransactionAssembler()
        for message in reversed(as_received(bundle)):
            assembler.add(message)
        assert len(assembler.complete()) == 1

    def test_duplicates_do_not_inflate(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        assembler = TransactionAssembler()
        messages = as_received(bundle)
        for message in messages + messages:  # at-least-once delivery
            assembler.add(message)
        txn = assembler.complete()[0]
        assert txn.records_seen == txn.expected_records

    def test_missing_commit_means_uncommitted(self):
        bundle = build_wal_bundle(make_event(), "txn-1")
        assembler = TransactionAssembler()
        for message in as_received(bundle)[:-1]:  # drop commit
            assembler.add(message)
        assert assembler.complete() == []
        assert [t.txn_id for t in assembler.uncommitted()] == ["txn-1"]

    def test_commit_without_all_records_is_pending(self):
        bundle = build_wal_bundle(make_event(env_bytes=3 * KB), "txn-1")
        messages = as_received(bundle)
        assembler = TransactionAssembler()
        assembler.add(messages[0])          # begin
        assembler.add(messages[-1])         # commit
        assert assembler.complete() == []
        assert [t.txn_id for t in assembler.pending_commits()] == ["txn-1"]

    def test_items_regroup_chunked_attributes(self):
        pas = PassSystem()
        with pas.process("tool", env={"E1": "a" * 900, "E2": "b" * 900}) as proc:
            proc.write("out", b"y")
            event = proc.close("out")
        bundle = build_wal_bundle(event, "txn-6")
        assembler = TransactionAssembler()
        for message in as_received(bundle):
            assembler.add(message)
        txn = assembler.complete()[0]
        names = [name for name, _ in txn.items()]
        assert event.subject.item_name in names

    def test_interleaved_transactions(self):
        b1 = build_wal_bundle(make_event(), "txn-a")
        b2 = build_wal_bundle(make_event(), "txn-b")
        assembler = TransactionAssembler()
        m1, m2 = as_received(b1), as_received(b2, start_id=100)
        for pair in zip(m1, m2):
            for message in pair:
                assembler.add(message)
        assert [t.txn_id for t in assembler.complete()] == ["txn-a", "txn-b"]
