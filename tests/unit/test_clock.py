"""Unit tests for the simulated clock."""

import pytest

from repro.clock import SimClock, Stopwatch, ticks


class TestSimClock:
    def test_starts_at_epoch(self):
        assert SimClock().now == 0.0
        assert SimClock(epoch=100.0).now == 100.0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == 2.5
        clock.advance(0.5)
        assert clock.now == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_rejects_past(self):
        clock = SimClock()
        clock.advance(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(3.0)

    def test_events_fire_in_deadline_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(3.0, lambda: fired.append("c"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.advance(5.0)
        assert fired == ["a", "b", "c"]

    def test_events_beyond_horizon_do_not_fire(self):
        clock = SimClock()
        fired = []
        clock.call_at(10.0, lambda: fired.append("late"))
        clock.advance(5.0)
        assert fired == []
        assert clock.pending_events == 1

    def test_call_after_is_relative(self):
        clock = SimClock()
        clock.advance(7.0)
        fired = []
        clock.call_after(1.0, lambda: fired.append(clock.now))
        clock.advance(2.0)
        assert fired == [8.0]

    def test_call_after_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SimClock().call_after(-0.1, lambda: None)

    def test_same_deadline_fires_in_schedule_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append("first"))
        clock.call_at(1.0, lambda: fired.append("second"))
        clock.advance(1.0)
        assert fired == ["first", "second"]

    def test_callback_may_schedule_more_events(self):
        clock = SimClock()
        fired = []

        def chain():
            fired.append("outer")
            clock.call_at(clock.now + 0.5, lambda: fired.append("inner"))

        clock.call_at(1.0, chain)
        clock.advance(2.0)
        assert fired == ["outer", "inner"]

    def test_run_until_idle_fires_everything(self):
        clock = SimClock()
        fired = []
        for i in range(5):
            clock.call_at(float(i), lambda i=i: fired.append(i))
        clock.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]
        assert clock.pending_events == 0

    def test_run_until_idle_respects_horizon(self):
        clock = SimClock()
        fired = []
        clock.call_at(1.0, lambda: fired.append(1))
        clock.call_at(10.0, lambda: fired.append(10))
        clock.run_until_idle(horizon=5.0)
        assert fired == [1]
        assert clock.now == 5.0

    def test_past_deadline_fires_on_zero_advance(self):
        clock = SimClock()
        fired = []
        clock.call_at(0.0, lambda: fired.append("now"))
        clock.advance(0.0)
        assert fired == ["now"]


class TestStopwatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed == 3.0

    def test_restart_resets(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(2.0)
        assert watch.restart() == 2.0
        clock.advance(1.0)
        assert watch.elapsed == 1.0


class TestTicks:
    def test_yields_times(self):
        clock = SimClock()
        times = list(ticks(clock, step=1.5, count=3))
        assert times == [1.5, 3.0, 4.5]
        assert clock.now == 4.5
