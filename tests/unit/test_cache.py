"""Unit tests for the client's local cache."""

import pytest

from repro.blob import BytesBlob
from repro.errors import CacheMiss
from repro.passlib.cache import LocalCache
from repro.passlib.records import ObjectRef, ProvenanceBundle


def bundle_for(name: str, version: int = 1) -> ProvenanceBundle:
    return ProvenanceBundle(
        subject=ObjectRef(name, version), kind="file", records=()
    )


class TestDataSide:
    def test_put_get(self):
        cache = LocalCache()
        cache.put_data("f", BytesBlob(b"x"), version=1)
        entry = cache.get_data("f")
        assert entry.blob.read() == b"x"
        assert entry.version == 1
        assert entry.dirty

    def test_miss_raises_and_counts(self):
        cache = LocalCache()
        with pytest.raises(CacheMiss):
            cache.get_data("ghost")
        assert cache.misses == 1

    def test_dirty_tracking(self):
        cache = LocalCache()
        cache.put_data("a", BytesBlob(b"1"), 1)
        cache.put_data("b", BytesBlob(b"2"), 1)
        cache.mark_clean("a")
        assert cache.dirty_paths() == ["b"]

    def test_evict_drops_data_only(self):
        cache = LocalCache()
        cache.put_data("f", BytesBlob(b"x"), 1)
        cache.put_provenance(bundle_for("f"))
        cache.evict("f")
        assert not cache.has_data("f")
        assert cache.has_provenance(ObjectRef("f", 1))


class TestProvenanceSide:
    def test_put_get(self):
        cache = LocalCache()
        cache.put_provenance(bundle_for("f", 2))
        assert cache.get_provenance(ObjectRef("f", 2)).subject.version == 2

    def test_versions_distinct(self):
        cache = LocalCache()
        cache.put_provenance(bundle_for("f", 1))
        cache.put_provenance(bundle_for("f", 2))
        assert len(cache.provenance_refs()) == 2

    def test_clear_provenance(self):
        cache = LocalCache()
        cache.put_provenance(bundle_for("f", 1))
        assert cache.clear_provenance() == 1
        with pytest.raises(CacheMiss):
            cache.get_provenance(ObjectRef("f", 1))


class TestLifecycle:
    def test_clear_models_host_loss(self):
        cache = LocalCache()
        cache.put_data("f", BytesBlob(b"x"), 1)
        cache.put_provenance(bundle_for("f"))
        cache.clear()
        assert len(cache) == 0
        assert cache.provenance_refs() == []

    def test_hit_counters(self):
        cache = LocalCache()
        cache.put_data("f", BytesBlob(b"x"), 1)
        cache.get_data("f")
        cache.get_data("f")
        assert cache.hits == 2
