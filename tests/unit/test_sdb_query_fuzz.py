"""Fuzz/edge tests locking in sdb_query parser + pagination behaviour.

The shard router fans queries out across domains and replays pagination
tokens per shard, so the parser's edge behaviour — empty brackets, huge
cross-reference disjunctions, tokens that outlive the page they came
from — must be pinned down before anything is layered on top.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import errors
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.sdb_query import parse_query, parse_select, run_query
from repro.passlib.records import ObjectRef
from repro.query.engine import REF_BATCH
from repro.sharding import ShardRouter


# -- empty / degenerate bracket predicates ---------------------------------

class TestEmptyPredicates:
    def test_empty_bracket_is_rejected(self):
        with pytest.raises(errors.InvalidQueryExpression):
            parse_query("[]")

    def test_dangling_or_is_rejected(self):
        with pytest.raises(errors.InvalidQueryExpression):
            parse_query("['type' = 'file' or]")

    def test_bracket_missing_value_is_rejected(self):
        with pytest.raises(errors.InvalidQueryExpression):
            parse_query("['type' =]")

    def test_none_and_blank_match_all(self):
        items = [("a", {"x": ("1",)}), ("b", {})]
        assert run_query(items, parse_query(None)) == items
        assert run_query(items, parse_query("")) == items
        assert run_query(items, parse_query("   ")) == items

    def test_lone_set_operator_is_rejected(self):
        with pytest.raises(errors.InvalidQueryExpression):
            parse_query("intersection")

    def test_empty_select_in_list_is_rejected(self):
        with pytest.raises(errors.InvalidQueryExpression):
            parse_select("select * from d where input in ()")


# -- >REF_BATCH cross-reference disjunctions -------------------------------

class TestWideReferenceDisjunctions:
    def make_refs(self, count):
        return [ObjectRef(f"dir/file-{i:04d}", 1 + i % 3) for i in range(count)]

    def test_bracket_disjunction_beyond_ref_batch(self):
        refs = self.make_refs(REF_BATCH * 2 + 5)
        disjunction = " or ".join(f"'input' = '{r.encode()}'" for r in refs)
        query = parse_query(f"[{disjunction}]")
        hit = {"input": (refs[REF_BATCH].encode(),)}
        miss = {"input": ("other:v0001",)}
        assert query.matches(hit)
        assert not query.matches(miss)

    def test_select_in_list_beyond_ref_batch(self):
        refs = self.make_refs(REF_BATCH + 7)
        in_list = ", ".join(f"'{r.encode()}'" for r in refs)
        statement = parse_select(f"select type from d where input in ({in_list})")
        assert statement.query.matches({"input": (refs[-1].encode(),)})
        assert not statement.query.matches({"input": ("nope:v0001",)})

    def test_both_spellings_agree_at_width(self):
        refs = self.make_refs(REF_BATCH * 3)
        items = [
            (r.item_name, {"input": (r.encode(),), "type": ("file",)}) for r in refs
        ] + [("stranger_v0001", {"type": ("file",)})]
        disjunction = " or ".join(f"'input' = '{r.encode()}'" for r in refs)
        in_list = ", ".join(f"'{r.encode()}'" for r in refs)
        bracket = run_query(items, parse_query(f"[{disjunction}]"))
        select = run_query(
            items, parse_select(f"select * from d where input in ({in_list})").query
        )
        assert [n for n, _ in bracket] == [n for n, _ in select]
        assert len(bracket) == len(refs)


# -- pagination tokens across shard boundaries -----------------------------

class TestPaginationAcrossShards:
    def loaded_service(self, shards: int = 3, items_per_shard_hint: int = 40):
        account = AWSAccount(seed=5, consistency=ConsistencyConfig.strong())
        # These tests pin SimpleDB's pagination-token wire semantics, so
        # the layout stays all-SimpleDB whatever REPRO_BACKEND_PLACEMENT
        # says (writes below go straight to the SimpleDB service).
        router = ShardRouter(shards, placement="sdb")
        router.provision(account)
        for index in range(shards * items_per_shard_hint):
            name = f"dir{index % 5}/obj-{index:04d}_v0001"
            domain = router.domain_for_item(name)
            account.simpledb.put_attributes(domain, name, [("type", "file")])
        return account, router

    def test_token_from_one_shard_rejected_shape_on_another(self):
        """A next_token is only meaningful against the shard that minted
        it — replayed on a different shard it silently resumes *that*
        shard's ordering (SimpleDB semantics: token = last item name)."""
        account, router = self.loaded_service()
        first, second = router.domains[0], router.domains[1]
        page = account.simpledb.query(first, None, max_items=10)
        assert page.next_token is not None
        replayed = account.simpledb.query(second, None, next_token=page.next_token)
        native = account.simpledb.query(second, None)
        boundary = page.next_token[len("after:"):]
        assert set(replayed.item_names) == {
            n for n in native.item_names if n > boundary
        }

    def test_malformed_token_raises_invalid_next_token(self):
        account, router = self.loaded_service()
        with pytest.raises(errors.InvalidNextToken):
            account.simpledb.query(router.domains[0], None, next_token="bogus")

    def test_full_paged_walk_per_shard_sees_every_item_once(self):
        account, router = self.loaded_service()
        seen: list[str] = []
        for domain in router.domains:
            token = None
            while True:
                page = account.simpledb.query(
                    domain, None, max_items=7, next_token=token
                )
                seen.extend(page.item_names)
                token = page.next_token
                if token is None:
                    break
        expected = sorted(
            name
            for domain in router.domains
            for name in account.simpledb.authoritative_item_names(domain)
        )
        assert sorted(seen) == expected
        assert len(seen) == len(set(seen))

    def test_token_past_the_last_item_yields_empty_page(self):
        account, router = self.loaded_service()
        domain = router.domains[0]
        page = account.simpledb.query(domain, None, next_token="after:~~~~")
        assert page.item_names == ()
        assert page.next_token is None


# -- grammar fuzzing --------------------------------------------------------

_values = st.text(alphabet="abc0:/_-", min_size=1, max_size=8)
_attrs = st.sampled_from(["type", "name", "input", "ver"])
_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "starts-with"])


@st.composite
def bracket_expressions(draw):
    attribute = draw(_attrs)
    n_terms = draw(st.integers(min_value=1, max_value=6))
    connectives = [draw(st.sampled_from(["or", "and"])) for _ in range(n_terms - 1)]
    parts = []
    for index in range(n_terms):
        op = draw(_ops)
        value = draw(_values).replace("'", "''")
        parts.append(f"'{attribute}' {op} '{value}'")
        if index < n_terms - 1:
            parts.append(connectives[index])
    return "[" + " ".join(parts) + "]"


@settings(max_examples=120, deadline=None)
@given(
    expression=st.one_of(
        bracket_expressions(),
        st.text(alphabet="[]'=<>!asdfo ", max_size=30),
    ),
    attrs=st.dictionaries(
        keys=_attrs,
        values=st.lists(_values, min_size=1, max_size=3).map(tuple),
        max_size=3,
    ),
)
def test_parser_never_crashes_outside_its_error_type(expression, attrs):
    """Any input either parses (and then evaluates total) or raises
    InvalidQueryExpression — no other exception type escapes."""
    try:
        query = parse_query(expression)
    except errors.InvalidQueryExpression:
        return
    assert query.matches(attrs) in (True, False)


@settings(max_examples=120, deadline=None)
@given(statement=st.text(alphabet="select*fromwhd ()',=", max_size=40))
def test_select_parser_never_crashes_outside_its_error_type(statement):
    try:
        parsed = parse_select(statement)
    except errors.InvalidQueryExpression:
        return
    assert parsed.domain is not None
