"""Unit tests for the provenance graph and the ancestry walker."""

import pytest

from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.capture import PassSystem
from repro.passlib.records import ObjectRef
from repro.query.ancestry import AncestryWalker


def chain_trace():
    """a → p0 → b → p1 → c."""
    pas = PassSystem()
    pas.stage_input("a", b"seed")
    for i, (src, dst) in enumerate((("a", "b"), ("b", "c"))):
        with pas.process(f"step{i}") as proc:
            proc.read(src)
            proc.write(dst, f"out{i}".encode())
            proc.close(dst)
    return pas.drain_flushes()


@pytest.fixture
def events():
    return chain_trace()


@pytest.fixture
def graph(events):
    return ProvenanceGraph.from_events(events)


@pytest.fixture
def walker(events):
    return AncestryWalker(b for e in events for b in e.all_bundles())


class TestProvenanceGraph:
    def test_nodes_typed(self, graph):
        assert ObjectRef("a", 1) in graph
        assert graph.kind(ObjectRef("a", 1)) == "file"
        assert len(graph.nodes("process")) == 2
        assert len(graph.nodes("file")) == 3

    def test_acyclic(self, graph):
        assert graph.is_acyclic()

    def test_ancestors_transitive(self, graph):
        ancestors = graph.ancestors(ObjectRef("c", 1))
        assert ObjectRef("a", 1) in ancestors
        assert ObjectRef("b", 1) in ancestors

    def test_descendants_transitive(self, graph):
        descendants = graph.descendants(ObjectRef("a", 1))
        assert ObjectRef("c", 1) in descendants

    def test_outputs_of(self, graph):
        assert graph.outputs_of("step0") == {ObjectRef("b", 1)}

    def test_descendants_of_outputs(self, graph):
        assert graph.descendants_of_outputs("step0") == {
            ObjectRef("b", 1),
            ObjectRef("c", 1),
        }

    def test_version_counts(self, graph):
        counts = graph.version_counts()
        assert counts["a"] == 1
        assert counts["c"] == 1

    def test_data_size_recorded(self, events):
        graph = ProvenanceGraph.from_events(events)
        assert graph.nx.nodes[ObjectRef("a", 1)]["data_size"] == 4


class TestAncestryWalker:
    def test_parents_children(self, walker):
        c = ObjectRef("c", 1)
        parents = walker.parents(c)
        assert len(parents) == 1 and parents[0].name.startswith("proc/step1")
        a = ObjectRef("a", 1)
        children = walker.children(a)
        assert len(children) == 1 and children[0].name.startswith("proc/step0")

    def test_ancestors_exclude_self(self, walker):
        c = ObjectRef("c", 1)
        assert c not in walker.ancestors(c)
        assert ObjectRef("a", 1) in walker.ancestors(c)

    def test_find_by_attribute(self, walker):
        assert walker.find("name", "step0") == walker.instances_of("step0")

    def test_causal_closure_detects_gaps(self, walker, events):
        all_refs = {b.subject for e in events for b in e.all_bundles()}
        assert walker.is_causally_closed(all_refs)
        # Remove a's bundle from visibility: step0 references a missing
        # known ancestor -> closure broken.
        broken = all_refs - {ObjectRef("a", 1)}
        assert not walker.is_causally_closed(broken)

    def test_closure_tolerates_unknown_externals(self, walker):
        # Nodes the walker never saw don't break closure.
        assert walker.is_causally_closed({ObjectRef("c", 1)}) in (True, False)
        only_a = {ObjectRef("a", 1)}
        assert walker.is_causally_closed(only_a)

    def test_incremental_add(self, events):
        walker = AncestryWalker([])
        for event in events:
            for bundle in event.all_bundles():
                walker.add(bundle)
        assert len(walker) == sum(len(e.all_bundles()) for e in events)
