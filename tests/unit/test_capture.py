"""Unit tests for the PASS capture engine (syscalls → flush events)."""

import pytest

from repro.errors import ObjectClosed, UnknownObject
from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr


class TestStaging:
    def test_stage_input_queues_flush(self):
        pas = PassSystem()
        pas.stage_input("in.dat", b"source")
        events = pas.drain_flushes()
        assert len(events) == 1
        assert events[0].subject.name == "in.dat"
        assert events[0].data.read() == b"source"
        assert events[0].ancestors == ()

    def test_descriptor_records_present(self):
        pas = PassSystem(workload="w")
        pas.stage_input("in.dat", b"x")
        bundle = pas.drain_flushes()[0].bundle
        assert bundle.attribute_values(Attr.TYPE) == ["file"]
        assert bundle.attribute_values(Attr.NAME) == ["in.dat"]
        assert bundle.attribute_values(Attr.WORKLOAD) == ["w"]


class TestProcessIO:
    def test_write_close_flushes_with_process_ancestor(self):
        pas = PassSystem()
        with pas.process("tool", argv="-x", env={"K": "V"}) as proc:
            proc.write("out.dat", b"result")
            event = proc.close("out.dat")
        assert event.subject.name == "out.dat"
        assert [a.kind for a in event.ancestors] == ["process"]
        proc_bundle = event.ancestors[0]
        assert proc_bundle.attribute_values(Attr.NAME) == ["tool"]
        assert proc_bundle.attribute_values(Attr.ARGV) == ["-x"]
        assert event.bundle.inputs() == [proc_bundle.subject]

    def test_read_links_process_to_file(self):
        pas = PassSystem()
        pas.stage_input("in.dat", b"x")
        with pas.process("tool") as proc:
            proc.read("in.dat")
            proc.write("out.dat", b"y")
            proc.close("out.dat")
        events = pas.drain_flushes()
        out_event = events[-1]
        proc_bundle = out_event.ancestors[0]
        assert any(ref.name == "in.dat" for ref in proc_bundle.inputs())

    def test_read_of_unknown_file_autostages(self):
        pas = PassSystem()
        with pas.process("tool") as proc:
            proc.read("mystery.dat")
            proc.write("out.dat", b"y")
            proc.close("out.dat")
        events = pas.drain_flushes()
        assert events[0].subject.name == "mystery.dat"  # ancestor first

    def test_process_ancestor_shipped_once(self):
        """A process writing two files rides with the first flush only."""
        pas = PassSystem()
        with pas.process("tool") as proc:
            proc.write("a.dat", b"1")
            first = proc.close("a.dat")
            proc.write("b.dat", b"2")
            second = proc.close("b.dat")
        assert len(first.ancestors) == 1
        assert second.ancestors == ()  # already persisted
        assert second.bundle.inputs() == [first.ancestors[0].subject]

    def test_exited_process_rejects_io(self):
        pas = PassSystem()
        proc = pas.process("tool")
        proc.exit()
        with pytest.raises(ObjectClosed):
            proc.write("x", b"y")

    def test_close_without_data_rejected(self):
        pas = PassSystem()
        with pytest.raises(UnknownObject):
            pas.close_file("never-written")

    def test_parent_lineage_recorded(self):
        pas = PassSystem()
        parent = pas.process("sh")
        with pas.process("cc", parent=parent) as child:
            child.write("out.o", b"obj")
            event = child.close("out.o")
        subjects = {a.subject.name for a in event.ancestors}
        assert any(name.startswith("proc/cc") for name in subjects)
        assert any(name.startswith("proc/sh") for name in subjects)


class TestPipes:
    def test_pipeline_provenance_chain(self):
        pas = PassSystem()
        pas.stage_input("in.txt", b"text")
        pipe = pas.make_pipe()
        with pas.process("grep") as grep:
            grep.read("in.txt")
            grep.write_pipe(pipe)
        with pas.process("sort") as sorter:
            sorter.read_pipe(pipe)
            sorter.write("out.txt", b"sorted")
            event = sorter.close("out.txt")
        kinds = [a.kind for a in event.ancestors]
        assert kinds.count("process") == 2
        assert kinds.count("pipe") == 1
        # Transitive chain: out <- sort <- pipe <- grep.
        subjects = [a.subject.name for a in event.ancestors]
        assert subjects.index("pipe/1") < subjects.index(
            next(s for s in subjects if s.startswith("proc/sort"))
        )


class TestVersionsAcrossFlushes:
    def test_rewrite_after_flush_creates_new_version(self):
        pas = PassSystem()
        with pas.process("w1") as proc:
            proc.write("f", b"v1")
            first = proc.close("f")
        with pas.process("w2") as proc:
            proc.write("f", b"v2")
            second = proc.close("f")
        assert first.subject.version == 1
        assert second.subject.version == 2
        prev = [
            r.value for r in second.bundle.records
            if r.attribute == Attr.VERSION_OF
        ]
        assert prev == [first.subject]

    def test_graph_remains_acyclic(self):
        pas = PassSystem()
        pas.stage_input("seed", b"s")
        for i in range(4):
            with pas.process(f"step{i}") as proc:
                proc.read("seed" if i == 0 else f"stage{i - 1}")
                proc.write(f"stage{i}", f"data{i}".encode())
                proc.close(f"stage{i}")
        pas.drain_flushes()
        assert pas.versions.is_acyclic()


class TestTrim:
    def test_trim_preserves_future_correctness(self):
        pas = PassSystem()
        pas.stage_input("in", b"x")
        with pas.process("p1") as proc:
            proc.read("in")
            proc.write("mid", b"y")
            proc.close("mid")
        pas.drain_flushes()
        freed = pas.trim_flushed()
        assert freed >= 0
        # Work continues normally after trimming.
        with pas.process("p2") as proc:
            proc.read("mid")
            proc.write("out", b"z")
            event = proc.close("out")
        assert event.subject.name == "out"
        assert pas.versions.is_acyclic()
