"""Concurrent scatter-gather: accounting exactness, determinism, latency.

The invariants the concurrent dispatcher must uphold:

* **per-shard exactness** — ``sum(per_shard ops/bytes)`` equals the
  query's global meter delta for Q1/Q2/Q3 at every shard count, in both
  sequential and concurrent modes (scoped meter contexts make this hold
  even when streams interleave on the pool);
* **mode equivalence** — a concurrent engine returns exactly the
  sequential engine's refs, operation counts, and per-shard triples
  (streams only read; the gather merges in submission order);
* **determinism** — repeating a concurrent query on an identically
  seeded deployment reproduces the measurement bit-for-bit;
* **latency model shape** — the modeled critical path never exceeds the
  sequential sum, collapses to it at ``concurrency=1``, and beats it
  when independent shard streams actually overlap.
"""

from __future__ import annotations

import threading

import pytest

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.passlib.capture import PassSystem
from repro.query.engine import SimpleDBEngine, default_concurrency, parse_nonce
from repro.query.latency import DEFAULT_LATENCY_MODEL, makespan
from repro.sim import Simulation

SHARD_COUNTS = (1, 4)
CONCURRENCY_MODES = (1, 4)


def pipeline_trace(n_jobs: int = 5):
    """blast → summarize chains across several directories."""
    pas = PassSystem(workload="gather")
    pas.stage_input("db/nr", b"database")
    for job in range(n_jobs):
        with pas.process("blast", argv=f"-q {job}") as blast:
            blast.read("db/nr")
            blast.write(f"out/{job % 3}/hits-{job}.dat", f"h{job}".encode())
            blast.close(f"out/{job % 3}/hits-{job}.dat")
        with pas.process("summarize") as post:
            post.read(f"out/{job % 3}/hits-{job}.dat")
            post.write(f"sum/{job}.txt", f"s{job}".encode())
            post.close(f"sum/{job}.txt")
    return list(pas.drain_flushes())


@pytest.fixture(scope="module")
def trace():
    return pipeline_trace()


@pytest.fixture(scope="module")
def loaded_sims(trace):
    # read_cache pinned off: these tests pin exact backend-request
    # accounting across repeated queries on shared sims — a memo hit
    # would (correctly) answer later runs with zero backend waves.
    # The cache's own accounting has dedicated tests.
    sims = {}
    for shards in SHARD_COUNTS:
        sim = Simulation(
            architecture="s3+simpledb", seed=7, shards=shards,
            read_cache="off",
        )
        sim.store_events(trace, collect=False)
        sims[shards] = sim
    return sims


def engine_for(sim, concurrency):
    return SimpleDBEngine(
        sim.account, router=sim.store.router, concurrency=concurrency
    )


def run_query(engine, name, trace):
    if name == "q1":
        return engine.q1(trace[-1].subject)
    if name == "q1_all":
        return engine.q1_all()
    if name == "q2":
        return engine.q2_outputs_of("blast")
    return engine.q3_descendants_of("blast")


class TestPerShardAccounting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("concurrency", CONCURRENCY_MODES)
    @pytest.mark.parametrize("query", ["q1", "q1_all", "q2", "q3"])
    def test_per_shard_sums_to_query_total(
        self, loaded_sims, trace, shards, concurrency, query
    ):
        engine = engine_for(loaded_sims[shards], concurrency)
        m = run_query(engine, query, trace)
        assert m.per_shard, f"{query} produced no per-shard accounting"
        assert sum(ops for _, ops, _ in m.per_shard) == m.operations
        assert sum(nbytes for _, _, nbytes in m.per_shard) == m.bytes_out
        assert len(m.per_shard) <= shards

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("query", ["q1", "q1_all", "q2", "q3"])
    def test_concurrent_identical_to_sequential(
        self, loaded_sims, trace, shards, query
    ):
        sim = loaded_sims[shards]
        seq = run_query(engine_for(sim, 1), query, trace)
        conc_engine = engine_for(sim, 4)
        conc = run_query(conc_engine, query, trace)
        assert conc.refs == seq.refs
        assert conc.operations == seq.operations
        assert conc.bytes_out == seq.bytes_out
        assert conc.per_shard == seq.per_shard


class TestDeterminism:
    def test_concurrent_run_is_reproducible(self, trace):
        def measure():
            sim = Simulation(architecture="s3+simpledb", seed=21, shards=4)
            sim.store_events(trace, collect=False)
            engine = engine_for(sim, 4)
            q2 = engine.q2_outputs_of("blast")
            q3 = engine.q3_descendants_of("blast")
            return q2, q3

        first_q2, first_q3 = measure()
        second_q2, second_q3 = measure()
        for first, second in ((first_q2, second_q2), (first_q3, second_q3)):
            assert first.refs == second.refs
            assert first.operations == second.operations
            assert first.per_shard == second.per_shard
            assert first.latency == second.latency
            assert first.sequential_latency == second.sequential_latency


class TestLatencyModel:
    def test_sequential_engine_latency_is_the_sum(self, loaded_sims, trace):
        m = run_query(engine_for(loaded_sims[4], 1), "q2", trace)
        assert m.latency == pytest.approx(m.sequential_latency)
        assert m.speedup == pytest.approx(1.0)

    def test_critical_path_never_exceeds_sequential(self, loaded_sims, trace):
        for shards in SHARD_COUNTS:
            engine = engine_for(loaded_sims[shards], 4)
            for query in ("q1", "q1_all", "q2", "q3"):
                m = run_query(engine, query, trace)
                assert m.latency <= m.sequential_latency + 1e-12

    def test_scatter_overlap_beats_sequential(self, loaded_sims, trace):
        engine = engine_for(loaded_sims[4], 4)
        m = run_query(engine, "q2", trace)
        # Four independent shard streams on four workers: the critical
        # path must come in well under the one-at-a-time sum.
        assert m.latency < 0.6 * m.sequential_latency

    def test_measurement_usage_prices_like_the_accumulated_streams(
        self, loaded_sims, trace
    ):
        m = run_query(engine_for(loaded_sims[4], 1), "q3", trace)
        # The model is linear in request counts, so pricing the global
        # delta must agree with the per-stream accumulation.
        assert DEFAULT_LATENCY_MODEL.stream_seconds(m.usage) == pytest.approx(
            m.sequential_latency
        )


class TestMakespan:
    def test_one_worker_is_the_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_unbounded_pool_is_the_max(self):
        assert makespan([1.0, 2.0, 3.0], 8) == pytest.approx(3.0)

    def test_bounded_pool_list_schedules_in_order(self):
        assert makespan([3.0, 1.0, 1.0, 1.0], 2) == pytest.approx(3.0)
        assert makespan([1.0, 1.0, 1.0, 1.0], 2) == pytest.approx(2.0)

    def test_empty_wave_is_free(self):
        assert makespan([], 4) == 0.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)


class TestMeterScopes:
    def test_scope_captures_only_own_thread(self):
        account = AWSAccount(seed=3, consistency=ConsistencyConfig.strong())
        account.simpledb.create_domain("d")
        account.simpledb.put_attributes("d", "item", [("type", "file")])
        started = threading.Event()
        proceed = threading.Event()

        def other_thread():
            started.set()
            proceed.wait(timeout=5)
            account.simpledb.get_attributes("d", "item")

        worker = threading.Thread(target=other_thread)
        worker.start()
        started.wait(timeout=5)
        with account.meter.scoped() as scope:
            proceed.set()
            worker.join(timeout=5)
            account.simpledb.get_attributes("d", "item")
        # Both threads issued one GetAttributes, but the scope only saw
        # the one made by the thread that opened it.
        assert scope.usage().request_count(op="GetAttributes") == 1

    def test_nested_scopes_both_credited(self):
        account = AWSAccount(seed=3, consistency=ConsistencyConfig.strong())
        account.simpledb.create_domain("d")
        with account.meter.scoped() as outer:
            account.simpledb.list_domains()
            with account.meter.scoped() as inner:
                account.simpledb.list_domains()
        assert inner.usage().request_count() == 1
        assert outer.usage().request_count() == 2

    def test_scope_sum_equals_global_delta(self):
        account = AWSAccount(seed=3, consistency=ConsistencyConfig.strong())
        account.simpledb.create_domain("d")
        account.simpledb.put_attributes("d", "item", [("type", "file")])
        before = account.meter.snapshot()
        scopes = []
        for _ in range(3):
            with account.meter.scoped() as scope:
                account.simpledb.get_attributes("d", "item")
            scopes.append(scope)
        spent = account.meter.snapshot() - before
        assert sum(s.request_count() for s in scopes) == spent.request_count()
        assert sum(s.transfer_out() for s in scopes) == spent.transfer_out()


class TestKnobs:
    def test_engine_rejects_nonpositive_concurrency(self, strong_account):
        with pytest.raises(ValueError):
            SimpleDBEngine(strong_account, concurrency=0)

    def test_env_default_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_CONCURRENCY", "6")
        assert default_concurrency() == 6
        monkeypatch.setenv("REPRO_QUERY_CONCURRENCY", "not-a-number")
        assert default_concurrency() == 1
        monkeypatch.setenv("REPRO_QUERY_CONCURRENCY", "-2")
        assert default_concurrency() == 1
        monkeypatch.delenv("REPRO_QUERY_CONCURRENCY")
        assert default_concurrency() == 1

    def test_simulation_passes_concurrency_through(self, trace):
        sim = Simulation(architecture="s3+simpledb", seed=7, shards=2,
                         concurrency=3)
        sim.store_events(trace, collect=False)
        engine = sim.query_engine()
        assert engine.concurrency == 3


class TestNonceParsing:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("v0001", 1), ("v0042", 42), ("7", 7), (" v0003 ", 3),
            ("", None), ("v", None), ("vv1", None), ("abc", None),
            ("v12x", None), ("v-1", None), ("1.5", None),
        ],
    )
    def test_parse_nonce(self, raw, expected):
        assert parse_nonce(raw) == expected
