"""Unit tests for the Q1/Q2/Q3 query engines, validated against oracles."""

import pytest

from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.capture import PassSystem
from repro.query.ancestry import AncestryWalker
from repro.query.engine import S3ScanEngine, SimpleDBEngine
from tests.conftest import make_architecture


def blast_like_trace(n_queries=6):
    pas = PassSystem(workload="qtest")
    pas.stage_input("db/nr", b"database")
    for i in range(n_queries):
        with pas.process("blast", argv=f"-q {i}") as blast:
            blast.read("db/nr")
            blast.write(f"out/{i}.hits", f"hits{i}".encode())
            blast.close(f"out/{i}.hits")
        with pas.process("summarize") as post:
            post.read(f"out/{i}.hits")
            post.write(f"out/{i}.summary", f"sum{i}".encode())
            post.close(f"out/{i}.summary")
    return pas.drain_flushes()


@pytest.fixture
def trace6():
    return blast_like_trace()


@pytest.fixture
def oracle(trace6):
    return AncestryWalker(b for e in trace6 for b in e.all_bundles())


class TestS3ScanEngine:
    @pytest.fixture
    def loaded(self, strong_account, trace6):
        store = make_architecture("s3", strong_account)
        store.store_trace(trace6)
        return strong_account

    def test_q2_matches_oracle(self, loaded, oracle):
        engine = S3ScanEngine(loaded)
        measurement = engine.q2_outputs_of("blast")
        assert set(measurement.refs) == oracle.outputs_of("blast")

    def test_q3_matches_oracle(self, loaded, oracle):
        engine = S3ScanEngine(loaded)
        measurement = engine.q3_descendants_of("blast")
        assert set(measurement.refs) == oracle.descendants_of_outputs("blast")

    def test_scan_cost_scales_with_objects(self, loaded):
        engine = S3ScanEngine(loaded)
        measurement = engine.q2_outputs_of("blast")
        # LIST + one HEAD per data object (13 objects here).
        assert measurement.operations >= 13

    def test_q1_all_covers_every_subject(self, loaded, trace6):
        engine = S3ScanEngine(loaded)
        measurement = engine.q1_all()
        file_refs = {e.subject for e in trace6}
        # A1 keeps only current versions: every current file is covered.
        assert file_refs <= set(measurement.refs)


class TestSimpleDBEngine:
    @pytest.fixture
    def loaded(self, strong_account, trace6):
        store = make_architecture("s3+simpledb", strong_account)
        store.store_trace(trace6)
        return strong_account

    def test_q2_matches_oracle(self, loaded, oracle):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q2_outputs_of("blast")
        assert set(measurement.refs) == oracle.outputs_of("blast")

    def test_q2_is_selective(self, loaded, trace6):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q2_outputs_of("blast")
        assert measurement.operations < len(trace6) / 2

    def test_q3_matches_oracle(self, loaded, oracle):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q3_descendants_of("blast")
        assert set(measurement.refs) == oracle.descendants_of_outputs("blast")

    def test_q3_costs_more_than_q2(self, loaded):
        engine = SimpleDBEngine(loaded)
        q2 = engine.q2_outputs_of("blast")
        q3 = engine.q3_descendants_of("blast")
        assert q3.operations > q2.operations  # iterative BFS (§5)

    def test_q1_single_lookup(self, loaded, trace6):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q1(trace6[-1].subject)
        assert measurement.result_count == 1
        assert measurement.operations <= 2

    def test_q1_all_one_lookup_per_item(self, loaded, strong_account):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q1_all()
        n_items = strong_account.simpledb.item_count("pass-prov")
        assert measurement.operations >= n_items  # §5: one query per item

    def test_frontier_batching(self, loaded):
        engine = SimpleDBEngine(loaded, ref_batch=2)
        measurement = engine.q3_descendants_of("blast")
        # Small batches force more queries; results stay correct.
        wide = SimpleDBEngine(loaded, ref_batch=50)
        assert set(measurement.refs) == set(
            wide.q3_descendants_of("blast").refs
        )
        assert measurement.operations > 3

    def test_unknown_program_empty(self, loaded):
        engine = SimpleDBEngine(loaded)
        measurement = engine.q2_outputs_of("nonexistent")
        assert measurement.result_count == 0


class TestEnginesAgree:
    def test_same_results_across_backends(self, trace6):
        """A1's scan and A2's index answer Q2/Q3 identically.

        Each architecture gets its own cloud account — they both claim
        the data bucket's per-object metadata, so sharing one account
        would have A2's nonce-only metadata clobber A1's provenance.
        """
        from repro.aws.account import AWSAccount, ConsistencyConfig

        account_a = AWSAccount(seed=1, consistency=ConsistencyConfig.strong())
        account_b = AWSAccount(seed=2, consistency=ConsistencyConfig.strong())
        make_architecture("s3", account_a).store_trace(trace6)
        make_architecture("s3+simpledb", account_b).store_trace(trace6)
        scan = S3ScanEngine(account_a)
        indexed = SimpleDBEngine(account_b)
        assert set(scan.q2_outputs_of("blast").refs) == set(
            indexed.q2_outputs_of("blast").refs
        )
        assert set(scan.q3_descendants_of("blast").refs) == set(
            indexed.q3_descendants_of("blast").refs
        )


class TestQuoteEscaping:
    """Interpolated literals must survive embedded apostrophes.

    ``o'brien``-style program and path names previously broke (or
    silently mismatched) the bracket/SELECT renderings, because the wire
    languages escape ``'`` as ``''``.
    """

    @staticmethod
    def quoted_trace():
        pas = PassSystem(workload="qtest")
        pas.stage_input("data/o'brien's input.dat", b"raw")
        with pas.process("o'brien", argv="--run") as proc:
            proc.read("data/o'brien's input.dat")
            proc.write("out/o'brien result.dat", b"cooked")
            proc.close("out/o'brien result.dat")
        with pas.process("digest") as post:
            post.read("out/o'brien result.dat")
            post.write("out/final.dat", b"done")
            post.close("out/final.dat")
        return pas.drain_flushes()

    @pytest.fixture
    def loaded(self, strong_account):
        store = make_architecture("s3+simpledb", strong_account)
        store.store_trace(self.quoted_trace())
        return strong_account

    @pytest.mark.parametrize("select_mode", [False, True])
    def test_q2_with_apostrophes(self, loaded, select_mode):
        engine = SimpleDBEngine(loaded, select_mode=select_mode)
        measurement = engine.q2_outputs_of("o'brien")
        assert {ref.path for ref in measurement.refs} == {"out/o'brien result.dat"}

    @pytest.mark.parametrize("select_mode", [False, True])
    def test_q3_closure_crosses_quoted_paths(self, loaded, select_mode):
        # Phase 2 interpolates the *refs* (paths with apostrophes) into
        # the IN list / disjunction: the closure must still reach the
        # plainly named descendant.
        engine = SimpleDBEngine(loaded, select_mode=select_mode)
        measurement = engine.q3_descendants_of("o'brien")
        assert {ref.path for ref in measurement.refs} == {
            "out/o'brien result.dat",
            "out/final.dat",
        }

    def test_quote_literal_rendering(self):
        from repro.aws.sdb_query import quote_literal

        assert quote_literal("blast") == "'blast'"
        assert quote_literal("o'brien") == "'o''brien'"
        assert quote_literal("''") == "''''''"


class TestScanRobustness:
    """A malformed nonce must not abort the whole A1 scan."""

    @pytest.fixture
    def loaded(self, strong_account, trace6):
        store = make_architecture("s3", strong_account)
        store.store_trace(trace6)
        return strong_account

    @staticmethod
    def corrupt_nonce(account, key, nonce):
        from repro.core.base import DATA_BUCKET

        record = account.s3.get(DATA_BUCKET, key)
        metadata = dict(record.metadata)
        metadata["nonce"] = nonce
        account.s3.put(DATA_BUCKET, key, record.bytes(), metadata)
        account.quiesce()

    @pytest.mark.parametrize("bad", ["", "garbage", "v12x", "vv7"])
    def test_scan_skips_and_counts_bad_nonces(self, loaded, bad):
        engine = S3ScanEngine(loaded)
        healthy = {ref.path for ref in engine.q1_all().refs}
        self.corrupt_nonce(loaded, "out/0.hits", bad)
        measurement = engine.q1_all()
        assert engine.skipped_items == 1
        paths = {ref.path for ref in measurement.refs}
        # The scan completes: only bundles solely hosted on the corrupted
        # object's metadata are lost (its subject survives via the
        # ancestors piggybacked on downstream objects).
        assert paths <= healthy
        lost = healthy - paths
        assert lost
        assert lost <= {"out/0.hits", "proc/blast.1000"}

    def test_skip_counter_resets_between_scans(self, loaded):
        engine = S3ScanEngine(loaded)
        self.corrupt_nonce(loaded, "out/0.hits", "garbage")
        engine.scan_bundles()
        assert engine.skipped_items == 1
        self.corrupt_nonce(loaded, "out/0.hits", "v0001")
        engine.scan_bundles()
        assert engine.skipped_items == 0

    @pytest.mark.parametrize("architecture", ["s3", "s3+simpledb"])
    def test_targeted_read_surfaces_malformed_nonce(
        self, strong_account, trace6, architecture
    ):
        # A targeted read cannot skip like a scan: it must raise the
        # domain error, not a bare ValueError from int().
        from repro.errors import ReadCorrectnessViolation

        store = make_architecture(architecture, strong_account)
        store.store_trace(trace6)
        self.corrupt_nonce(strong_account, "out/0.hits", "vv7")
        with pytest.raises(ReadCorrectnessViolation):
            store.read("out/0.hits")


class TestGraphOracleAgreement:
    def test_walker_and_graph_agree(self, trace6):
        walker = AncestryWalker(b for e in trace6 for b in e.all_bundles())
        graph = ProvenanceGraph.from_events(trace6)
        assert walker.outputs_of("blast") == graph.outputs_of("blast")
        assert walker.descendants_of_outputs("blast") == graph.descendants_of_outputs("blast")
