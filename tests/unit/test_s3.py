"""Unit tests for the S3 simulator."""

import pytest

from repro import errors
from repro.aws import billing
from repro.blob import BytesBlob, SyntheticBlob
from repro.units import GB, KB


@pytest.fixture
def s3(strong_account):
    strong_account.s3.create_bucket("b")
    return strong_account.s3


class TestBuckets:
    def test_create_and_list(self, strong_account):
        s3 = strong_account.s3
        s3.create_bucket("alpha")
        s3.create_bucket("beta")
        assert s3.list_buckets() == ["alpha", "beta"]

    def test_duplicate_bucket_rejected(self, s3):
        with pytest.raises(errors.BucketAlreadyExists):
            s3.create_bucket("b")

    def test_missing_bucket_rejected(self, s3):
        with pytest.raises(errors.NoSuchBucket):
            s3.put("nope", "k", b"x")


class TestPutGet:
    def test_roundtrip_with_metadata(self, s3):
        etag = s3.put("b", "key", b"payload", metadata={"type": "file"})
        result = s3.get("b", "key")
        assert result.bytes() == b"payload"
        assert result.metadata == {"type": "file"}
        assert result.etag == etag == BytesBlob(b"payload").md5()

    def test_overwrite_replaces_object_and_metadata(self, s3):
        s3.put("b", "k", b"v1", metadata={"nonce": "v0001"})
        s3.put("b", "k", b"v2", metadata={"nonce": "v0002"})
        result = s3.get("b", "k")
        assert result.bytes() == b"v2"
        assert result.metadata == {"nonce": "v0002"}

    def test_missing_key(self, s3):
        with pytest.raises(errors.NoSuchKey):
            s3.get("b", "missing")

    def test_ranged_get(self, s3):
        s3.put("b", "k", b"0123456789")
        result = s3.get("b", "k", byte_range=(2, 6))
        assert result.bytes() == b"2345"
        assert result.content_length == 4

    def test_invalid_range(self, s3):
        s3.put("b", "k", b"0123")
        with pytest.raises(errors.InvalidRange):
            s3.get("b", "k", byte_range=(2, 100))

    def test_empty_object_rejected(self, s3):
        # "the size of the objects can range from 1 byte to 5GB" (§2.1)
        with pytest.raises(errors.EntityTooSmall):
            s3.put("b", "k", b"")

    def test_oversized_object_rejected(self, s3):
        blob = SyntheticBlob("big", 5 * GB + 1)
        with pytest.raises(errors.EntityTooLarge):
            s3.put("b", "k", blob)

    def test_five_gb_object_accepted(self, s3):
        s3.put("b", "k", SyntheticBlob("max", 5 * GB))
        assert s3.head("b", "k").size == 5 * GB

    def test_metadata_limit_enforced(self, s3):
        # 2 KB of user metadata (§2.1).
        with pytest.raises(errors.MetadataTooLarge):
            s3.put("b", "k", b"x", metadata={"m": "v" * (2 * KB)})

    def test_metadata_at_limit_accepted(self, s3):
        value = "v" * (2 * KB - 1)
        s3.put("b", "k", b"x", metadata={"m": value})
        assert s3.head("b", "k").metadata["m"] == value


class TestHead:
    def test_returns_metadata_not_content(self, s3):
        s3.put("b", "k", b"data", metadata={"a": "1"})
        head = s3.head("b", "k")
        assert head.metadata == {"a": "1"}
        assert head.size == 4
        assert not hasattr(head, "blob")

    def test_head_cheaper_transfer_than_get(self, strong_account):
        s3 = strong_account.s3
        s3.create_bucket("c")
        s3.put("c", "k", b"x" * 10_000, metadata={"m": "tiny"})
        before = strong_account.meter.snapshot()
        s3.head("c", "k")
        head_bytes = (strong_account.meter.snapshot() - before).transfer_out()
        before = strong_account.meter.snapshot()
        s3.get("c", "k")
        get_bytes = (strong_account.meter.snapshot() - before).transfer_out()
        assert head_bytes < get_bytes


class TestCopy:
    def test_copy_preserves_metadata_by_default(self, s3):
        s3.put("b", "src", b"data", metadata={"nonce": "v0001"})
        s3.copy("b", "src", "dst")
        assert s3.get("b", "dst").metadata == {"nonce": "v0001"}
        assert s3.get("b", "dst").bytes() == b"data"

    def test_copy_replace_metadata(self, s3):
        s3.put("b", "src", b"data", metadata={"old": "1"})
        s3.copy("b", "src", "dst", metadata={"nonce": "v0002"})
        assert s3.get("b", "dst").metadata == {"nonce": "v0002"}

    def test_copy_not_billed_for_transfer(self, strong_account):
        """§5: 'the COPY operation is not billed for data transfer'."""
        s3 = strong_account.s3
        s3.create_bucket("c")
        s3.put("c", "src", b"y" * 50_000)
        before = strong_account.meter.snapshot()
        s3.copy("c", "src", "dst")
        delta = strong_account.meter.snapshot() - before
        assert delta.transfer_in() == 0
        assert delta.transfer_out() == 0
        assert delta.request_count(billing.S3, "COPY") == 1

    def test_copy_missing_source(self, s3):
        with pytest.raises(errors.NoSuchKey):
            s3.copy("b", "missing", "dst")


class TestDelete:
    def test_delete_removes(self, s3):
        s3.put("b", "k", b"x")
        s3.delete("b", "k")
        with pytest.raises(errors.NoSuchKey):
            s3.get("b", "k")

    def test_delete_is_idempotent(self, s3):
        s3.delete("b", "never-existed")
        s3.put("b", "k", b"x")
        s3.delete("b", "k")
        s3.delete("b", "k")


class TestList:
    def test_prefix_and_pagination(self, s3):
        for i in range(25):
            s3.put("b", f"data/k{i:03d}", b"x")
        s3.put("b", "other/k", b"x")
        page = s3.list_keys("b", prefix="data/", max_keys=10)
        assert len(page.keys) == 10
        assert page.is_truncated
        page2 = s3.list_keys("b", prefix="data/", marker=page.next_marker, max_keys=100)
        assert len(page2.keys) == 15
        assert not page2.is_truncated

    def test_lexicographic_order(self, s3):
        for key in ("z", "a", "m"):
            s3.put("b", key, b"x")
        assert list(s3.list_keys("b").keys) == ["a", "m", "z"]


class TestStorageAccounting:
    def test_put_overwrite_delete_balance(self, strong_account):
        s3 = strong_account.s3
        meter = strong_account.meter
        s3.create_bucket("c")
        s3.put("c", "k", b"x" * 1000)
        level_after_put = meter.stored_bytes(billing.S3)
        assert level_after_put >= 1000
        s3.put("c", "k", b"y" * 500)
        assert meter.stored_bytes(billing.S3) < level_after_put
        s3.delete("c", "k")
        assert meter.stored_bytes(billing.S3) == 0


class TestEventualConsistency:
    def test_get_after_put_can_be_stale(self, eventual_account):
        """§2.1: a GET right after a PUT may return the older object."""
        s3 = eventual_account.s3
        s3.create_bucket("e")
        s3.put("e", "k", b"old", metadata={"v": "1"})
        eventual_account.quiesce()
        s3.put("e", "k", b"new", metadata={"v": "2"})
        versions = set()
        for _ in range(40):
            versions.add(s3.get("e", "k").metadata["v"])
        assert "1" in versions  # stale reads observed
        eventual_account.quiesce()
        assert s3.get("e", "k").metadata["v"] == "2"

    def test_brand_new_object_can_be_invisible(self, eventual_account):
        s3 = eventual_account.s3
        s3.create_bucket("e")
        s3.put("e", "fresh", b"x")
        missing = 0
        for _ in range(40):
            try:
                s3.get("e", "fresh")
            except errors.NoSuchKey:
                missing += 1
        assert missing > 0
        eventual_account.quiesce()
        assert s3.get("e", "fresh").bytes() == b"x"
