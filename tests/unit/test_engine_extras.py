"""Unit tests for engine extras: SELECT mode, version history, retries."""

import pytest

from repro.core.base import RetryPolicy, ReadResult
from repro.errors import NoSuchKey, ReadCorrectnessViolation
from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr, ObjectRef
from repro.query.engine import SimpleDBEngine
from tests.conftest import make_architecture


def blast_trace(n=4):
    pas = PassSystem(workload="extras")
    pas.stage_input("db/ref", b"reference")
    for i in range(n):
        with pas.process("blast", argv=f"-q {i}") as proc:
            proc.read("db/ref")
            proc.write(f"out/{i}.hits", f"h{i}".encode())
            proc.close(f"out/{i}.hits")
    return pas.drain_flushes()


class TestSelectModeEngine:
    # SELECT is a SimpleDB wire language; the store and the engines stay
    # pinned to the sdb placement whatever the environment selects.
    @pytest.fixture
    def sdb_router(self):
        from repro.sharding import ShardRouter

        return ShardRouter(1, placement="sdb")

    @pytest.fixture
    def loaded(self, strong_account, sdb_router):
        store = make_architecture(
            "s3+simpledb", strong_account, router=sdb_router
        )
        store.store_trace(blast_trace())
        return strong_account

    def test_select_mode_matches_query_mode(self, loaded, sdb_router):
        bracket = SimpleDBEngine(loaded, router=sdb_router)
        select = SimpleDBEngine(loaded, select_mode=True, router=sdb_router)
        assert set(select.q2_outputs_of("blast").refs) == set(
            bracket.q2_outputs_of("blast").refs
        )
        assert set(select.q3_descendants_of("blast").refs) == set(
            bracket.q3_descendants_of("blast").refs
        )

    def test_select_mode_uses_select_requests(self, loaded, sdb_router):
        engine = SimpleDBEngine(loaded, select_mode=True, router=sdb_router)
        measurement = engine.q2_outputs_of("blast")
        assert measurement.usage.request_count("simpledb", "Select") >= 2
        assert measurement.usage.request_count("simpledb", "QueryWithAttributes") == 0


class TestVersionHistory:
    def test_all_versions_recovered(self, strong_account):
        store = make_architecture("s3+simpledb", strong_account)
        pas = PassSystem()
        for i in range(3):
            with pas.process(f"w{i}") as proc:
                proc.write("doc", f"v{i}".encode())
                proc.close("doc")
        store.store_trace(pas.drain_flushes())
        history = store.version_history("doc")
        assert [b.subject.version for b in history] == [1, 2, 3]
        # Version chain intact: v3 links to v2 links to v1.
        prev = [
            r.value for r in history[2].records if r.attribute == Attr.VERSION_OF
        ]
        assert prev == [ObjectRef("doc", 2)]

    def test_unknown_object_empty_history(self, strong_account):
        store = make_architecture("s3+simpledb", strong_account)
        assert store.version_history("ghost") == []


class TestRetryPolicy:
    def test_returns_result_without_retries(self):
        policy = RetryPolicy(attempts=3)
        sentinel = ReadResult(
            subject=ObjectRef("x", 1), data=None, bundle=_bundle(), consistent=True
        )
        assert policy.run(lambda: sentinel) is sentinel

    def test_counts_retries(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise NoSuchKey("not yet")
            return ReadResult(
                subject=ObjectRef("x", 1), data=None, bundle=_bundle(), consistent=True
            )

        result = RetryPolicy(attempts=5).run(flaky)
        assert result.retries == 2

    def test_wait_called_between_attempts(self):
        waits = []

        def failing():
            raise NoSuchKey("never")

        policy = RetryPolicy(attempts=3, wait=lambda: waits.append(1))
        with pytest.raises(ReadCorrectnessViolation):
            policy.run(failing)
        assert len(waits) == 3

    def test_exhaustion_message_mentions_attempts(self):
        with pytest.raises(ReadCorrectnessViolation, match="4 attempts"):
            RetryPolicy(attempts=4).run(_always_missing)


def _always_missing():
    raise NoSuchKey("gone")


def _bundle():
    from repro.passlib.records import ProvenanceBundle

    return ProvenanceBundle(subject=ObjectRef("x", 1), kind="file", records=())
