"""Unit tests: composite hash+range GSIs and the cost-based planner.

What the tentpole adds below the engines, pinned piece by piece:

* **grammar** — ``"hash/range"`` specs parse into composite
  :class:`IndexSpec` forms (``+*`` = ALL projection) and coexist with
  the plain single-key forms;
* **range Queries** — a ``range_condition`` serves exactly the
  partition slice, in range order, billed on the distinct
  ``dynamodb-gsi-range`` key; malformed conditions and plain indexes
  reject it;
* **statistics** — ``describe_table`` histograms (per-key and
  per-range-value entry counts *and exact byte totals*) are maintained
  incrementally through puts and deletes — the planner's cost model
  never samples;
* **planner plumbing** — mode resolution (explicit > environment >
  off) and validation;
* **version_history** — with a fresh composite ``(name, nonce)`` ALL
  index, the revision chain is one paged range Query: identical bundle
  list, strictly fewer metered read operations than the per-version
  probe loop (the regression the satellite demands).
"""

from __future__ import annotations

import pytest

from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.backend import parse_index_specs
from repro.passlib.capture import PassSystem
from repro.query.planner import PLANNER_ENV, resolve_planner
from repro.sim import Simulation


@pytest.fixture
def ddb():
    account = AWSAccount(seed=7, consistency=ConsistencyConfig.strong())
    account.dynamodb.create_table("t")
    account.dynamodb.create_index("t", parse_index_specs("k/r+*")[0])
    for i in range(6):
        account.dynamodb.update_item(
            "t", f"item{i}", [("k", "part"), ("r", f"{i:04d}"), ("payload", "x" * 8)]
        )
    return account


class TestCompositeGrammar:
    def test_hash_range_spec_parses(self):
        composite, plain = parse_index_specs("name/nonce+*,name")
        assert composite.name == "gsi-name-nonce"
        assert composite.key_attribute == "name"
        assert composite.range_attribute == "nonce"
        assert composite.project_all
        assert plain.range_attribute is None

    def test_composite_without_projection_keeps_default_include(self):
        (spec,) = parse_index_specs("type/nonce")
        assert spec.name == "gsi-type-nonce"
        assert spec.range_attribute == "nonce"
        assert not spec.project_all
        assert spec.include == ("type",)


class TestRangeQueries:
    def test_between_serves_the_slice_in_range_order(self, ddb):
        result = ddb.dynamodb.query_index(
            "t", "gsi-k-r", ["part"], range_condition=("between", "0001", "0003")
        )
        assert [name for name, _ in result.entries] == ["item1", "item2", "item3"]
        assert all(attrs["r"] for _, attrs in result.entries)

    @pytest.mark.parametrize(
        "condition,expected",
        [
            ((">=", "0004"), ["item4", "item5"]),
            (("<=", "0000"), ["item0"]),
            ((">", "0004"), ["item5"]),
            (("<", "0001"), ["item0"]),
        ],
    )
    def test_open_conditions(self, ddb, condition, expected):
        result = ddb.dynamodb.query_index(
            "t", "gsi-k-r", ["part"], range_condition=condition
        )
        assert [name for name, _ in result.entries] == expected

    def test_range_query_bills_the_distinct_gsi_range_key(self, ddb):
        before = ddb.meter.snapshot()
        ddb.dynamodb.query_index(
            "t", "gsi-k-r", ["part"], range_condition=(">=", "0002")
        )
        spent = ddb.meter.snapshot() - before
        assert spent.request_count(billing.DDB_GSI_RANGE, "Query") == 1
        assert spent.request_count(billing.DDB_GSI) == 0
        assert spent.read_units(billing.DDB_GSI_RANGE) > 0
        lines = dict(ddb.prices.cost(spent).lines)
        assert lines["dynamodb.gsi.range.read_units"] > 0

    def test_plain_index_rejects_range_condition(self, ddb):
        ddb.dynamodb.create_index("t", parse_index_specs("k")[0])
        with pytest.raises(ValueError, match="no range key"):
            ddb.dynamodb.query_index(
                "t", "gsi-k", ["part"], range_condition=(">=", "0002")
            )

    def test_malformed_conditions_rejected(self, ddb):
        for condition in (("~=", "x"), ("between", "a"), (">=",)):
            with pytest.raises(ValueError):
                ddb.dynamodb.query_index(
                    "t", "gsi-k-r", ["part"], range_condition=condition
                )


class TestIncrementalStatistics:
    def index_stats(self, account):
        return account.dynamodb.describe_table("t")["indexes"]["gsi-k-r"]

    def test_histograms_cover_every_entry_exactly(self, ddb):
        stats = self.index_stats(ddb)
        assert stats["range_attribute"] == "r"
        assert stats["key_counts"] == {"part": 6}
        assert stats["range_counts"] == {f"{i:04d}": 1 for i in range(6)}
        assert stats["key_bytes"]["part"] == stats["entry_bytes"]
        assert sum(stats["range_bytes"].values()) == stats["entry_bytes"]

    def test_deletes_shrink_the_histograms(self, ddb):
        ddb.dynamodb.delete_item("t", "item3")
        stats = self.index_stats(ddb)
        assert stats["key_counts"] == {"part": 5}
        assert "0003" not in stats["range_counts"]
        assert "0003" not in stats["range_bytes"]
        assert stats["key_bytes"]["part"] == stats["entry_bytes"]

    def test_growth_updates_bytes_but_not_counts(self, ddb):
        before = self.index_stats(ddb)
        ddb.dynamodb.update_item("t", "item2", [("payload", "y" * 40)])
        after = self.index_stats(ddb)
        assert after["key_counts"] == before["key_counts"]
        assert after["range_counts"] == before["range_counts"]
        assert after["key_bytes"]["part"] > before["key_bytes"]["part"]
        assert after["range_bytes"]["0002"] > before["range_bytes"]["0002"]

    def test_describe_table_is_metered_as_one_request(self, ddb):
        before = ddb.meter.snapshot()
        ddb.dynamodb.describe_table("t")
        spent = ddb.meter.snapshot() - before
        assert spent.request_count(billing.DDB, "DescribeTable") == 1


class TestPlannerResolution:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "cost")
        assert resolve_planner("first-fit") == "first-fit"
        assert resolve_planner(None) == "cost"

    def test_default_and_disabled_spellings(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert resolve_planner(None) == "off"
        assert resolve_planner("") == "off"
        assert resolve_planner("none") == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown planner mode"):
            resolve_planner("greedy")


def revision_trace(n_versions=5):
    pas = PassSystem(workload="revisions")
    for i in range(n_versions):
        with pas.process("editor", argv=f"--rev {i}") as proc:
            proc.write("doc", f"v{i}".encode())
            proc.close("doc")
    return pas.drain_flushes()


class TestVersionHistoryIndexedPath:
    """The satellite regression: composite (name, nonce) ALL index →
    identical bundle list, strictly fewer metered read operations."""

    def loaded(self, ddb_indexes):
        sim = Simulation(
            architecture="s3+simpledb",
            seed=3,
            shards=1,
            placement="ddb",
            ddb_indexes=ddb_indexes,
        )
        sim.store_events(revision_trace(), collect=False)
        return sim

    def test_indexed_path_identical_and_strictly_cheaper(self):
        indexed_sim = self.loaded("name/nonce+*,name,input")
        probe_sim = self.loaded("name,input")

        def history_with_ops(sim):
            before = sim.account.meter.snapshot()
            history = sim.store.version_history("doc")
            spent = sim.account.meter.snapshot() - before
            return history, spent

        indexed, indexed_spent = history_with_ops(indexed_sim)
        probed, probe_spent = history_with_ops(probe_sim)

        assert [b.subject for b in indexed] == [b.subject for b in probed]
        assert [set(b.records) for b in indexed] == [
            set(b.records) for b in probed
        ]
        assert [b.subject.version for b in indexed] == [1, 2, 3, 4, 5]

        assert indexed_spent.request_count() < probe_spent.request_count()
        # The chain is served off the range index, not per-version reads.
        assert indexed_spent.request_count(billing.DDB_GSI_RANGE, "Query") >= 1
        assert indexed_spent.request_count(billing.DDB, "GetItem") == 0
        assert probe_spent.request_count(billing.DDB, "GetItem") > 5

    def test_scan_fallback_preserved_without_composite_index(self):
        probe_sim = self.loaded("name,input")
        history = probe_sim.store.version_history("doc")
        assert [b.subject.version for b in history] == [1, 2, 3, 4, 5]
