"""Unit tests for PASS objects and the freeze-and-bump versioning rule."""

from repro.passlib.objects import Kind, PassObject
from repro.passlib.records import Attr, ObjectRef
from repro.passlib.versioning import VersionManager


def make_file(name="f"):
    return PassObject(name=name, kind=Kind.FILE)


def make_proc(name="proc/p.1"):
    return PassObject(name=name, kind=Kind.PROCESS)


class TestPassObject:
    def test_pnodes_unique(self):
        assert make_file("a").pnode != make_file("b").pnode

    def test_bump_links_versions(self):
        obj = make_file()
        first = obj.ref
        obj.bump_version()
        assert obj.version == 2
        assert not obj.frozen
        prev_records = [r for r in obj.pending if r.attribute == Attr.VERSION_OF]
        assert [r.value for r in prev_records] == [first]

    def test_history_preserved_for_superseded_versions(self):
        obj = make_file()
        obj.add(Attr.TYPE, "file")
        obj.bump_version()
        bundle = obj.snapshot_bundle(version=1)
        assert bundle.subject == ObjectRef("f", 1)
        assert bundle.attribute_values(Attr.TYPE) == ["file"]

    def test_snapshot_unknown_version_rejected(self):
        obj = make_file()
        try:
            obj.snapshot_bundle(version=5)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_has_input_deduplicates(self):
        obj = make_file()
        ancestor = ObjectRef("proc/x.1", 1)
        assert not obj.has_input(ancestor)
        obj.add_input(ancestor)
        assert obj.has_input(ancestor)


class TestVersionManagerReads:
    def test_read_freezes_source_and_adds_edge(self):
        vm = VersionManager()
        proc, source = make_proc(), make_file("src")
        vm.on_read(proc, source)
        assert source.frozen
        assert proc.has_input(source.ref)

    def test_repeat_read_adds_no_duplicate_edge(self):
        vm = VersionManager()
        proc, source = make_proc(), make_file("src")
        vm.on_read(proc, source)
        vm.on_read(proc, source)
        inputs = [r for r in proc.pending if r.attribute == Attr.INPUT]
        assert len(inputs) == 1

    def test_frozen_reader_bumps_before_new_input(self):
        """A process whose outputs are recorded must not gain inputs
        retroactively — the PASS cycle-avoidance rule."""
        vm = VersionManager()
        proc, out, extra = make_proc(), make_file("out"), make_file("extra")
        vm.on_write(proc, out)        # freezes proc v1
        assert proc.frozen
        vm.on_read(proc, extra)       # must cut proc v2
        assert proc.version == 2
        assert vm.cycles_avoided == 1


class TestVersionManagerWrites:
    def test_write_freezes_writer(self):
        vm = VersionManager()
        proc, target = make_proc(), make_file("t")
        vm.on_write(proc, target)
        assert proc.frozen
        assert target.has_input(proc.ref)

    def test_write_to_read_file_cuts_new_version(self):
        vm = VersionManager()
        reader, writer, shared = make_proc("proc/r.1"), make_proc("proc/w.2"), make_file("shared")
        vm.on_read(reader, shared)    # freezes shared v1
        vm.on_write(writer, shared)   # must create shared v2
        assert shared.version == 2
        assert shared.has_input(writer.ref)

    def test_write_to_flushed_version_cuts_new_version(self):
        vm = VersionManager()
        proc, target = make_proc(), make_file("t")
        vm.on_write(proc, target)
        target.mark_flushed()
        target.frozen = False  # flush without read
        vm.on_write(proc, target)
        assert target.version == 2

    def test_read_write_cycle_avoided(self):
        """The classic provenance cycle: P reads F then writes F."""
        vm = VersionManager()
        proc, f = make_proc(), make_file()
        vm.on_read(proc, f)     # proc depends on f:v1 (frozen)
        vm.on_write(proc, f)    # must produce f:v2 depending on proc
        assert f.version == 2
        assert vm.is_acyclic()

    def test_ping_pong_two_processes_stays_acyclic(self):
        vm = VersionManager()
        p1, p2, f = make_proc("proc/a.1"), make_proc("proc/b.2"), make_file()
        for _ in range(5):
            vm.on_write(p1, f)
            vm.on_read(p2, f)
            vm.on_write(p2, f)
            vm.on_read(p1, f)
        assert vm.is_acyclic()
        assert f.version >= 5


class TestObserve:
    def test_observe_freezes(self):
        vm = VersionManager()
        obj = make_file()
        vm.on_observe(obj)
        assert obj.frozen
