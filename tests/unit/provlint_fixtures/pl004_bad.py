"""PL004 fixture: hand-rolled ':v' versioned-reference surgery."""


def version_of(ref):
    return int(ref.rsplit(":v", 1)[1])  # expect: PL004


def is_versioned(ref):
    return ":v" in ref  # membership alone is not surgery; not flagged


def make_ref(name, version):
    return f"{name}:v{version}"  # expect: PL004


def base_name(ref):
    return ref.partition(":v")[0]  # expect: PL004
