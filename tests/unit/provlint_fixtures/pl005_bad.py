"""PL005 fixture: bare router construction and .router swaps by a consumer."""

from repro.sharding import ShardRouter


class HomegrownEngine:
    def __init__(self, shards):
        self.routing = ShardRouter(shards)  # expect: PL005

    def rebalance(self, handle, target_router):
        handle.router = target_router  # expect: PL005
