"""PL003 fixture: wall-clock and global-random reads in library code."""

import random
import time
from datetime import datetime


def jitter_delay():
    base = time.time()  # expect: PL003
    return base + random.random()  # expect: PL003


def stamp():
    return datetime.now().isoformat()  # expect: PL003


def unseeded():
    return random.Random()  # expect: PL003


def seeded_is_fine(seed):
    # The rng-family idiom: an explicit seed makes the stream reproducible.
    return random.Random(seed).random()
