"""PL001 fixture: every way to get lock discipline wrong at once."""

import threading

from repro.concurrency import synchronized


class BadService:  # expect: PL001
    """@synchronized methods, but ``_lock`` is minted raw, not via new_lock."""

    def __init__(self, meter):
        self._meter = meter
        self._lock = threading.RLock()  # expect: PL001

    @synchronized
    def get_state(self):
        return 0

    def put_object(self, key, blob):  # expect: PL001
        self._state = (key, blob)

    @property
    def approximate_size(self):
        # Exempt: read-only descriptor, no @synchronized required.
        return 0
