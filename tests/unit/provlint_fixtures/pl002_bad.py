"""PL002 fixture: meter touched outside any synchronized/scoped context."""

from repro.concurrency import new_lock, synchronized


class LeakyService:
    def __init__(self, meter):
        self._meter = meter
        self._lock = new_lock()

    @synchronized
    def fine_synchronized(self, nbytes):
        self._meter.record_transfer_in("s3", nbytes)

    def fine_scoped(self, account):
        with account.meter.scoped() as scope:
            self._meter.record_request("s3", "GetObject")
            return scope

    def _fine_private_helper(self):
        # Runs under a synchronized caller's lock; PL001 guards the callers.
        self._meter.record_request("s3", "GetObject")

    def leaky_public(self):
        return self._meter.record_request("s3", "GetObject")  # expect: PL002
