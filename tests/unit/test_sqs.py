"""Unit tests for the SQS simulator."""

import pytest

from repro import errors
from repro.units import KB, SECONDS_PER_DAY


@pytest.fixture
def queue(strong_account):
    url = strong_account.sqs.create_queue("q", visibility_timeout=30.0)
    return strong_account, url


class TestQueueManagement:
    def test_create_returns_url(self, strong_account):
        url = strong_account.sqs.create_queue("wal")
        assert "wal" in url
        assert url in strong_account.sqs.list_queues()

    def test_create_idempotent_same_timeout(self, strong_account):
        first = strong_account.sqs.create_queue("q", visibility_timeout=10.0)
        second = strong_account.sqs.create_queue("q", visibility_timeout=10.0)
        assert first == second

    def test_create_conflicting_timeout_rejected(self, strong_account):
        strong_account.sqs.create_queue("q", visibility_timeout=10.0)
        with pytest.raises(errors.QueueNameExists):
            strong_account.sqs.create_queue("q", visibility_timeout=20.0)

    def test_missing_queue_rejected(self, strong_account):
        with pytest.raises(errors.NoSuchQueue):
            strong_account.sqs.send_message("sqs://queues/ghost", "x")


class TestSendReceive:
    def test_roundtrip(self, queue):
        account, url = queue
        account.sqs.send_message(url, "hello")
        received = account.sqs.receive_message(url, max_messages=10)
        assert [m.body for m in received] == ["hello"]

    def test_message_size_limit(self, queue):
        """§2.3: 'SQS imposes an 8KB limit on the size of the message'."""
        account, url = queue
        with pytest.raises(errors.MessageTooLong):
            account.sqs.send_message(url, "x" * (8 * KB + 1))
        account.sqs.send_message(url, "x" * (8 * KB))

    def test_non_text_rejected(self, queue):
        account, url = queue
        with pytest.raises(errors.InvalidMessageContents):
            account.sqs.send_message(url, b"bytes")  # type: ignore[arg-type]

    def test_receive_batch_limit(self, queue):
        """§2.3: at most 10 messages per ReceiveMessage."""
        account, url = queue
        for i in range(20):
            account.sqs.send_message(url, f"m{i}")
        received = account.sqs.receive_message(url, max_messages=10)
        assert len(received) <= 10
        with pytest.raises(ValueError):
            account.sqs.receive_message(url, max_messages=11)

    def test_sampling_can_miss_messages(self, strong_account):
        """§2.3: a receive samples hosts; repeat to get everything."""
        account = strong_account
        sqs = account.sqs
        # Recreate with partial sampling for this test.
        from repro.aws.sqs import SQSService

        sampled = SQSService(
            account.clock, __import__("random").Random(5), account.meter,
            host_count=8, sample_fraction=0.5,
        )
        url = sampled.create_queue("s")
        for i in range(16):
            sampled.send_message(url, f"m{i}")
        first = sampled.receive_message(url, max_messages=10)
        assert len(first) < 16  # one receive cannot see everything
        # Draining with repeated receives eventually finds all messages.
        seen = {m.message_id for m in first}
        for _ in range(50):
            for message in sampled.receive_message(url, max_messages=10):
                seen.add(message.message_id)
        assert len(seen) == 16


class TestVisibilityTimeout:
    def test_received_message_hidden_until_timeout(self, queue):
        """§2.3: 'SQS blocks the message from other clients'."""
        account, url = queue
        account.sqs.send_message(url, "m")
        first = account.sqs.receive_message(url)
        assert len(first) == 1
        assert account.sqs.receive_message(url, max_messages=10) == []
        account.clock.advance(31.0)
        reappeared = account.sqs.receive_message(url, max_messages=10)
        assert [m.body for m in reappeared] == ["m"]
        assert reappeared[0].receive_count == 2

    def test_delete_before_timeout_removes_forever(self, queue):
        account, url = queue
        account.sqs.send_message(url, "m")
        message = account.sqs.receive_message(url)[0]
        account.sqs.delete_message(url, message.receipt_handle)
        account.clock.advance(100.0)
        assert account.sqs.receive_message(url, max_messages=10) == []
        assert account.sqs.exact_message_count(url) == 0

    def test_per_receive_timeout_override(self, queue):
        account, url = queue
        account.sqs.send_message(url, "m")
        account.sqs.receive_message(url, visibility_timeout=5.0)
        account.clock.advance(6.0)
        assert len(account.sqs.receive_message(url, max_messages=10)) == 1


class TestDeleteMessage:
    def test_stale_handle_rejected_after_redelivery(self, queue):
        account, url = queue
        account.sqs.send_message(url, "m")
        first = account.sqs.receive_message(url)[0]
        account.clock.advance(31.0)
        second = account.sqs.receive_message(url)[0]
        with pytest.raises(errors.ReceiptHandleInvalid):
            account.sqs.delete_message(url, first.receipt_handle)
        account.sqs.delete_message(url, second.receipt_handle)

    def test_delete_already_deleted_succeeds(self, queue):
        account, url = queue
        account.sqs.send_message(url, "m")
        message = account.sqs.receive_message(url)[0]
        account.sqs.delete_message(url, message.receipt_handle)
        account.sqs.delete_message(url, message.receipt_handle)  # idempotent

    def test_malformed_handle_rejected(self, queue):
        account, url = queue
        with pytest.raises(errors.ReceiptHandleInvalid):
            account.sqs.delete_message(url, "not-a-handle")


class TestApproximateCount:
    def test_approximation_near_truth(self, queue):
        account, url = queue
        for i in range(40):
            account.sqs.send_message(url, f"m{i}")
        approx = account.sqs.approximate_number_of_messages(url)
        assert 20 <= approx <= 60  # approximate, not exact (§2.3)

    def test_invisible_messages_not_counted(self, queue):
        account, url = queue
        for i in range(10):
            account.sqs.send_message(url, f"m{i}")
        drained = []
        while True:
            batch = account.sqs.receive_message(url, max_messages=10)
            if not batch:
                break
            drained.extend(batch)
        assert account.sqs.approximate_number_of_messages(url) == 0


class TestRetention:
    def test_messages_older_than_four_days_vanish(self, queue):
        """§4.3: 'SQS automatically deletes messages older than four days'."""
        account, url = queue
        account.sqs.send_message(url, "old")
        account.clock.advance(4 * SECONDS_PER_DAY + 1)
        account.sqs.send_message(url, "fresh")
        bodies = {m.body for m in account.sqs.receive_message(url, max_messages=10)}
        assert bodies == {"fresh"}
        assert account.sqs.messages_expired == 1


class TestConcurrency:
    """Regression for the PL001 finding that SQS was the one metered
    service whose public API ran unsynchronized: hammer one queue from
    many threads and demand exact, race-free accounting."""

    def test_concurrent_senders_lose_no_messages(self, queue):
        import threading

        account, url = queue
        threads_n, per_thread = 8, 25

        def send(worker):
            for i in range(per_thread):
                account.sqs.send_message(url, f"w{worker}-m{i}")

        threads = [threading.Thread(target=send, args=(w,)) for w in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert account.sqs.exact_message_count(url) == threads_n * per_thread
        sent = account.meter.snapshot().request_count("sqs", "SendMessage")
        assert sent == threads_n * per_thread

    def test_concurrent_receivers_never_share_a_message(self, queue):
        import threading

        account, url = queue
        total = 60
        for i in range(total):
            account.sqs.send_message(url, f"m{i}")
        per_thread: list[list[str]] = [[] for _ in range(6)]

        def drain(mine: list):
            while True:
                batch = account.sqs.receive_message(url, max_messages=5)
                if not batch:
                    return
                mine.extend(m.body for m in batch)

        threads = [threading.Thread(target=drain, args=(mine,)) for mine in per_thread]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Visibility timeouts hide a received message from everyone else,
        # so each body is claimed exactly once.
        claimed = [body for mine in per_thread for body in mine]
        assert sorted(claimed) == sorted(f"m{i}" for i in range(total))
