"""Integration: crash/recovery narratives from §3–§4, played end to end."""

import pytest

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET, RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.errors import ClientCrash
from repro.passlib.capture import PassSystem
from repro.units import SECONDS_PER_DAY
from tests.conftest import provenance_oracle_item


def fresh_account(seed=0):
    return AWSAccount(seed=seed, consistency=ConsistencyConfig.strong())


def one_event(name="exp/result.dat", payload=b"results"):
    pas = PassSystem(workload="crash")
    with pas.process("analysis", env={"GRID": "x" * 1500}) as proc:
        proc.write(name, payload)
        return proc.close(name)


class TestPaperScenarioOrphanProvenance:
    """§3: 'a client records provenance and crashes before the data...'"""

    def test_orphan_created_then_scavenged(self):
        account = fresh_account(1)
        plan = FaultPlan().crash_at("a2.store.before_data_put")
        store = S3SimpleDB(account, faults=plan)
        event = one_event()
        with pytest.raises(ClientCrash):
            store.store(event)

        # The damage: provenance without data (on whichever backend the
        # environment placed the provenance store).
        assert provenance_oracle_item(account, event.subject.item_name)
        assert not account.s3.exists_authoritative(DATA_BUCKET, event.subject.name)

        # The paper's 'inelegant' recovery: a full-domain scan.
        recovering = S3SimpleDB(account)
        before = account.meter.snapshot()
        removed = recovering.recover_orphans()
        scan_cost = account.meter.snapshot() - before
        assert event.subject.item_name in removed
        # The scan really does touch the whole provenance store (its
        # inelegance) — on whichever service hosts it.
        from repro.sharding import ShardRouter

        placed = ShardRouter(1).backend_for("pass-prov")
        service = {"sdb": "simpledb", "ddb": "dynamodb"}[placed]
        assert scan_cost.request_count(service) >= 1
        assert provenance_oracle_item(account, event.subject.item_name) is None

    def test_old_version_items_survive_the_scan(self):
        account = fresh_account(2)
        store = S3SimpleDB(account)
        pas = PassSystem()
        for i in (1, 2):
            with pas.process(f"w{i}") as proc:
                proc.write("doc", f"v{i}".encode())
                proc.close("doc")
        store.store_trace(pas.drain_flushes())
        removed = store.recover_orphans()
        assert removed == []  # superseded versions are not orphans


class TestPaperScenarioStaleVersionMasquerade:
    """§3: 'an old version of data interpreted as being a new version'."""

    def test_md5_nonce_prevents_masquerade(self):
        account = AWSAccount(
            seed=3, consistency=ConsistencyConfig.eventual(window=3.0)
        )
        retry = RetryPolicy(attempts=15, wait=lambda: account.clock.advance(0.5))
        store = S3SimpleDB(account, retry=retry)
        pas = PassSystem()
        payloads = {}
        for i in (1, 2, 3):
            with pas.process(f"w{i}") as proc:
                blob = f"content {i}".encode()
                ref = proc.write("doc", blob)
                payloads[ref.version] = blob
                proc.close("doc")
        for event in pas.drain_flushes():
            store.store(event)
            result = store.read("doc")
            # Whatever version EC serves, data and provenance agree.
            assert result.data.read() == payloads[result.subject.version]


class TestWalRecoveryMatrix:
    """Crash the A3 client at every protocol step; recovery must leave
    an all-or-nothing outcome and clean garbage within the 4-day window."""

    CRASH_POINTS = [
        "a3.log.begin",
        "a3.log.after_begin_record",
        "a3.log.after_temp_put",
        "a3.log.after_record",
        "a3.log.before_commit",
        "a3.log.done",
    ]

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_point(self, point):
        account = fresh_account(4)
        plan = FaultPlan().crash_at(point)
        store = S3SimpleDBSQS(account, faults=plan, commit_threshold=100)
        event = one_event()
        with pytest.raises(ClientCrash):
            store.store(event)
        plan.disarm()
        store.restart_commit_daemon().drain()

        data = account.s3.exists_authoritative(DATA_BUCKET, event.subject.name)
        prov = provenance_oracle_item(account, event.subject.item_name) is not None
        assert data == prov, f"non-atomic outcome after crash at {point}"
        committed = point == "a3.log.done"
        assert data == committed

        # Garbage collection: advance past retention, run the cleaner,
        # expire the WAL. No temp objects, no stray messages.
        account.clock.advance(4 * SECONDS_PER_DAY + 1)
        store.cleaner_daemon.run_once()
        account.sqs.receive_message(store.queue_url, max_messages=10)
        keys = account.s3.authoritative_keys(DATA_BUCKET)
        assert not any(k.startswith(".pass/tmp/") for k in keys)
        assert account.sqs.exact_message_count(store.queue_url) == 0

    def test_interrupted_client_resumes_with_new_transactions(self):
        account = fresh_account(5)
        plan = FaultPlan().crash_at("a3.log.before_commit")
        store = S3SimpleDBSQS(account, faults=plan, commit_threshold=100)
        with pytest.raises(ClientCrash):
            store.store(one_event("exp/lost.dat"))
        plan.disarm()
        # The same client host restarts and stores new work fine.
        store.store(one_event("exp/kept.dat", b"fresh"))
        store.pump()
        assert store.read("exp/kept.dat").consistent
        assert not account.s3.exists_authoritative(DATA_BUCKET, "exp/lost.dat")


class TestDaemonCrashEveryPoint:
    DAEMON_POINTS = [
        "daemon.apply.begin",
        "daemon.apply.after_copy",
        "daemon.apply.after_overflow",
        "daemon.apply.after_put_attributes",
        "daemon.apply.after_delete_messages",
        "daemon.apply.done",
    ]

    @pytest.mark.parametrize("point", DAEMON_POINTS)
    def test_daemon_crash_then_replay_converges(self, point):
        account = fresh_account(6)
        daemon_plan = FaultPlan().crash_at(point)
        store = S3SimpleDBSQS(
            account, commit_threshold=100, daemon_faults=daemon_plan
        )
        event = one_event()
        store.store(event)
        with pytest.raises(ClientCrash):
            store.commit_daemon.drain()
        account.clock.advance(300.0)  # visibility timeout expires
        store.restart_commit_daemon().drain()
        result = store.read(event.subject.name)
        assert result.consistent
        assert result.data.md5() == event.data.md5()
        # At-least-once replay left no queue residue...
        assert account.sqs.exact_message_count(store.queue_url) == 0
        # ...and within the retention window the cleaner removes temps.
        account.clock.advance(4 * SECONDS_PER_DAY + 1)
        store.cleaner_daemon.run_once()
        keys = account.s3.authoritative_keys(DATA_BUCKET)
        assert not any(k.startswith(".pass/tmp/") for k in keys)
