"""Integration: an 8-client fleet over a 4-way sharded provenance domain.

The production shape the ROADMAP drives toward: many clients, the WAL
architecture (s3+simpledb+sqs), the provenance domain split across four
SimpleDB shards, a client crash with takeover mid-run — and fleet-wide
scatter-gather queries that must agree with an unsharded control fleet
run over the same traces.
"""

from __future__ import annotations

from repro.fleet import ClientFleet
from repro.passlib.capture import PassSystem

N_CLIENTS = 8
PROGRAM = "ingest"


def lab_pipeline(lab: str, n_chains: int = 2, depth: int = 3):
    """Per-lab traces with real depth: ingest → refine → ... chains.

    Returns a list of whole traces so each chain's causal order is kept
    when the fleet deals them out to different clients.
    """
    traces = []
    for chain in range(n_chains):
        pas = PassSystem(workload=f"{lab}-{chain}")
        pas.stage_input(f"{lab}/raw/{chain}.dat", f"{lab} raw {chain}".encode())
        events = list(pas.drain_flushes())
        previous = f"{lab}/raw/{chain}.dat"
        for stage in range(depth):
            program = PROGRAM if stage == 0 else f"refine{stage}"
            output = f"{lab}/derived/{chain}/{stage:02d}.dat"
            with pas.process(program, argv=f"--stage {stage}") as proc:
                proc.read(previous)
                proc.write(output, f"{lab}:{chain}:{stage}".encode())
                proc.close(output)
            events.extend(pas.drain_flushes())
            previous = output
        traces.append(events)
    return traces


def build_fleet(shards: int, seed: int = 71) -> ClientFleet:
    fleet = ClientFleet(
        n_clients=N_CLIENTS, architecture="s3+simpledb+sqs",
        seed=seed, shards=shards,
    )
    for index in range(4):
        for trace in lab_pipeline(f"lab{index}"):
            # Deterministic spread over the 8 clients (seeded fleet RNG).
            fleet.scatter([trace])
    return fleet


def test_sharded_fleet_with_crash_matches_unsharded_control():
    sharded = build_fleet(shards=4)
    control = build_fleet(shards=1)

    # Crash the busiest client mid-run on the sharded fleet only; its
    # replacement incarnation takes over the backlog.
    victim = max(sorted(sharded.clients), key=lambda n: sharded.clients[n].backlog)
    assert sharded.clients[victim].backlog >= 2
    stored_sharded = sharded.run_round_robin(
        batch=3, crash_schedule={victim: 1}
    )
    stored_control = control.run_round_robin(batch=3)
    assert sharded.clients[victim].crashes == 1
    assert stored_sharded == stored_control  # nothing lost to the crash

    # The sharded store really is spread over 4 domains.
    assert len(sharded.router.domains) == 4
    counts = sharded.router.item_counts(sharded.account)
    assert sum(counts.values()) > 0
    assert sum(1 for count in counts.values() if count) >= 2

    # Fleet-wide Q3: descendants across every lab and every shard must
    # equal the unsharded control run exactly.
    sharded_q3 = sharded.query_engine().q3_descendants_of(PROGRAM)
    control_q3 = control.query_engine().q3_descendants_of(PROGRAM)
    assert set(sharded_q3.refs) == set(control_q3.refs)
    assert sharded_q3.result_count > 0
    # Every lab's chains contribute descendants.
    names = {ref.name for ref in sharded_q3.refs}
    for index in range(4):
        assert any(name.startswith(f"lab{index}/derived/") for name in names)

    # Q2 agrees too, and per-shard accounting covers the whole spend.
    sharded_q2 = sharded.query_engine().q2_outputs_of(PROGRAM)
    control_q2 = control.query_engine().q2_outputs_of(PROGRAM)
    assert set(sharded_q2.refs) == set(control_q2.refs)
    assert sum(ops for _, ops, _ in sharded_q2.per_shard) == sharded_q2.operations


def test_sharded_fleet_reads_any_object_consistently():
    fleet = build_fleet(shards=4, seed=73)
    fleet.run_round_robin(batch=4)
    for index in range(4):
        result = fleet.read(f"lab{index}/derived/0/02.dat")
        assert result.consistent
        assert result.data.read() == f"lab{index}:0:2".encode()
