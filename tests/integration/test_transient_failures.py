"""Integration: transient 503s must not break any store protocol.

AWS returns retryable ServiceUnavailable errors under load; the client
protocols re-issue requests (``call_with_retries``), which is safe
because the simulated services fail *before* mutating state — the same
contract real AWS SDK retries rely on.
"""

import pytest

from repro.core.base import call_with_retries
from repro.errors import ServiceUnavailable
from tests.conftest import make_architecture, tiny_trace


class TestCallWithRetries:
    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ServiceUnavailable("try again")
            return "ok"

        assert call_with_retries(flaky) == "ok"
        assert len(calls) == 3

    def test_exhausts_and_raises(self):
        def always_down():
            raise ServiceUnavailable("down")

        with pytest.raises(ServiceUnavailable):
            call_with_retries(always_down, attempts=3)

    def test_passes_arguments(self):
        assert call_with_retries(lambda a, b=0: a + b, 2, b=3) == 5


@pytest.mark.parametrize("arch", ["s3", "s3+simpledb", "s3+simpledb+sqs"])
class TestStoreSurvivesTransients:
    def test_single_503_absorbed(self, arch, strong_account, trace):
        store = make_architecture(arch, strong_account)
        # One failure on each service the architecture touches.
        strong_account.request_faults.fail_next("s3", "PUT")
        if arch != "s3":
            strong_account.request_faults.fail_next("simpledb", "PutAttributes")
        if arch == "s3+simpledb+sqs":
            strong_account.request_faults.fail_next("sqs", "SendMessage")
        store.store_trace(trace)
        if arch == "s3+simpledb+sqs":
            store.pump()
        result = store.read("data/out.csv")
        assert result.consistent
        assert strong_account.request_faults.failures_injected >= 1

    def test_burst_of_503s_absorbed(self, arch, strong_account):
        store = make_architecture(arch, strong_account)
        strong_account.request_faults.fail_next("s3", "PUT", times=2)
        store.store_trace(tiny_trace())
        if arch == "s3+simpledb+sqs":
            store.pump()
        assert store.read("data/out.csv").consistent


class TestDaemonSurvivesTransients:
    def test_commit_apply_retries_puts(self, strong_account, trace):
        store = make_architecture(
            "s3+simpledb+sqs", strong_account, commit_threshold=1000
        )
        store.store_trace(trace)
        strong_account.request_faults.fail_next(
            "simpledb", "PutAttributes", times=2
        )
        applied = store.commit_daemon.drain()
        assert applied == len(trace)
        assert store.read("data/out.csv").consistent
