"""Integration: the measured Table 1 must equal the paper's Table 1.

This is the headline correctness result — each architecture's property
profile, derived experimentally from crash injection, consistency races,
and live query measurement (see repro.core.properties).
"""

import pytest

from repro.core.properties import (
    PAPER_TABLE1,
    check_atomicity,
    check_causal_ordering,
    check_consistency,
    check_efficient_query,
    evaluate_architecture,
)

ARCHITECTURES = sorted(PAPER_TABLE1)


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_full_row_matches_paper(architecture):
    report = evaluate_architecture(architecture, seed=11)
    assert report.matches_paper(), (
        f"{architecture}: measured {report.as_row()[1:]} vs "
        f"paper {PAPER_TABLE1[architecture]} — {report.details}"
    )


def test_a2_atomicity_violation_is_the_papers_scenario():
    """The A2 failure must be the §4.2 crash: provenance before data."""
    ok, detail = check_atomicity("s3+simpledb", seed=5)
    assert not ok
    assert "prov=True" in detail and "data=False" in detail


def test_a3_read_correctness_restored():
    ok_atomicity, _ = check_atomicity("s3+simpledb+sqs", seed=5)
    ok_consistency, _ = check_consistency("s3+simpledb+sqs", seed=5)
    assert ok_atomicity and ok_consistency


def test_a1_query_inefficiency_quantified():
    ok, detail = check_efficient_query("s3", seed=5)
    assert not ok
    assert "ops" in detail


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_causal_ordering_universal(architecture):
    ok, _ = check_causal_ordering(architecture, seed=9)
    assert ok


def test_read_correctness_composite():
    reports = {
        name: evaluate_architecture(name, seed=13) for name in ARCHITECTURES
    }
    assert reports["s3"].read_correctness
    assert not reports["s3+simpledb"].read_correctness
    assert reports["s3+simpledb+sqs"].read_correctness
