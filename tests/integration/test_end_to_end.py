"""Integration: workload → architecture → queries → analysis, end to end."""

import pytest

from repro.analysis.query_model import shape_check as query_shape
from repro.analysis.storage_model import shape_check as storage_shape
from repro.graph.provgraph import ProvenanceGraph
from repro.query.engine import S3ScanEngine, SimpleDBEngine
from repro.sim import Simulation
from repro.workloads import CombinedWorkload, collect_stats


@pytest.fixture(scope="module")
def combined_events():
    import random

    return list(CombinedWorkload().iter_events(random.Random("e2e"), 0.12))


@pytest.fixture(scope="module")
def oracle(combined_events):
    return ProvenanceGraph.from_events(combined_events)


class TestFullPipeline:
    @pytest.mark.parametrize("arch", ["s3", "s3+simpledb", "s3+simpledb+sqs"])
    def test_store_and_read_back_everything(self, arch, combined_events):
        sim = Simulation(architecture=arch, seed=17)
        sim.store_events(combined_events, collect=False)
        # Every current version must read back consistently.
        latest = {}
        for event in combined_events:
            latest[event.subject.name] = event
        failures = 0
        for name, event in list(latest.items())[:50]:
            result = sim.read(name)
            assert result.consistent
            assert result.subject.version == event.subject.version
            assert result.data.md5() == event.data.md5()
        assert failures == 0

    def test_queries_match_oracle_on_both_backends(self, combined_events, oracle):
        scan_sim = Simulation(architecture="s3", seed=19)
        scan_sim.store_events(combined_events, collect=False)
        sdb_sim = Simulation(architecture="s3+simpledb+sqs", seed=19)
        sdb_sim.store_events(combined_events, collect=False)

        scan = S3ScanEngine(scan_sim.account)
        indexed = SimpleDBEngine(sdb_sim.account)
        for program in ("blast", "softmean", "cc1"):
            expected_q2 = oracle.outputs_of(program)
            assert set(scan.q2_outputs_of(program).refs) == expected_q2
            assert set(indexed.q2_outputs_of(program).refs) == expected_q2
            expected_q3 = oracle.descendants_of_outputs(program)
            assert set(indexed.q3_descendants_of(program).refs) == expected_q3

    def test_query_cost_separation_live(self, combined_events):
        """The Table 3 effect, measured live: scan ≫ indexed.

        Pinned to the paper's SimpleDB placement — Table 3's "indexed"
        column *is* SimpleDB (backend tradeoffs live in the
        multibackend benchmark)."""
        scan_sim = Simulation(architecture="s3", seed=23)
        scan_sim.store_events(combined_events, collect=False)
        sdb_sim = Simulation(architecture="s3+simpledb", seed=23, placement="sdb")
        sdb_sim.store_events(combined_events, collect=False)
        scan_cost = S3ScanEngine(scan_sim.account).q2_outputs_of("blast")
        indexed_cost = sdb_sim.query_engine().q2_outputs_of("blast")
        assert indexed_cost.operations * 10 < scan_cost.operations
        assert indexed_cost.bytes_out * 10 < scan_cost.bytes_out

    def test_analysis_shapes_hold(self, combined_events):
        stats = collect_stats(combined_events)
        assert storage_shape(stats) == []
        from repro.analysis.query_model import analytic_query_table

        assert query_shape(analytic_query_table(stats), min_factor=15) == []

    def test_meter_conservation(self, combined_events):
        """Metered storage sits between the live data set and the whole
        trace: at least every *current* version's bytes (data can only
        be overwritten, never lost), at most raw + provenance (nothing
        conjured)."""
        sim = Simulation(architecture="s3", seed=29)
        sim.store_events(combined_events)
        latest: dict[str, int] = {}
        for event in combined_events:
            latest[event.subject.name] = event.data.size
        live_bytes = sum(latest.values())
        stored = sim.account.meter.stored_bytes("s3")
        assert stored >= live_bytes
        assert stored <= sim.stats.raw_bytes + sim.stats.s3_prov_bytes


class TestEventualConsistencyEndToEnd:
    def test_adversarial_reads_stay_correct(self, combined_events):
        from repro.aws.account import ConsistencyConfig

        sim = Simulation(
            architecture="s3+simpledb+sqs",
            seed=31,
            consistency=ConsistencyConfig.eventual(window=3.0, immediate_fraction=0.3),
        )
        subset = combined_events[:60]
        sim.store_events(subset, collect=False)
        latest = {}
        for event in subset:
            latest[event.subject.name] = event
        for name, event in latest.items():
            result = sim.read(name)
            assert result.consistent
            assert result.data.md5() == event.data.md5()
