"""Integration: a writing client fleet rides through an online migration.

The hardest deployment shape the subsystem must survive: the A3
architecture, where every client logs flush events to its own SQS WAL
and per-client commit daemons apply them *later* — so a transaction can
be logged under the source layout during the copy phase and applied by
the daemon mid-double-write, mid-cutover, or after the migration
finished entirely. Because the daemons share the fleet's RouterHandle,
each apply lands on whatever layout is authoritative at apply time, and
the final store must still match a control fleet that ran natively on
the target layout.
"""

from __future__ import annotations

import random

import pytest

from repro.fleet import ClientFleet
from repro.sharding import authoritative_snapshot
from repro.workloads import CombinedWorkload


def _traces(scale: float, seed: str):
    events = list(CombinedWorkload().iter_events(random.Random(seed), scale))
    return [events[i : i + 6] for i in range(0, len(events), 6)]


def _control(traces, seed, **layout):
    control = ClientFleet(
        n_clients=4, architecture="s3+simpledb+sqs", seed=seed, **layout
    )
    control.scatter(traces)
    control.run_round_robin()
    return control


@pytest.mark.parametrize(
    "source_layout,target_layout",
    [
        (dict(shards=2), dict(shards=4, placement="mixed")),  # grow + flip some
        (dict(shards=4, placement="mixed"), dict(shards=2)),  # shrink + unflip
        (dict(shards=2), dict(shards=2, placement="ddb")),    # pure backend flip
    ],
)
def test_a3_fleet_migrates_under_live_wal_traffic(source_layout, target_layout):
    traces = _traces(0.5, "fleet-live")
    fleet = ClientFleet(
        n_clients=4, architecture="s3+simpledb+sqs", seed=31, **source_layout
    )
    fleet.scatter(traces[: len(traces) // 2])
    fleet.run_round_robin()

    fleet.scatter(traces[len(traces) // 2 :])
    report = fleet.run_live_migration(batch=3, **target_layout)

    assert all(client.backlog == 0 for client in fleet.clients.values())
    assert report.phases_completed[-1] == "drop"
    # One epoch per shard flip, plus the final collapse to the target.
    assert fleet.routing.epoch == report.cutover_epochs + 1

    control = _control(traces, 31, **target_layout)
    assert authoritative_snapshot(
        fleet.account, fleet.router
    ) == authoritative_snapshot(control.account, control.router)


def test_a3_fleet_migration_survives_client_crashes():
    """A client host dying mid-store *during* the migration: its fresh
    incarnation replays the backlog through the shared handle, and the
    WAL idempotency argument holds across the layout change."""
    traces = _traces(0.4, "fleet-crash")
    fleet = ClientFleet(n_clients=3, architecture="s3+simpledb+sqs", seed=32, shards=2)
    fleet.scatter(traces[: len(traces) // 2])
    fleet.run_round_robin()

    fleet.scatter(traces[len(traces) // 2 :])
    migration = fleet.start_migration(shards=3, placement="mixed")
    crashed = False
    while True:
        stored = 0
        for name in sorted(fleet.clients):
            client = fleet.clients[name]
            for _ in range(min(3, client.backlog)):
                client.store.store(client.pending.pop(0))
                client.stored += 1
                stored += 1
        if not crashed and migration.phase == "catch_up":
            fleet.crash_client("client-1")
            crashed = True
        migrating = migration.step()
        if not stored and not migrating:
            break
    fleet.settle()
    assert crashed

    control = _control(traces, 32, shards=3, placement="mixed")
    assert authoritative_snapshot(
        fleet.account, fleet.router
    ) == authoritative_snapshot(control.account, control.router)


def test_queries_stay_correct_in_every_migration_window():
    """Scatter queries issued mid-copy, mid-double-write, and mid-cutover
    must return the same result set a settled deployment would — the
    union-of-sites gather plus source-until-cutover reads guarantee it."""
    traces = _traces(0.5, "fleet-query")
    fleet = ClientFleet(n_clients=3, architecture="s3+simpledb", seed=33, shards=2)
    fleet.scatter(traces)
    fleet.run_round_robin()
    expected = set(fleet.query_engine().q2_outputs_of("blast").refs)

    migration = fleet.start_migration(shards=4, placement="mixed")
    phases_probed = set()
    while migration.step():
        if migration.phase not in phases_probed:
            phases_probed.add(migration.phase)
            assert (
                set(fleet.query_engine().q2_outputs_of("blast").refs) == expected
            ), f"Q2 diverged during the {migration.phase} phase"
    assert {"copy", "catch_up", "cutover", "drop"} <= phases_probed
    assert set(fleet.query_engine().q2_outputs_of("blast").refs) == expected
