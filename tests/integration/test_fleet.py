"""Integration: a fleet of clients sharing one provenance-aware cloud."""

import random

import pytest

from repro.fleet import ClientFleet
from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.capture import PassSystem
from repro.workloads import BlastWorkload, ProvenanceChallengeWorkload


def lab_trace(lab: str, n_files: int = 6):
    pas = PassSystem(workload=lab)
    pas.stage_input(f"{lab}/input.dat", f"{lab} source".encode())
    events = list(pas.drain_flushes())
    for index in range(n_files):
        with pas.process("analyze", argv=f"--part {index}") as proc:
            proc.read(f"{lab}/input.dat")
            proc.write(f"{lab}/out/{index:02d}.dat", f"{lab}:{index}".encode())
            proc.close(f"{lab}/out/{index:02d}.dat")
        events.extend(pas.drain_flushes())
    return events


@pytest.mark.parametrize("architecture", ["s3", "s3+simpledb", "s3+simpledb+sqs"])
class TestInterleavedClients:
    def test_three_labs_share_one_cloud(self, architecture):
        fleet = ClientFleet(n_clients=3, architecture=architecture, seed=41)
        traces = {}
        for index, name in enumerate(sorted(fleet.clients)):
            trace = lab_trace(f"lab{index}")
            traces[name] = trace
            fleet.submit(name, trace)
        stored = fleet.run_round_robin(batch=2)
        assert stored == sum(len(t) for t in traces.values())
        # Every lab's objects readable through any client.
        for index in range(3):
            result = fleet.read(f"lab{index}/out/00.dat")
            assert result.consistent
            assert result.data.read() == f"lab{index}:0".encode()

    def test_cross_lab_queries(self, architecture):
        fleet = ClientFleet(n_clients=2, architecture=architecture, seed=43)
        for index, name in enumerate(sorted(fleet.clients)):
            fleet.submit(name, lab_trace(f"lab{index}", n_files=3))
        fleet.run_round_robin()
        engine = fleet.query_engine()
        outputs = engine.q2_outputs_of("analyze")
        # 'analyze' ran in both labs; the shared domain sees all of it.
        names = {ref.name for ref in outputs.refs}
        assert any(name.startswith("lab0/") for name in names)
        assert any(name.startswith("lab1/") for name in names)
        assert len(outputs.refs) == 6


class TestFleetCrashes:
    def test_client_crash_and_takeover(self):
        fleet = ClientFleet(n_clients=2, architecture="s3+simpledb+sqs", seed=47)
        for index, name in enumerate(sorted(fleet.clients)):
            fleet.submit(name, lab_trace(f"lab{index}", n_files=4))
        stored = fleet.run_round_robin(batch=3, crash_schedule={"client-0": 2})
        assert fleet.clients["client-0"].crashes == 1
        # Nothing lost: the resubmitted backlog all landed.
        for index in range(4):
            result = fleet.read(f"lab0/out/{index:02d}.dat")
            assert result.consistent

    def test_crash_does_not_corrupt_other_clients(self):
        fleet = ClientFleet(n_clients=3, architecture="s3+simpledb+sqs", seed=53)
        for index, name in enumerate(sorted(fleet.clients)):
            fleet.submit(name, lab_trace(f"lab{index}", n_files=3))
        fleet.run_round_robin(batch=1, crash_schedule={"client-1": 1})
        for index in (0, 2):
            result = fleet.read(f"lab{index}/out/02.dat")
            assert result.consistent


class TestFleetWorkloads:
    def test_real_workloads_across_clients(self):
        fleet = ClientFleet(n_clients=2, architecture="s3+simpledb", seed=59)
        blast = list(
            BlastWorkload(n_runs=1, queries_per_run=4).iter_events(
                random.Random("fleet-blast"), 1.0
            )
        )
        fmri = list(
            ProvenanceChallengeWorkload(n_workflows=1).iter_events(
                random.Random("fleet-fmri"), 1.0
            )
        )
        fleet.submit("client-0", blast)
        fleet.submit("client-1", fmri)
        fleet.run_round_robin(batch=4)

        engine = fleet.query_engine()
        oracle = ProvenanceGraph.from_events(blast + fmri)
        assert set(engine.q2_outputs_of("blast").refs) == oracle.outputs_of("blast")
        assert set(engine.q2_outputs_of("softmean").refs) == oracle.outputs_of(
            "softmean"
        )
