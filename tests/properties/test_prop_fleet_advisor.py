"""Property tests: fleet-level crash tolerance and advisor invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.advisor import CacheReplay, ProvenanceAdvisor
from repro.fleet import ClientFleet
from repro.passlib.capture import PassSystem


def lab_trace(lab: str, n_files: int):
    pas = PassSystem(workload=lab)
    pas.stage_input(f"{lab}/in.dat", f"{lab}".encode())
    events = list(pas.drain_flushes())
    for index in range(n_files):
        with pas.process("tool", argv=f"-{index}") as proc:
            proc.read(f"{lab}/in.dat")
            proc.write(f"{lab}/out{index}.dat", f"{lab}:{index}".encode())
            proc.close(f"{lab}/out{index}.dat")
        events.extend(pas.drain_flushes())
    return events


@settings(max_examples=15, deadline=None)
@given(
    n_clients=st.integers(1, 3),
    files_per_client=st.integers(1, 4),
    crash_at=st.integers(0, 3),
    seed=st.integers(0, 200),
)
def test_fleet_crashes_lose_nothing_submitted(
    n_clients, files_per_client, crash_at, seed
):
    """Whatever the interleaving and wherever one client crashes, every
    submitted object is eventually stored and reads back consistently."""
    fleet = ClientFleet(
        n_clients=n_clients, architecture="s3+simpledb+sqs", seed=seed
    )
    for index, name in enumerate(sorted(fleet.clients)):
        fleet.submit(name, lab_trace(f"lab{index}", files_per_client))
    schedule = {"client-0": min(crash_at, files_per_client)}
    fleet.run_round_robin(batch=2, crash_schedule=schedule)
    for index in range(n_clients):
        for file_index in range(files_per_client):
            result = fleet.read(f"lab{index}/out{file_index}.dat")
            assert result.consistent
            assert result.data.read() == f"lab{index}:{file_index}".encode()


@settings(max_examples=25, deadline=None)
@given(
    n_pipelines=st.integers(1, 5),
    outputs_per_stage=st.integers(1, 3),
    capacity=st.integers(1, 16),
)
def test_replay_accounting_invariants(n_pipelines, outputs_per_stage, capacity):
    """hits + misses == accesses; prefetches_used <= issued; the advised
    replay never loses accesses relative to baseline."""
    pas = PassSystem(workload="prop")
    events = []
    for p in range(n_pipelines):
        pas.stage_input(f"p{p}/in.dat", b"x")
        events.extend(pas.drain_flushes())
        with pas.process("stage1") as proc:
            proc.read(f"p{p}/in.dat")
            for o in range(outputs_per_stage):
                proc.write(f"p{p}/mid{o}.dat", b"y")
                proc.close(f"p{p}/mid{o}.dat")
        events.extend(pas.drain_flushes())
        with pas.process("stage2") as proc:
            for o in range(outputs_per_stage):
                proc.read(f"p{p}/mid{o}.dat")
            proc.write(f"p{p}/final.dat", b"z")
            proc.close(f"p{p}/final.dat")
        events.extend(pas.drain_flushes())

    replay = CacheReplay(capacity=capacity)
    base, advised = replay.compare(events)
    for result in (base, advised):
        assert result.hits + result.misses == result.accesses
        assert result.prefetches_used <= max(result.prefetches_issued, result.hits)
    assert base.accesses == advised.accesses
    assert base.prefetches_issued == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500))
def test_advisor_only_suggests_known_objects(seed):
    """Prefetch suggestions always reference objects whose provenance
    was ingested — the advisor never invents keys."""
    rng = random.Random(seed)
    pas = PassSystem(workload="prop")
    known_names = set()
    for index in range(rng.randint(1, 6)):
        with pas.process(f"tool{index}") as proc:
            for o in range(rng.randint(1, 3)):
                path = f"out/{index}_{o}.dat"
                proc.write(path, b"d")
                proc.close(path)
                known_names.add(path)
    events = pas.drain_flushes()
    advisor = ProvenanceAdvisor.from_bundles(
        b for e in events for b in e.all_bundles()
    )
    for event in events:
        for suggestion in advisor.prefetch_for(event.subject):
            assert suggestion.name in known_names
