"""Differential properties of the cost-based query planner.

The planner is an access-path choice, never a semantics change — so the
harness runs every workload in :func:`default_workloads` (at a reduced
scale) over the full shards × placement grid and, per cell, compares
``planner ∈ {off, first-fit, cost}``:

* **identical answers** — Q2/Q3/Q4 return the same result sets in all
  three modes on every cell;
* **cost mode never pays more** — the metered USD over the planned
  phases is ≤ first-fit's on every cell (the hysteresis gate only lets
  the planner deviate from first-fit when its estimate is clearly
  cheaper, so a wrong estimate degrades to the baseline, never below
  it);
* **predictions are honest** — ``predicted_cost`` lands within
  :data:`~repro.query.planner.PREDICTION_ERROR_BOUND` of the metered
  spend on DynamoDB cells, where the statistics are exact per-key byte
  histograms. SimpleDB estimates ride a mean-selectivity model (the
  service exposes no per-predicate histograms), so sdb/mixed cells get
  the looser :data:`SDB_ERROR_BOUND`;
* **off is off** — no planner, no ``predicted_cost``, and no
  statistics consults (the DescribeTable/DomainMetadata control-plane
  requests only planned modes pay).
"""

from __future__ import annotations

import pytest

from repro.bench.matrix import Q4_VERSION_RANGE, default_workloads
from repro.query.planner import PREDICTION_ERROR_BOUND
from repro.sim import Simulation

#: Composite hash+range GSIs on DynamoDB-placed shards — the spec the
#: matrix planner cells declare, so the cost mode has a range path to
#: choose on the version-window query.
DDB_INDEXES = "name/nonce+*,type/nonce,name,input"

#: Keeps every workload row tractable for the grid sweep (the full-size
#: rows are the benchmark's job; the properties are scale-blind).
SCALE = 0.15

MODES = ("off", "first-fit", "cost")

#: SimpleDB selectivity is estimated, not measured — see the module
#: docstring. Twice the DynamoDB bound, pinned by the same sweep.
SDB_ERROR_BOUND = 2 * PREDICTION_ERROR_BOUND

CELLS = [
    (shards, placement)
    for shards in (1, 4)
    for placement in ("sdb", "ddb", "mixed")
]

WORKLOAD_KEYS = [spec.key for spec in default_workloads()]


@pytest.fixture(scope="module")
def traces():
    """workload key → (spec, generated timed events), one trace each."""
    out = {}
    for spec in default_workloads(scale=SCALE):
        rng = spec.rep_rng(7, 0)
        out[spec.key] = (spec, list(spec.workload.iter_timed_events(rng, spec.scale)))
    return out


def run_cell(traces, key, shards, placement, mode):
    spec, timed = traces[key]
    sim = Simulation(
        architecture="s3+simpledb",
        seed=11,
        shards=shards,
        placement=placement,
        ddb_indexes=DDB_INDEXES,
        planner=mode,
    )
    if spec.workload.timed:
        sim.store_timed_events(timed)
    else:
        sim.store_events([event for _, event in timed])
    engine = sim.query_engine()
    before = sim.usage()
    measurements = (
        engine.q2_outputs_of(spec.program),
        engine.q3_descendants_of(spec.program),
        engine.q4_time_range(*Q4_VERSION_RANGE),
    )
    spent = sim.usage() - before
    predicted = [
        m.predicted_cost for m in measurements if m.predicted_cost is not None
    ]
    return {
        "refs": tuple(frozenset(m.refs) for m in measurements),
        "metered_usd": sim.account.prices.cost(spent).total,
        "predicted_usd": sum(predicted) if predicted else None,
        "stats_consults": spent.request_count("dynamodb", "DescribeTable")
        + spent.request_count("simpledb", "DomainMetadata"),
    }


@pytest.mark.parametrize("cell", CELLS, ids=lambda c: f"s{c[0]}-{c[1]}")
@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_planner_differential_properties(traces, key, cell):
    shards, placement = cell
    rows = {mode: run_cell(traces, key, shards, placement, mode) for mode in MODES}

    # Identical answers in every mode.
    assert rows["first-fit"]["refs"] == rows["off"]["refs"]
    assert rows["cost"]["refs"] == rows["off"]["refs"]

    # Cost mode never pays more than the first-fit baseline.
    assert rows["cost"]["metered_usd"] <= rows["first-fit"]["metered_usd"] + 1e-15

    # Honest predictions, with the documented per-backend bound.
    bound = PREDICTION_ERROR_BOUND if placement == "ddb" else SDB_ERROR_BOUND
    for mode in ("first-fit", "cost"):
        row = rows[mode]
        error = abs(row["predicted_usd"] - row["metered_usd"]) / row["metered_usd"]
        assert error <= bound, (mode, error)
        assert row["stats_consults"] > 0

    # Off plans nothing: no prediction, no statistics consults.
    assert rows["off"]["predicted_usd"] is None
    assert rows["off"]["stats_consults"] == 0
