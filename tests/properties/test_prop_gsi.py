"""Differential properties: Scan-served, GSI-served, and SimpleDB-served
queries are the same queries.

The GSI subsystem must be a pure access-path change: for arbitrary
provenance workloads, Q1/Q2/Q3 result sets are identical whether shards
live on SimpleDB, on DynamoDB tables answered by Scan, or on DynamoDB
tables answered by GSI Query — only the metered cost may differ, and the
per-shard/per-backend spend split must still sum exactly to each query's
total. Rebalancing into (and out of) indexed DynamoDB layouts preserves
every item, recreates the indexes on destination tables, reports the
metered backfill, and keeps the drop-emptied-source accounting exact.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.aws import billing
from repro.query.engine import SimpleDBEngine
from repro.sharding import ShardRouter, authoritative_snapshot, rebalance
from repro.sim import Simulation
from tests.properties.test_prop_backend import random_workload

#: (name, placement, ddb_indexes) — the three DynamoDB access regimes
#: plus the SimpleDB baseline. Index specs are pinned explicitly so the
#: comparison holds whatever REPRO_DDB_INDEXES says.
CONFIGS = (
    ("sdb", "sdb", ""),
    ("ddb-scan", "ddb", ""),
    ("ddb-gsi", "ddb", "name,input"),
    ("mixed-gsi", "mixed", "name,input"),
)


def loaded(events, shards, placement, ddb_indexes):
    sim = Simulation(
        architecture="s3+simpledb", seed=99, shards=shards,
        placement=placement, ddb_indexes=ddb_indexes,
    )
    sim.store_events(events, collect=False)
    return sim


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    shards=st.integers(min_value=1, max_value=5),
)
def test_results_identical_across_access_paths(seed, n_stages, shards):
    events = random_workload(random.Random(seed), n_stages)
    sims = {
        name: loaded(events, shards, placement, indexes)
        for name, placement, indexes in CONFIGS
    }
    engines = {name: sim.query_engine() for name, sim in sims.items()}
    subject = events[-1].subject

    baseline = engines["sdb"]
    expected = {
        "q1": set(baseline.q1(subject).refs),
        "q1_all": set(baseline.q1_all().refs),
        "q2": set(baseline.q2_outputs_of("blast").refs),
        "q3": set(baseline.q3_descendants_of("blast").refs),
    }
    for name, engine in engines.items():
        if name == "sdb":
            continue
        assert set(engine.q1(subject).refs) == expected["q1"], name
        assert set(engine.q1_all().refs) == expected["q1_all"], name
        assert set(engine.q2_outputs_of("blast").refs) == expected["q2"], name
        assert set(engine.q3_descendants_of("blast").refs) == expected["q3"], name

    # The GSI regime really is a different access path, not a mirage:
    # the ddb adapter of the indexed placement served index Queries.
    gsi_adapter = sims["ddb-gsi"].account.provenance_backends()["ddb"]
    assert gsi_adapter.gsi_queries > 0
    scan_adapter = sims["ddb-scan"].account.provenance_backends()["ddb"]
    assert scan_adapter.gsi_queries == 0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    shards=st.integers(min_value=2, max_value=5),
    concurrency=st.sampled_from([1, 4]),
)
def test_gsi_spend_split_sums_exactly(seed, n_stages, shards, concurrency):
    """per_shard and per_backend must absorb GSI request/transfer spend
    exactly — in both dispatch modes — so the query total never leaks."""
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded(events, shards, "mixed", "name,input")
    engine = SimpleDBEngine(
        sim.account, router=sim.store.router, concurrency=concurrency
    )
    for measurement in (
        engine.q2_outputs_of("blast"),
        engine.q3_descendants_of("blast"),
        engine.q1_all(),
    ):
        assert (
            sum(ops for _, ops, _ in measurement.per_shard)
            == measurement.operations
        )
        assert (
            sum(ops for _, ops, _ in measurement.per_backend)
            == measurement.operations
        )
        assert (
            sum(nbytes for _, _, nbytes in measurement.per_shard)
            == measurement.bytes_out
        )
        assert (
            sum(nbytes for _, _, nbytes in measurement.per_backend)
            == measurement.bytes_out
        )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    n_before=st.integers(min_value=1, max_value=4),
    n_after=st.integers(min_value=1, max_value=4),
)
def test_rebalance_preserves_items_and_recreates_indexes(
    seed, n_stages, n_before, n_after
):
    """Grow/shrink between indexed DynamoDB layouts: every item lands,
    every destination table carries the declared indexes (converged to
    the base data), emptied sources are dropped, and the index storage
    ledger never leaks."""
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded(events, n_before, "ddb", "name,input")
    account = sim.account
    source = sim.store.router
    target = ShardRouter(n_after, placement="ddb")

    before = authoritative_snapshot(account, source)
    account.quiesce()
    report = rebalance(account, source, target)
    assert authoritative_snapshot(account, target) == before
    assert report.items_scanned == len(before)

    # Destinations carry the indexes, and each index agrees with its
    # base table item for item.
    assert set(account.dynamodb.list_tables()) == set(target.domains)
    for domain in target.domains:
        specs = {spec.name for spec in account.dynamodb.list_indexes(domain)}
        assert specs == {"gsi-name", "gsi-input"}
        entries = account.dynamodb.authoritative_index_entries(
            domain, "gsi-input"
        )
        expected = {}
        for item_name in account.dynamodb.authoritative_item_names(domain):
            state = account.dynamodb.authoritative_item(domain, item_name)
            for value in state.get("input", ()):
                expected[(value, item_name)] = {
                    a: v for a, v in state.items() if a in ("input", "type")
                }
        assert entries == expected

    if report.items_moved:
        # Moving items into indexed tables costs metered index writes.
        assert report.index_write_units > 0

    # Queries through the migrated layout are GSI-served and correct.
    migrated = SimpleDBEngine(account, router=target)
    control = loaded(events, 1, "sdb", "").query_engine()
    assert set(migrated.q2_outputs_of("blast").refs) == set(
        control.q2_outputs_of("blast").refs
    )


def test_full_flip_round_trip_with_indexes_zeroes_the_ledger():
    """sdb→ddb(+GSIs)→sdb: every item crosses twice, destination tables
    get indexes (reported as backfill cost), and after the return trip
    both the DDB and the GSI storage ledgers read exactly zero."""
    events = random_workload(random.Random(21), 6)
    sim = loaded(events, 3, "sdb", "name,input")
    account = sim.account
    source = sim.store.router
    onto_ddb = ShardRouter(3, placement="ddb")
    before = authoritative_snapshot(account, source)
    account.quiesce()

    outbound = rebalance(account, source, onto_ddb)
    assert outbound.cross_backend_moves == len(before)
    assert outbound.index_write_units > 0
    assert account.simpledb.list_domains() == []
    for domain in onto_ddb.domains:
        assert {s.name for s in account.dynamodb.list_indexes(domain)} == {
            "gsi-name", "gsi-input",
        }

    back = rebalance(account, onto_ddb, ShardRouter(3, placement="sdb"))
    assert back.cross_backend_moves == len(before)
    assert authoritative_snapshot(
        account, ShardRouter(3, placement="sdb")
    ) == before
    # Dropping the indexed tables freed every stored byte — base and
    # index alike (the drop-emptied-source accounting invariant).
    assert account.dynamodb.list_tables() == []
    assert account.meter.stored_bytes(billing.DDB) == 0
    assert account.meter.stored_bytes(billing.DDB_GSI) == 0


def test_rebalance_backfills_preexisting_unindexed_tables():
    """Migrating a scan-only DynamoDB layout under an account that now
    declares indexes backfills the surviving tables at provision time —
    the metered path an operator takes to upgrade a live deployment."""
    events = random_workload(random.Random(34), 5)
    scan_sim = loaded(events, 2, "ddb", "")
    account = scan_sim.account
    # Same cloud, new adapter policy: declare indexes, then rebalance
    # the existing layout onto itself grown by one shard.
    backends = dict(account.provenance_backends())
    from repro.aws.backend import DynamoBackend

    backends["ddb"] = DynamoBackend(account.dynamodb, index_specs="name,input")
    source = scan_sim.store.router
    target = ShardRouter(3, placement="ddb")
    before = authoritative_snapshot(backends, source)
    account.quiesce()
    report = rebalance(backends, source, target)
    # Backfill units were consumed by provisioning the indexes over the
    # surviving populated tables (the meter is unavailable through a
    # bare mapping, so the report field stays 0.0 — the adapter records
    # what provision() spent instead).
    assert backends["ddb"].index_backfill_units > 0
    assert report.items_scanned == len(before)
    assert authoritative_snapshot(backends, target) == before
    for domain in target.domains:
        assert {s.name for s in account.dynamodb.list_indexes(domain)} == {
            "gsi-name", "gsi-input",
        }
