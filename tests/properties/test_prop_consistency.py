"""Property tests: the eventual-consistency engine converges correctly."""

import random

from hypothesis import given, settings, strategies as st

from repro.aws.consistency import DelayModel, ReplicaSet
from repro.clock import SimClock

keys = st.text(alphabet="abcdef", min_size=1, max_size=3)
ops = st.lists(
    st.tuples(st.sampled_from(["write", "delete"]), keys, st.integers(0, 99)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, seed=st.integers(0, 10_000), window=st.floats(0.0, 5.0))
def test_quiesced_replicas_equal_sequential_model(ops, seed, window):
    """After quiescing, every replica equals a plain-dict replay."""
    clock = SimClock()
    replicas = ReplicaSet(
        "prop",
        clock,
        random.Random(seed),
        n_replicas=3,
        delays=DelayModel(max_delay=window, immediate_fraction=0.3),
    )
    model: dict[str, int] = {}
    for op, key, value in ops:
        if op == "write":
            replicas.write(key, value)
            model[key] = value
        else:
            replicas.delete(key)
            model.pop(key, None)
    clock.run_until_idle()
    assert replicas.is_converged()
    assert dict(replicas.authoritative_items()) == model
    for key, value in model.items():
        assert replicas.read(key) == value


@settings(max_examples=60, deadline=None)
@given(ops=ops, seed=st.integers(0, 10_000))
def test_reads_never_invent_values(ops, seed):
    """A read returns something that was written for that key (or None):
    eventual consistency serves stale values, never foreign ones."""
    clock = SimClock()
    replicas = ReplicaSet(
        "prop",
        clock,
        random.Random(seed),
        n_replicas=3,
        delays=DelayModel(max_delay=3.0, immediate_fraction=0.2),
    )
    written: dict[str, set[int]] = {}
    for op, key, value in ops:
        if op == "write":
            replicas.write(key, value)
            written.setdefault(key, set()).add(value)
        else:
            replicas.delete(key)
        observed = replicas.read(key)
        assert observed is None or observed in written.get(key, set())


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 99), min_size=2, max_size=10),
    seed=st.integers(0, 10_000),
)
def test_last_writer_wins_always(values, seed):
    """Whatever the propagation delays, convergence picks the last write."""
    clock = SimClock()
    replicas = ReplicaSet(
        "prop",
        clock,
        random.Random(seed),
        n_replicas=4,
        delays=DelayModel(max_delay=10.0),
    )
    for value in values:
        replicas.write("k", value)
    clock.run_until_idle()
    assert replicas.read("k") == values[-1]
