"""Property tests: SimpleDB query-language algebra and SQS delivery."""

import random

from hypothesis import given, settings, strategies as st

from repro.aws.sdb_query import parse_query, run_query

attr_names = st.sampled_from(["type", "name", "input", "ver"])
attr_values = st.text(alphabet="abcd01", min_size=1, max_size=4)

items_strategy = st.dictionaries(
    keys=st.text(alphabet="ghij", min_size=1, max_size=4),
    values=st.dictionaries(
        keys=attr_names,
        values=st.lists(attr_values, min_size=1, max_size=3).map(tuple),
        min_size=0,
        max_size=4,
    ),
    min_size=0,
    max_size=12,
).map(lambda d: sorted(d.items()))


def names(items, expression):
    return {n for n, _ in run_query(items, parse_query(expression))}


@st.composite
def predicates(draw):
    attribute = draw(attr_names)
    op = draw(st.sampled_from(["=", "!=", "<", ">", "starts-with"]))
    value = draw(attr_values)
    return f"['{attribute}' {op} '{value}']"


class TestSetAlgebra:
    @settings(max_examples=80, deadline=None)
    @given(items=items_strategy, p=predicates(), q=predicates())
    def test_union_is_set_union(self, items, p, q):
        assert names(items, f"{p} union {q}") == names(items, p) | names(items, q)

    @settings(max_examples=80, deadline=None)
    @given(items=items_strategy, p=predicates(), q=predicates())
    def test_intersection_is_set_intersection(self, items, p, q):
        assert names(items, f"{p} intersection {q}") == (
            names(items, p) & names(items, q)
        )

    @settings(max_examples=80, deadline=None)
    @given(items=items_strategy, p=predicates())
    def test_not_is_complement(self, items, p):
        universe = {n for n, _ in items}
        assert names(items, f"not {p}") == universe - names(items, p)

    @settings(max_examples=60, deadline=None)
    @given(items=items_strategy, p=predicates())
    def test_idempotent_union(self, items, p):
        assert names(items, f"{p} union {p}") == names(items, p)

    @settings(max_examples=60, deadline=None)
    @given(items=items_strategy, p=predicates(), q=predicates())
    def test_parentheses_associate(self, items, p, q):
        r = "['ver' = '1']"
        left = names(items, f"({p} union {q}) union {r}")
        right = names(items, f"{p} union ({q} union {r})")
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(items=items_strategy, p=predicates())
    def test_equality_matches_manual_scan(self, items, p):
        # Cross-check '=' predicates against a hand evaluation.
        if "=" not in p or "!=" in p or "starts-with" in p:
            return
        attribute = p.split("'")[1]
        value = p.split("'")[3]
        expected = {
            n for n, attrs in items if value in attrs.get(attribute, ())
        }
        assert names(items, p) == expected


class TestSqsDeliveryProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n_messages=st.integers(1, 30),
        seed=st.integers(0, 1000),
        sample_fraction=st.floats(0.3, 1.0),
    )
    def test_no_loss_no_duplication_in_storage(
        self, n_messages, seed, sample_fraction
    ):
        """Every message is eventually received; deleting it once removes
        exactly one message; nothing is duplicated in storage."""
        from repro.aws.billing import Meter
        from repro.aws.sqs import SQSService
        from repro.clock import SimClock

        clock = SimClock()
        sqs = SQSService(
            clock,
            random.Random(seed),
            Meter(clock),
            host_count=6,
            sample_fraction=sample_fraction,
        )
        url = sqs.create_queue("prop", visibility_timeout=5.0)
        sent = {sqs.send_message(url, f"m{i}") for i in range(n_messages)}
        seen: dict[str, str] = {}
        for _ in range(300):
            if len(seen) == n_messages:
                break
            for message in sqs.receive_message(url, max_messages=10):
                seen.setdefault(message.message_id, message.receipt_handle)
            clock.advance(6.0)  # let visibility lapse for re-receives
        assert set(seen) == sent
        # Redelivery may supersede old handles: re-receive and delete.
        clock.advance(6.0)
        deleted: set[str] = set()
        for _ in range(300):
            if len(deleted) == n_messages:
                break
            for message in sqs.receive_message(url, max_messages=10):
                sqs.delete_message(url, message.receipt_handle)
                deleted.add(message.message_id)
            clock.advance(6.0)
        assert deleted == sent
        assert sqs.exact_message_count(url) == 0
