"""Property tests: online migration loses and duplicates zero items.

The oracle is a *control deployment*: a second simulation that stores
the exact same flush events natively under the target layout. Whatever
the migration path did — bulk copy, WAL capture and replay,
double-writes, per-shard cutover, verified drop, and any crash/re-run
in between — the migrated cloud's authoritative snapshot must equal the
control's, item for item and value for value.

Hammered dimensions:

* arbitrary multi-stage workloads (the sharding suite's generator);
* arbitrary source/target shard counts and backend placements
  (grow, shrink, and sdb↔ddb flips);
* client writes interleaved into *every* phase of the migration (one
  store per state-machine step — the copy, double-write, and catch-up
  windows all see fresh writes);
* a crash after any number of steps (the migrator dies, routing
  reverts to the source) followed by a from-scratch re-run;
* an adversarial eventually consistent cloud, where the copy scan reads
  lagging replicas and the drop-phase verification must repair what
  the scan missed before destroying the source.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.aws.account import ConsistencyConfig
from repro.passlib.capture import PassSystem
from repro.sharding import ShardRouter, authoritative_snapshot
from repro.sim import Simulation

PLACEMENTS = ("sdb", "ddb", "mixed")


def random_workload(rng: random.Random, n_stages: int):
    """A random multi-stage pipeline (same shape as the sharding suite)."""
    pas = PassSystem(workload="prop-migration")
    pas.stage_input("in/seed.dat", b"seed")
    outputs = ["in/seed.dat"]
    for stage in range(n_stages):
        program = rng.choice(["blast", "align", "merge"])
        with pas.process(program, argv=f"--stage {stage}") as proc:
            for source in rng.sample(outputs, k=min(len(outputs), 1 + rng.randrange(2))):
                proc.read(source)
            path = f"out/{rng.choice('abc')}/{stage:02d}.dat"
            proc.write(path, f"{program}:{stage}".encode())
            proc.close(path)
            outputs.append(path)
    return list(pas.drain_flushes())


def migrated_equals_control(
    events,
    source_shards,
    source_placement,
    target_shards,
    target_placement,
    crash_step,
    seed,
    consistency=None,
):
    """Run the live-migration scenario and diff against the control."""
    sim = Simulation(
        architecture="s3+simpledb",
        seed=seed,
        shards=source_shards,
        placement=source_placement,
        consistency=consistency,
    )
    preloaded = len(events) // 2
    sim.store_events(events[:preloaded], collect=False)
    target = ShardRouter(target_shards, placement=target_placement)
    index = preloaded

    def store_one():
        nonlocal index
        if index < len(events):
            sim.store.store(events[index])
            index += 1

    migration = sim.start_migration(router=target)
    steps = 0
    crashed = False
    while True:
        store_one()
        if not crashed and crash_step is not None and steps == crash_step:
            # The migrator host dies: its in-memory state is gone and
            # routing reverts to the source layout mid-protocol.
            sim.store.routing.abort_migration()
            crashed = True
            migration = sim.start_migration(router=target)
        if not migration.step():
            break
        steps += 1
    while index < len(events):
        sim.store.store(events[index])
        index += 1
    sim.settle()

    control = Simulation(
        architecture="s3+simpledb",
        seed=seed,
        shards=target_shards,
        placement=target_placement,
        consistency=consistency,
    )
    control.store_events(events, collect=False)

    migrated = authoritative_snapshot(sim.account, sim.store.router)
    oracle = authoritative_snapshot(control.account, control.store.router)
    assert migrated == oracle, (
        f"migrated layout diverged: {len(migrated)} items vs "
        f"{len(oracle)} in the control "
        f"(missing={sorted(set(oracle) - set(migrated))[:3]}, "
        f"extra={sorted(set(migrated) - set(oracle))[:3]})"
    )
    assert sim.store.routing.current.domains == target.domains
    return sim


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=3),
    st.sampled_from(PLACEMENTS),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(PLACEMENTS),
)
def test_live_migration_preserves_exact_item_union(
    seed, n_stages, source_shards, source_placement, target_shards, target_placement
):
    events = random_workload(random.Random(seed), n_stages)
    migrated_equals_control(
        events,
        source_shards,
        source_placement,
        target_shards,
        target_placement,
        crash_step=None,
        seed=seed % 1000,
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=1, max_value=3),
    st.sampled_from(PLACEMENTS),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(PLACEMENTS),
    st.integers(min_value=0, max_value=12),
)
def test_crash_at_any_phase_then_rerun_converges(
    seed,
    n_stages,
    source_shards,
    source_placement,
    target_shards,
    target_placement,
    crash_step,
):
    """The satellite acceptance: kill the migrator after any number of
    steps — the crash can land in copy, double-write, catch-up, cutover
    or drop — re-run from scratch, and the exact item union survives."""
    events = random_workload(random.Random(seed), n_stages)
    migrated_equals_control(
        events,
        source_shards,
        source_placement,
        target_shards,
        target_placement,
        crash_step=crash_step,
        seed=seed % 1000,
    )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
def test_migration_converges_under_eventual_consistency(
    seed, n_stages, source_shards, target_shards
):
    """The copy scan reads lagging replicas; whatever it misses, the
    drop-phase verification repairs from the authoritative state before
    the source is destroyed — no quiescence required."""
    events = random_workload(random.Random(seed), n_stages)
    migrated_equals_control(
        events,
        source_shards,
        "sdb",
        target_shards,
        "mixed",
        crash_step=None,
        seed=seed % 1000,
        consistency=ConsistencyConfig.eventual(window=2.0, immediate_fraction=0.3),
    )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=4, max_value=8),
)
def test_migration_overhead_accounting_is_exact(seed, n_stages):
    """Per-category usages are disjoint scoped captures: their request
    counts sum to the overhead total, and the live window's counters
    match what the protocol actually mirrored/replayed."""
    events = random_workload(random.Random(seed), n_stages)
    sim2 = Simulation(architecture="s3+simpledb", seed=seed % 997, shards=2)
    sim2.store_events(events[: len(events) // 2], collect=False)
    migration = sim2.start_migration(shards=3, placement="mixed")
    index = len(events) // 2
    while True:
        if index < len(events):
            sim2.store.store(events[index])
            index += 1
        if not migration.step():
            break
    report = migration.report
    total = report.overhead_usage().request_count()
    assert total == sum(
        usage.request_count()
        for usage in (
            report.copy_usage,
            report.double_write_usage,
            report.catch_up_usage,
            report.verification_usage,
            report.drop_usage,
        )
    )
    assert report.replayed_records == report.wal_records
    assert report.cutover_epochs == 3
