"""Differential properties of the read-cache tier.

The cache must be invisible when off (byte-identical meter in every
disabled spelling, zero ``elasticache`` spend, no bill lines) and an
access-path change only when on: identical result sets, repeated Q2/Q3
collapsing to zero backend reads, per-tier spend splits that sum
exactly, and — the staleness contract — no served entry ever older than
the declared bound, even with writers invalidating concurrently under a
threaded dispatcher.
"""

from __future__ import annotations

import random
import threading

from hypothesis import given, settings, strategies as st

from repro.aws.account import ConsistencyConfig
from repro.aws.billing import ELASTICACHE
from repro.passlib.capture import PassSystem
from repro.sim import Simulation
from tests.properties.test_prop_backend import random_workload


def loaded(events, shards, read_cache, seed=99, **kwargs):
    sim = Simulation(
        architecture="s3+simpledb", seed=seed, shards=shards,
        read_cache=read_cache, **kwargs,
    )
    sim.store_events(events, collect=False)
    return sim


def run_queries(sim, subject):
    engine = sim.query_engine()
    return {
        "q1": set(engine.q1(subject).refs),
        "q2": set(engine.q2_outputs_of("blast").refs),
        "q3": set(engine.q3_descendants_of("blast").refs),
    }


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
)
def test_cache_off_is_byte_identical_on_the_meter(seed, n_stages):
    """Every disabled spelling produces the same meter bytes and never
    touches the ``elasticache`` key — having the tier in the build costs
    nothing until the knob turns it on."""
    events = random_workload(random.Random(seed), n_stages)
    usages = []
    for spec in ("off", "", False):
        sim = loaded(events, 2, spec)
        run_queries(sim, events[-1].subject)
        usages.append(sim.account.meter.snapshot())
    assert usages[0] == usages[1] == usages[2]
    assert usages[0].request_count(ELASTICACHE) == 0
    assert usages[0].transfer_in(ELASTICACHE) == 0
    assert not any(
        label.startswith("elasticache.") and amount
        for label, amount in sim.account.prices.cost(usages[0]).lines
    )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    shards=st.integers(min_value=1, max_value=4),
)
def test_cached_results_identical_and_repeats_collapse(seed, n_stages, shards):
    """Cache on is a pure access-path change: identical Q1/Q2/Q3 result
    sets, and a repeated Q2/Q3 answers from memoised closures with zero
    backend operations — including from a freshly built engine."""
    events = random_workload(random.Random(seed), n_stages)
    subject = events[-1].subject
    off = loaded(events, shards, "off")
    on = loaded(events, shards, "on")
    assert run_queries(on, subject) == run_queries(off, subject)

    engine = on.query_engine()  # fresh engine: memos belong to the account
    for measurement in (
        engine.q2_outputs_of("blast"),
        engine.q3_descendants_of("blast"),
    ):
        assert measurement.operations == 0
        assert measurement.cache_operations > 0
        assert measurement.per_shard == ()
        assert [d for d, _, _ in measurement.per_shard_cache] == ["elasticache"]
    cache = on.account.read_cache
    assert cache.hits > 0
    assert cache.max_served_age <= cache.staleness_bound

    # A provenance write invalidates: the next Q2 pays backend reads again.
    pas = PassSystem(workload="invalidator")
    pas.stage_input("in/fresh.dat", b"fresh")
    with pas.process("blast", argv="--again") as proc:
        proc.read("in/fresh.dat")
        proc.write("out/fresh-hit.dat", b"h")
        proc.close("out/fresh-hit.dat")
    on.store_events(pas.drain_flushes(), collect=False)
    assert cache.invalidations > 0
    rerun = on.query_engine().q2_outputs_of("blast")
    assert rerun.operations > 0  # memos were superseded, not reused
    assert rerun.refs == on.query_engine().q2_outputs_of("blast").refs


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    shards=st.integers(min_value=2, max_value=4),
    concurrency=st.sampled_from([1, 4]),
)
def test_per_tier_spend_split_sums_exactly(seed, n_stages, shards, concurrency):
    """Backend and cache tiers partition the global meter delta exactly:
    ``operations``/``per_shard`` count backend requests only, the
    ``cache_*`` fields count the rest, and their sum is the raw delta —
    in both dispatch modes, on first runs and repeats."""
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded(events, shards, "on", concurrency=concurrency)
    subject = events[-1].subject
    engine = sim.query_engine()
    measurements = [
        engine.q1(subject),
        engine.q2_outputs_of("blast"),
        engine.q3_descendants_of("blast"),
        engine.q2_outputs_of("blast"),  # repeat: memo-served
        engine.q1(subject),             # repeat: item-cache-served
    ]
    for m in measurements:
        assert sum(ops for _, ops, _ in m.per_shard) == m.operations
        assert sum(n for _, _, n in m.per_shard) == m.bytes_out
        assert sum(ops for _, ops, _ in m.per_shard_cache) == m.cache_operations
        assert sum(n for _, _, n in m.per_shard_cache) == m.cache_bytes_out
        assert m.usage.request_count() == m.operations + m.cache_operations
        assert m.usage.request_count(ELASTICACHE) == m.cache_operations

    # Attribution lands on the right label: the repeated Q1's cache hit
    # is credited to the shard that owns the subject, the repeated Q2's
    # memo consult to the phase-level "elasticache" label.
    owning = engine.routing.read_site(subject.path).domain
    repeat_q1 = measurements[4]
    assert repeat_q1.operations == 0
    assert [domain for domain, _, _ in repeat_q1.per_shard_cache] == [owning]
    repeat_q2 = measurements[3]
    assert [d for d, _, _ in repeat_q2.per_shard_cache] == ["elasticache"]


def test_staleness_bound_honoured_across_ageing_and_writes():
    """Entries age out at the declared bound; served ages never exceed
    it; after writes land and replicas converge, cached queries agree
    with an uncached control run over the same event sequence."""
    events = random_workload(random.Random(17), 6)
    half = len(events) // 2
    consistency = ConsistencyConfig.eventual(window=2.0, immediate_fraction=0.4)

    def staged(read_cache):
        sim = Simulation(
            architecture="s3+simpledb", seed=5, shards=2,
            consistency=consistency, read_cache=read_cache,
        )
        sim.store_events(events[:half], collect=False)
        engine = sim.query_engine()
        engine.q2_outputs_of("blast")          # warm (or not) mid-stream
        sim.store_events(events[half:], collect=False)
        sim.account.quiesce()                  # replicas converge
        return sim, run_queries(sim, events[-1].subject)

    on, on_results = staged("on")
    _, off_results = staged("off")
    assert on_results == off_results
    cache = on.account.read_cache
    assert cache.max_served_age <= cache.staleness_bound

    # Ageing: park an entry, stride the clock past the bound, and the
    # authority drops it rather than serve beyond the contract.
    engine = on.query_engine()
    engine.q2_outputs_of("blast")
    misses_before = cache.misses
    on.account.clock.advance(cache.staleness_bound + 0.1)
    stale_run = on.query_engine().q2_outputs_of("blast")
    assert cache.misses > misses_before       # expired entries re-missed
    assert stale_run.operations > 0           # answered from the backend
    assert cache.max_served_age <= cache.staleness_bound


def test_threaded_readers_never_outrun_writers_past_the_bound():
    """Concurrent readers and writers on one account (threaded dispatch,
    sanitizer-compatible): the authority's one lock totally orders
    fills against invalidations, so no reader is ever served an entry
    older than the staleness bound, and post-run queries agree with an
    uncached control."""
    base = random_workload(random.Random(23), 5)
    sim = loaded(base, 2, "on", concurrency=4)
    cache = sim.account.read_cache
    errors: list[BaseException] = []

    def writer():
        try:
            for round_index in range(6):
                pas = PassSystem(workload=f"threaded-{round_index}")
                pas.stage_input(f"in/t{round_index}.dat", b"x")
                with pas.process("blast", argv=f"-r {round_index}") as proc:
                    proc.read(f"in/t{round_index}.dat")
                    proc.write(f"out/t{round_index}.dat", b"y")
                    proc.close(f"out/t{round_index}.dat")
                sim.store_events(pas.drain_flushes(), collect=False)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def reader():
        try:
            engine = sim.query_engine()
            for _ in range(6):
                engine.q2_outputs_of("blast")
                engine.q3_descendants_of("blast")
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    assert cache.invalidations > 0
    assert cache.max_served_age <= cache.staleness_bound

    control = loaded(base, 2, "off")
    # Control replays the same base workload plus the writer's rounds.
    for round_index in range(6):
        pas = PassSystem(workload=f"threaded-{round_index}")
        pas.stage_input(f"in/t{round_index}.dat", b"x")
        with pas.process("blast", argv=f"-r {round_index}") as proc:
            proc.read(f"in/t{round_index}.dat")
            proc.write(f"out/t{round_index}.dat", b"y")
            proc.close(f"out/t{round_index}.dat")
        control.store_events(pas.drain_flushes(), collect=False)
    sim.account.quiesce()
    control.account.quiesce()
    subject = base[-1].subject
    assert run_queries(sim, subject) == run_queries(control, subject)
