"""Property tests: A3 atomicity under crashes anywhere, replay idempotency.

These are the paper's §4.3 arguments, machine-checked:

* whatever call index the client dies at, recovery leaves data and
  provenance either both visible or both absent;
* the commit daemon may crash and replay arbitrarily; the final state is
  the same because every apply step is idempotent.
"""

from hypothesis import given, settings, strategies as st

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET, RetryPolicy
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.errors import ClientCrash
from repro.passlib.capture import PassSystem
from tests.conftest import provenance_oracle_item


def build_store(seed: int, faults=None, daemon_faults=None, window=0.0):
    account = AWSAccount(
        seed=seed,
        consistency=(
            ConsistencyConfig.strong()
            if window == 0
            else ConsistencyConfig.eventual(window=window, immediate_fraction=0.4)
        ),
    )
    store = S3SimpleDBSQS(
        account,
        faults=faults or FaultPlan(),
        daemon_faults=daemon_faults or FaultPlan(),
        retry=RetryPolicy(attempts=15, wait=lambda: account.clock.advance(0.5)),
        commit_threshold=1000,
    )
    store.provision()
    return account, store


def make_events(n_files: int, env_bytes: int):
    pas = PassSystem(workload="prop")
    events = []
    for i in range(n_files):
        with pas.process(f"tool{i}", env={"E": "x" * env_bytes}) as proc:
            proc.write(f"out/f{i}.dat", f"payload {i}".encode())
            events.append(proc.close(f"out/f{i}.dat"))
    return events


def settle(account, store):
    for _ in range(8):
        account.clock.advance(200.0)
        store.restart_commit_daemon().drain()
        account.quiesce()
        if account.sqs.exact_message_count(store.queue_url) == 0:
            return


@settings(max_examples=50, deadline=None)
@given(
    crash_call=st.integers(1, 40),
    env_bytes=st.sampled_from([0, 2000, 9000]),
    seed=st.integers(0, 500),
)
def test_crash_anywhere_is_atomic(crash_call, env_bytes, seed):
    """Kill the client at the crash_call-th fault point (if reached):
    after recovery, data visible ⇔ provenance visible."""
    events = make_events(2, env_bytes)
    plan = FaultPlan()
    account, store = build_store(seed, faults=plan)
    store.store(events[0])  # a healthy baseline transaction
    plan.crash_at_call(len(plan.log) + crash_call)
    victim = events[1]
    try:
        store.store(victim)
    except ClientCrash:
        pass
    plan.disarm()
    settle(account, store)

    data = account.s3.exists_authoritative(DATA_BUCKET, victim.subject.name)
    # Atomicity must hold on whichever backend the environment placed
    # the provenance store on (SimpleDB or the DynamoDB-style table).
    item = provenance_oracle_item(account, victim.subject.item_name)
    assert data == (item is not None)
    # The baseline transaction must have survived regardless.
    assert account.s3.exists_authoritative(DATA_BUCKET, events[0].subject.name)


@settings(max_examples=35, deadline=None)
@given(
    daemon_crash_call=st.integers(1, 12),
    seed=st.integers(0, 500),
)
def test_daemon_crash_replay_idempotent(daemon_crash_call, seed):
    """Crash the daemon at an arbitrary apply point; a restarted daemon
    converges to exactly the no-crash outcome."""
    events = make_events(2, 1500)

    # Reference world: no daemon crash.
    ref_account, ref_store = build_store(seed)
    for event in events:
        ref_store.store(event)
    settle(ref_account, ref_store)

    # Crashing world.
    daemon_plan = FaultPlan().crash_at_call(daemon_crash_call)
    account, store = build_store(seed, daemon_faults=daemon_plan)
    for event in events:
        store.store(event)
    try:
        store.commit_daemon.drain()
    except ClientCrash:
        pass
    settle(account, store)

    for event in events:
        ref_record = ref_account.s3.authoritative_record(
            DATA_BUCKET, event.subject.name
        )
        record = account.s3.authoritative_record(DATA_BUCKET, event.subject.name)
        assert (record is None) == (ref_record is None)
        if record is not None:
            assert record.etag == ref_record.etag
            assert record.metadata_dict == ref_record.metadata_dict
        assert provenance_oracle_item(
            account, event.subject.item_name
        ) == provenance_oracle_item(ref_account, event.subject.item_name)
    assert account.sqs.exact_message_count(store.queue_url) == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), window=st.floats(0.5, 4.0))
def test_eventual_consistency_never_breaks_reads(seed, window):
    """Under arbitrary consistency windows, committed work reads back
    consistently (possibly after retries) and versions never regress."""
    events = make_events(3, 800)
    account, store = build_store(seed, window=window)
    for event in events:
        store.store(event)
    settle(account, store)
    for event in events:
        result = store.read(event.subject.name)
        assert result.consistent
        assert result.subject.version == event.subject.version
        assert result.data.md5() == event.data.md5()
