"""Property tests: the matrix workloads are backend- and layout-blind.

Two invariants over the PR's new generators (Zipfian fleet, diurnal
burst, deep lineage, trace replay):

* **placement is invisible to results** — for any seed, Q1/Q2/Q3 return
  identical result sets whether the provenance lives on one SimpleDB
  domain, four, the DynamoDB-style store (scan or GSI), or a mixed
  placement. The generators only emit flush events; if a skewed or
  bursty stream could perturb a backend's result set, the whole matrix
  comparison would be measuring bugs, not architecture.
* **a fleet capture replays to a byte-identical meter** — recording a
  live fleet run's op log, round-tripping it through the JSONL trace
  codec, and replaying it into a fresh identically-shaped fleet must
  reproduce the original meter exactly. This is the acceptance bar for
  ``repro matrix``'s ``replay_ok`` column.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.fleet import ClientFleet
from repro.sim import Simulation
from repro.workloads import (
    DeepLineageWorkload,
    DiurnalBurstWorkload,
    TraceReplayWorkload,
    ZipfianFleetWorkload,
    dump_trace,
    load_trace,
)

#: (shards, placement, ddb_indexes) cells compared against the baseline.
CELLS = [
    (4, "sdb", ""),
    (1, "ddb", ""),
    (4, "ddb", ""),
    (4, "ddb", "name,input"),
    (4, "mixed", ""),
]
BASELINE = (1, "sdb", "")

WORKLOAD_KEYS = ["zipfian", "diurnal", "deep", "replay"]


def build_workload(key: str, seed: int):
    """A tiny instance of each new generator; returns (workload, program)."""
    if key == "zipfian":
        return ZipfianFleetWorkload(n_tenants=3, keys_per_tenant=6, n_ops=30), "ingest"
    if key == "diurnal":
        inner = ZipfianFleetWorkload(n_tenants=2, keys_per_tenant=4, n_ops=20)
        return DiurnalBurstWorkload(inner=inner), "ingest"
    if key == "deep":
        return DeepLineageWorkload(chain_length=30), "step"
    if key == "replay":
        source = ZipfianFleetWorkload(n_tenants=3, keys_per_tenant=6, n_ops=25)
        events = list(source.iter_events(random.Random(source.seed_key(seed))))
        return TraceReplayWorkload(load_trace(dump_trace(events))), "ingest"
    raise KeyError(key)


def loaded_simulation(events, shards: int, placement: str, ddb_indexes: str):
    sim = Simulation(
        architecture="s3+simpledb",
        seed=99,
        shards=shards,
        placement=placement,
        ddb_indexes=ddb_indexes,
    )
    sim.store_events(events, collect=False)
    return sim


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    key=st.sampled_from(WORKLOAD_KEYS),
    cell=st.sampled_from(CELLS),
)
def test_queries_identical_across_placements_and_shards(seed, key, cell):
    workload, program = build_workload(key, seed)
    events = list(workload.iter_events(random.Random(workload.seed_key(seed))))

    base = loaded_simulation(events, *BASELINE).query_engine()
    placed = loaded_simulation(events, *cell).query_engine()

    assert set(placed.q2_outputs_of(program).refs) == set(
        base.q2_outputs_of(program).refs
    )
    assert set(placed.q3_descendants_of(program).refs) == set(
        base.q3_descendants_of(program).refs
    )
    assert set(placed.q1_all().refs) == set(base.q1_all().refs)
    subject = events[-1].subject
    assert set(placed.q1(subject).refs) == set(base.q1(subject).refs)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    architecture=st.sampled_from(["s3+simpledb", "s3+simpledb+sqs"]),
)
def test_fleet_capture_replays_to_byte_identical_meter(seed, architecture):
    workload = ZipfianFleetWorkload(n_tenants=3, keys_per_tenant=5, n_ops=24)
    events = list(workload.iter_events(random.Random(workload.seed_key(seed))))
    # Flush events are self-contained (each carries its full ancestor
    # bundles), so dealing consecutive chunks across clients is a valid
    # fleet schedule for any workload.
    chunks = [events[i : i + 8] for i in range(0, len(events), 8)]

    capture = ClientFleet(
        n_clients=3,
        architecture=architecture,
        seed=seed,
        shards=2,
        record_trace=True,
    )
    capture.scatter(chunks)
    capture.run_round_robin(batch=3)

    # Round-trip the op log through the serialised trace format — the
    # replay must survive the codec, not just the in-memory list. The
    # capture is the fleet's interleaved store order, so it is a
    # permutation of the generated stream, not the stream itself.
    document = load_trace(capture.trace_document().dumps())
    assert len(document.events) == len(events)
    assert set(document.events) == set(events)

    replayer = ClientFleet(
        n_clients=3, architecture=architecture, seed=seed, shards=2
    )
    stored = replayer.replay_trace(document)
    assert stored == len(events)
    assert replayer.account.meter.snapshot() == capture.account.meter.snapshot()
