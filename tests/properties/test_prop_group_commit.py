"""Property tests: group commit preserves the write path's guarantees.

Two invariants the batched path must not buy its savings with:

* **Meter identity at batch=1** — ``write_batch=1`` is not "a batch of
  one": it must take the legacy single-request path everywhere, so a
  run is *byte-identical* on the meter to a run that never heard of
  batching. This is the knob's backward-compatibility contract.
* **Crash atomicity survives coalescing** — the client coalescer defers
  provenance puts, but always flushes before the authoritative data
  PUT (A2) or rides inside the WAL transaction (A3). A crash loses at
  most work that was never acknowledged; resubmission converges to the
  exact no-crash state.
"""

import os
from unittest import mock

from hypothesis import given, settings, strategies as st

from repro.aws.faults import FaultPlan
from repro.core.base import DATA_BUCKET
from repro.core.coalesce import WRITE_BATCH_ENV
from repro.errors import ClientCrash
from repro.sim import Simulation
from tests.conftest import provenance_oracle_item
from tests.properties.test_prop_wal import build_store, make_events, settle


@settings(max_examples=20, deadline=None)
@given(
    architecture=st.sampled_from(["s3+simpledb", "s3+simpledb+sqs"]),
    seed=st.integers(0, 300),
    n_files=st.integers(1, 6),
)
def test_batch_one_is_meter_identical(architecture, seed, n_files):
    """write_batch=1 spends exactly what the default path spends —
    request by request, byte by byte, on every service."""

    def run(**kwargs):
        # The property compares the *legacy* default against an explicit
        # width of 1, so a suite-wide REPRO_WRITE_BATCH (the CI
        # write-batch=8 pass) must not redefine what "default" means.
        with mock.patch.dict(os.environ):
            os.environ.pop(WRITE_BATCH_ENV, None)
            sim = Simulation(architecture=architecture, seed=seed, **kwargs)
            pas_events = make_events(n_files, 500)
            sim.store_events(pas_events, collect=False)
            return sim.usage()

    default_usage = run()
    explicit_usage = run(write_batch=1)
    delta = default_usage - explicit_usage
    for service in ("s3", "simpledb", "sqs", "dynamodb"):
        assert delta.request_count(service) == 0
        assert delta.transfer_in(service) == 0
        assert delta.transfer_out(service) == 0
    assert default_usage.box_usage_hours == explicit_usage.box_usage_hours


@settings(max_examples=40, deadline=None)
@given(
    crash_call=st.integers(1, 40),
    write_batch=st.integers(2, 25),
    seed=st.integers(0, 400),
)
def test_coalesced_crash_loses_nothing_acknowledged(crash_call, write_batch, seed):
    """Crash a batching client anywhere mid-store: everything already
    acknowledged stays intact, and resubmitting the interrupted event
    through a new incarnation converges — at most the one unflushed
    buffer needed redoing, never silently lost work."""
    events = make_events(3, 400)  # small env: one WAL record per txn
    plan = FaultPlan()
    account, store = build_store(seed, faults=plan)
    store.coalescer.batch_size = write_batch
    store.store(events[0])  # acknowledged before the fault arms
    plan.crash_at_call(len(plan.log) + crash_call)
    victim = events[1]
    try:
        store.store(victim)
    except ClientCrash:
        pass
    plan.disarm()

    # The grid scheduler resubmits the interrupted job on a fresh
    # incarnation sharing the routing handle, then keeps going.
    store.store(victim)
    store.store(events[2])
    settle(account, store)

    for event in events:
        assert account.s3.exists_authoritative(DATA_BUCKET, event.subject.name)
        assert provenance_oracle_item(account, event.subject.item_name) is not None
        result = store.read(event.subject.name)
        assert result.consistent
        assert result.data.md5() == event.data.md5()
    # The crashed incarnation may leave an orphaned *partial*
    # transaction's records in the WAL (incomplete forever; SQS
    # retention reaps them) — but never more than one transaction's
    # worth, and every sealed transaction's records are gone. A minimal
    # transaction is begin + pointer + provenance chunk + md5 + commit;
    # a partial one is missing at least the commit record.
    max_partial_records = 4
    assert (
        account.sqs.exact_message_count(store.queue_url) <= max_partial_records
    )


@settings(max_examples=25, deadline=None)
@given(
    write_batch=st.integers(2, 25),
    daemon_crash_call=st.integers(1, 15),
    seed=st.integers(0, 300),
)
def test_group_commit_daemon_crash_replay_idempotent(
    write_batch, daemon_crash_call, seed
):
    """Crash the *batching* daemon at an arbitrary apply point; replay
    converges to exactly the single-item reference outcome."""
    events = make_events(3, 900)

    ref_account, ref_store = build_store(seed)
    for event in events:
        ref_store.store(event)
    settle(ref_account, ref_store)

    daemon_plan = FaultPlan().crash_at_call(daemon_crash_call)
    account, store = build_store(seed, daemon_faults=daemon_plan)
    store.coalescer.batch_size = write_batch
    for event in events:
        store.store(event)
    try:
        store.commit_daemon.drain()
    except ClientCrash:
        pass
    settle(account, store)

    for event in events:
        ref_record = ref_account.s3.authoritative_record(
            DATA_BUCKET, event.subject.name
        )
        record = account.s3.authoritative_record(DATA_BUCKET, event.subject.name)
        assert record is not None and ref_record is not None
        assert record.etag == ref_record.etag
        assert record.metadata_dict == ref_record.metadata_dict
        assert provenance_oracle_item(
            account, event.subject.item_name
        ) == provenance_oracle_item(ref_account, event.subject.item_name)
    assert account.sqs.exact_message_count(store.queue_url) == 0
