"""Property tests: PASS versioning keeps provenance acyclic, always."""

from hypothesis import given, settings, strategies as st

from repro.graph.provgraph import ProvenanceGraph
from repro.passlib.capture import PassSystem

#: A random workload program: each step is (process index, action, file index).
steps = st.lists(
    st.tuples(
        st.integers(0, 3),                       # which process
        st.sampled_from(["read", "write", "close"]),
        st.integers(0, 4),                       # which file
    ),
    min_size=1,
    max_size=60,
)


def run_program(program) -> PassSystem:
    pas = PassSystem(workload="prop")
    handles = [pas.process(f"p{i}") for i in range(4)]
    written: set[str] = set()
    for process_index, action, file_index in program:
        handle = handles[process_index]
        path = f"f{file_index}"
        if action == "read":
            handle.read(path)
        elif action == "write":
            handle.write(path, f"{process_index}:{file_index}".encode())
            written.add(path)
        elif path in written:
            handle.close(path)
    return pas


@settings(max_examples=80, deadline=None)
@given(program=steps)
def test_version_graph_always_acyclic(program):
    pas = run_program(program)
    pas.drain_flushes()
    assert pas.versions.is_acyclic()


@settings(max_examples=80, deadline=None)
@given(program=steps)
def test_flush_events_form_dag_with_causal_order(program):
    pas = run_program(program)
    events = pas.drain_flushes()
    graph = ProvenanceGraph.from_events(events)
    assert graph.is_acyclic()
    # Causal order: every referenced bundle subject appears no later
    # than its referrer in the flush stream.
    seen = set()
    for event in events:
        for bundle in event.all_bundles():
            for parent in bundle.inputs():
                assert parent in seen or parent.name == bundle.subject.name
            seen.add(bundle.subject)


@settings(max_examples=80, deadline=None)
@given(program=steps)
def test_versions_monotone_per_object(program):
    pas = run_program(program)
    events = pas.drain_flushes()
    last_version: dict[str, int] = {}
    for event in events:
        name = event.subject.name
        version = event.subject.version
        assert version > last_version.get(name, 0), (
            f"{name} flushed version {version} after {last_version.get(name)}"
        )
        last_version[name] = version


@settings(max_examples=60, deadline=None)
@given(program=steps)
def test_no_bundle_exceeds_simpledb_item_limit(program):
    from repro.units import SDB_MAX_ATTRS_PER_ITEM

    pas = run_program(program)
    for event in pas.drain_flushes():
        for bundle in event.all_bundles():
            # +2 for the md5/nonce consistency attributes on file items.
            assert len(bundle) + 2 <= SDB_MAX_ATTRS_PER_ITEM
