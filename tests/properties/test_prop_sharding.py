"""Property tests: sharding is invisible to query results.

Two invariants, hammered over randomly generated provenance workloads:

* **scatter-gather equivalence** — for any shard count N, Q1/Q2/Q3
  against the N-way sharded domain return exactly the result sets of the
  unsharded (N=1) baseline; only the operation counts differ;
* **rebalance round-trip** — re-sharding a populated deployment from N
  to N' moves items between domains but preserves every item (name and
  attribute values) exactly, and lands each item on the domain the new
  router routes it to.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.passlib.capture import PassSystem
from repro.sharding import ShardRouter, authoritative_snapshot, rebalance
from repro.sim import Simulation


def all_store_names(account) -> set[str]:
    """Every provenance store name across both backends (the layout a
    shrink must leave behind, whatever the placement says)."""
    return set(account.simpledb.list_domains()) | set(account.dynamodb.list_tables())


def random_workload(rng: random.Random, n_stages: int):
    """A random multi-stage pipeline: stage i reads earlier outputs.

    Object paths draw from a small alphabet with nested directories so
    different names routinely collide onto (and split across) shards.
    """
    pas = PassSystem(workload="prop-shard")
    pas.stage_input("in/seed.dat", b"seed")
    outputs = ["in/seed.dat"]
    for stage in range(n_stages):
        program = rng.choice(["blast", "align", "merge"])
        with pas.process(program, argv=f"--stage {stage}") as proc:
            for source in rng.sample(outputs, k=min(len(outputs), 1 + rng.randrange(2))):
                proc.read(source)
            path = f"out/{rng.choice('abc')}/{stage:02d}.dat"
            proc.write(path, f"{program}:{stage}".encode())
            proc.close(path)
            outputs.append(path)
    return list(pas.drain_flushes())


def loaded_simulation(events, shards: int) -> Simulation:
    sim = Simulation(architecture="s3+simpledb", seed=99, shards=shards)
    sim.store_events(events, collect=False)
    return sim


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    shards=st.integers(min_value=2, max_value=6),
)
def test_sharded_queries_equal_unsharded_baseline(seed, n_stages, shards):
    events = random_workload(random.Random(seed), n_stages)
    baseline = loaded_simulation(events, shards=1)
    sharded = loaded_simulation(events, shards=shards)
    base_engine = baseline.query_engine()
    shard_engine = sharded.query_engine()

    for program in ("blast", "align", "merge"):
        assert set(shard_engine.q2_outputs_of(program).refs) == set(
            base_engine.q2_outputs_of(program).refs
        )
        assert set(shard_engine.q3_descendants_of(program).refs) == set(
            base_engine.q3_descendants_of(program).refs
        )
    assert set(shard_engine.q1_all().refs) == set(base_engine.q1_all().refs)
    for event in events:
        base_q1 = base_engine.q1(event.subject)
        shard_q1 = shard_engine.q1(event.subject)
        assert set(shard_q1.refs) == set(base_q1.refs)
        # Q1 routes to one shard: its cost must not grow with N.
        assert shard_q1.operations == base_q1.operations


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    n_before=st.integers(min_value=1, max_value=6),
    n_after=st.integers(min_value=1, max_value=6),
)
def test_rebalance_round_trip_preserves_every_bundle(seed, n_stages, n_before, n_after):
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded_simulation(events, shards=n_before)
    source = sim.store.router
    target = ShardRouter(n_after)

    before = authoritative_snapshot(sim.account, source)
    sim.account.quiesce()
    report = rebalance(sim.account, source, target)
    after = authoritative_snapshot(sim.account, target)

    assert after == before  # every item survives, values verbatim
    assert report.items_scanned == len(before)
    assert report.items_moved + report.items_kept == report.items_scanned
    backends = sim.account.provenance_backends()
    for item_name in after:
        owner = target.domain_for_item(item_name)
        owning_backend = backends[target.backend_for(owner)]
        assert item_name in owning_backend.authoritative_item_names(owner)

    # The rebalanced layout answers queries identically to a fresh load.
    from repro.query.engine import SimpleDBEngine

    rebalanced_engine = SimpleDBEngine(sim.account, router=target)
    control = loaded_simulation(events, shards=1).query_engine()
    assert set(rebalanced_engine.q3_descendants_of("blast").refs) == set(
        control.q3_descendants_of("blast").refs
    )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    shards=st.integers(min_value=1, max_value=4),
    concurrency=st.sampled_from([1, 4]),
)
def test_per_shard_accounting_sums_exactly(seed, n_stages, shards, concurrency):
    """Scoped metering: per-shard spend sums to the query's global delta
    for every query, at every shard count, in both dispatch modes."""
    from repro.query.engine import SimpleDBEngine

    events = random_workload(random.Random(seed), n_stages)
    sim = loaded_simulation(events, shards=shards)
    engine = SimpleDBEngine(
        sim.account, router=sim.store.router, concurrency=concurrency
    )
    measurements = [
        engine.q2_outputs_of("blast"),
        engine.q3_descendants_of("blast"),
        engine.q1_all(),
        engine.q1(events[0].subject),
    ]
    for m in measurements:
        assert sum(ops for _, ops, _ in m.per_shard) == m.operations
        assert sum(nbytes for _, _, nbytes in m.per_shard) == m.bytes_out
        assert len(m.per_shard) <= shards


def test_rebalance_shrink_deletes_orphaned_source_domains():
    events = random_workload(random.Random(5), 6)
    sim = loaded_simulation(events, shards=4)
    source = sim.store.router
    target = ShardRouter(2)
    sim.account.quiesce()
    report = rebalance(sim.account, source, target)
    orphans = set(source.domains) - set(target.domains)
    assert sorted(report.domains_deleted) == sorted(orphans)
    remaining = all_store_names(sim.account)
    assert not (orphans & remaining), "shrink left orphaned domains behind"
    assert set(target.domains) <= remaining
    # Skew reporting now sees only the surviving layout.
    assert set(target.item_counts(sim.account)) == set(target.domains)


def test_rebalance_shrink_to_single_domain_restores_paper_layout():
    events = random_workload(random.Random(9), 5)
    sim = loaded_simulation(events, shards=3)
    sim.account.quiesce()
    report = rebalance(sim.account, sim.store.router, ShardRouter(1))
    assert sorted(report.domains_deleted) == sorted(sim.store.router.domains)
    assert all_store_names(sim.account) == {"pass-prov"}


def test_rebalance_grow_deletes_nothing_between_surviving_shards():
    events = random_workload(random.Random(11), 5)
    sim = loaded_simulation(events, shards=2)
    sim.account.quiesce()
    report = rebalance(sim.account, sim.store.router, ShardRouter(4))
    assert report.domains_deleted == []
    assert set(sim.store.router.domains) <= all_store_names(sim.account)


@settings(max_examples=30, deadline=None)
@given(
    path=st.text(
        alphabet="abcdefgh/._-0123456789", min_size=1, max_size=40
    ).filter(lambda p: p.strip()),
    shards=st.integers(min_value=1, max_value=32),
)
def test_routing_is_deterministic_and_total(path, shards):
    router = ShardRouter(shards)
    again = ShardRouter(shards)
    domain = router.domain_for(path)
    assert domain in router.domains
    assert again.domain_for(path) == domain  # stable across instances
    assert router.shard_index(path) == router.domains.index(domain)


@settings(max_examples=20, deadline=None)
@given(
    n_before=st.integers(min_value=1, max_value=8),
    extra=st.integers(min_value=1, max_value=8),
)
def test_growing_the_ring_only_sheds_keys(n_before, extra):
    """Consistent hashing: going N → N+k never moves a key between two
    surviving shards — keys either stay put or move to a new shard."""
    small = ShardRouter(n_before)
    big = ShardRouter(n_before + extra)
    surviving = set(small.domains) & set(big.domains)
    for index in range(200):
        path = f"dir{index % 7}/file-{index:03d}.dat"
        before = small.domain_for(path)
        after = big.domain_for(path)
        if before in surviving and after in surviving:
            assert after == before
