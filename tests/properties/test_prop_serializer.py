"""Property tests: serialization round-trips for arbitrary records."""

from hypothesis import given, settings, strategies as st

from repro.blob import BytesBlob
from repro.passlib import serializer
from repro.passlib.records import (
    Attr,
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    ProvenanceRecord,
)
from repro.units import S3_MAX_METADATA_SIZE

names = st.text(
    alphabet="abcdefghij/._-", min_size=1, max_size=24
).filter(lambda s: not s.endswith(":") and ":v" not in s and "_v" not in s)
versions = st.integers(1, 9999)
refs = st.builds(ObjectRef, name=names, version=versions)
attributes = st.sampled_from(
    [Attr.NAME, Attr.ARGV, Attr.ENV, Attr.PID, "custom_attr"]
)
# Values span the 1 KB spill threshold; the serializer must handle both.
small_values = st.text(alphabet="xyz= \n", min_size=0, max_size=64)
large_values = st.integers(1025, 4000).map(lambda n: "v" * n)
string_values = st.one_of(small_values, large_values)


@st.composite
def flush_events(draw):
    subject = draw(refs)
    n_own = draw(st.integers(1, 8))
    own_records = [ProvenanceRecord(subject, Attr.TYPE, "file")]
    for _ in range(n_own):
        attribute = draw(attributes)
        if draw(st.booleans()):
            value = draw(refs)
            attribute = Attr.INPUT
        else:
            value = draw(string_values)
        own_records.append(ProvenanceRecord(subject, attribute, value))
    ancestors = []
    for index in range(draw(st.integers(0, 2))):
        ancestor_subject = ObjectRef(f"proc/a{index}.{index}", 1)
        ancestor_records = [
            ProvenanceRecord(ancestor_subject, Attr.TYPE, "process"),
            ProvenanceRecord(ancestor_subject, Attr.ENV, draw(string_values)),
        ]
        ancestors.append(
            ProvenanceBundle(
                subject=ancestor_subject,
                kind="process",
                records=tuple(ancestor_records),
            )
        )
    bundle = ProvenanceBundle(subject=subject, kind="file", records=tuple(own_records))
    return FlushEvent(
        bundle=bundle,
        data=BytesBlob(draw(st.binary(min_size=1, max_size=64))),
        ancestors=tuple(ancestors),
    )


def record_set(bundle):
    return sorted(str(r) for r in bundle.records)


@settings(max_examples=80, deadline=None)
@given(event=flush_events())
def test_s3_metadata_roundtrip(event):
    payload = serializer.to_s3_metadata(event)
    assert payload.metadata_size <= S3_MAX_METADATA_SIZE
    store = {o.key: o.value for o in payload.overflow}
    own, ancestors = serializer.bundles_from_s3_metadata(
        event.subject, payload.metadata, store.__getitem__
    )
    assert record_set(own) == record_set(event.bundle)
    assert len(ancestors) == len(event.ancestors)
    for decoded, original in zip(ancestors, event.ancestors):
        assert record_set(decoded) == record_set(original)
        assert decoded.subject == original.subject


@settings(max_examples=80, deadline=None)
@given(event=flush_events())
def test_simpledb_items_roundtrip(event):
    items = serializer.to_simpledb_items(event)
    assert len(items) == 1 + len(event.ancestors)
    for bundle, item in zip(event.all_bundles(), items):
        attrs: dict[str, list[str]] = {}
        for name, value in item.attributes:
            assert len(value.encode()) <= 1024  # SimpleDB limit respected
            attrs.setdefault(name, []).append(value)
        store = {o.key: o.value for o in item.overflow}
        decoded = serializer.bundle_from_item(
            item.item_name,
            {k: tuple(v) for k, v in attrs.items()},
            store.__getitem__,
        )
        assert record_set(decoded) == record_set(bundle)


@settings(max_examples=80, deadline=None)
@given(event=flush_events())
def test_wire_roundtrip(event):
    for bundle in event.all_bundles():
        wire = serializer.wire_dumps(serializer.bundle_to_wire(bundle))
        decoded = serializer.bundle_from_wire(serializer.wire_loads(wire))
        assert record_set(decoded) == record_set(bundle)
        assert decoded.subject == bundle.subject
        assert decoded.kind == bundle.kind


@settings(max_examples=60, deadline=None)
@given(ref=refs)
def test_objectref_encodings_invertible(ref):
    assert ObjectRef.decode(ref.encode()) == ref
    assert ObjectRef.from_item_name(ref.item_name) == ref
