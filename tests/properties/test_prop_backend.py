"""Property tests: the backend protocol is free, and placement is sound.

Three invariants, hammered over randomly generated provenance workloads:

* **protocol extraction is byte-identical** — for any workload and any
  shard count, the engine under an all-SimpleDB placement meters
  exactly the operations and bytes of the *pre-refactor* engine. The
  reference implementations below re-issue the historical direct
  SimpleDB request sequences (frozen copies of the pre-protocol code
  paths), so any adapter overhead — an extra request, a changed
  projection, a different page walk — fails the comparison;
* **placement is invisible to results** — Q1/Q2/Q3 return identical
  result sets whether shards live on SimpleDB, the DynamoDB-style
  store, or a mix; only the metered cost differs;
* **cross-backend rebalance round-trips** — migrating a populated
  layout to different shard counts *and* different backends preserves
  every item verbatim and empties (then drops) every source store that
  left the layout.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.aws.sdb_query import quote_literal
from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr, ObjectRef
from repro.query.engine import REF_BATCH, SimpleDBEngine
from repro.sharding import ShardRouter, authoritative_snapshot, rebalance
from repro.sim import Simulation


def random_workload(rng: random.Random, n_stages: int):
    """A random multi-stage pipeline (same shape as the sharding suite)."""
    pas = PassSystem(workload="prop-backend")
    pas.stage_input("in/seed.dat", b"seed")
    outputs = ["in/seed.dat"]
    for stage in range(n_stages):
        program = rng.choice(["blast", "align", "merge"])
        with pas.process(program, argv=f"--stage {stage}") as proc:
            for source in rng.sample(outputs, k=min(len(outputs), 1 + rng.randrange(2))):
                proc.read(source)
            path = f"out/{rng.choice('abc')}/{stage:02d}.dat"
            proc.write(path, f"{program}:{stage}".encode())
            proc.close(path)
            outputs.append(path)
    return list(pas.drain_flushes())


def loaded_simulation(events, shards: int, placement=None, **kwargs) -> Simulation:
    sim = Simulation(
        architecture="s3+simpledb", seed=99, shards=shards, placement=placement,
        **kwargs,
    )
    sim.store_events(events, collect=False)
    return sim


# -- frozen pre-refactor request sequences (the byte-identity oracle) -------


def legacy_q2_measure(sim, program: str):
    """Q2 exactly as the pre-protocol engine issued it: two scattered
    phases of QueryWithAttributes pages against the SimpleDB service
    directly. Returns (refs, ops, bytes_out) from a meter delta."""
    account, router = sim.account, sim.store.router
    before = account.meter.snapshot()

    def paged(domain, expression):
        token = None
        while True:
            page = account.simpledb.query_with_attributes(
                domain, expression, attribute_names=[Attr.TYPE], next_token=token
            )
            yield from page.items
            token = page.next_token
            if token is None:
                return

    literal = quote_literal(program)
    expression = f"['type' = 'process'] intersection ['name' = {literal}]"
    instances = {
        ObjectRef.from_item_name(name)
        for domain in router.domains
        for name, _ in paged(domain, expression)
    }
    refs = set()
    if instances:
        ordered = sorted(instances)
        for start in range(0, len(ordered), REF_BATCH):
            chunk = ordered[start : start + REF_BATCH]
            disjunction = " or ".join(
                f"'input' = {quote_literal(ref.encode())}" for ref in chunk
            )
            for domain in router.domains:
                for name, attrs in paged(domain, f"[{disjunction}]"):
                    kind = (attrs.get(Attr.TYPE) or ("file",))[0]
                    if kind == "file":
                        refs.add(ObjectRef.from_item_name(name))
    spent = account.meter.snapshot() - before
    return refs, spent.request_count(), spent.transfer_out()


def legacy_q1_all_measure(sim):
    """Q1-over-everything exactly as the pre-protocol engine issued it:
    per shard, page every item name with Query, then one GetAttributes
    per item (decoding skipped — it costs no metered requests unless a
    value spilled, and the workload above never spills)."""
    account, router = sim.account, sim.store.router
    before = account.meter.snapshot()
    refs = set()
    for domain in router.domains:
        token = None
        names = []
        while True:
            page = account.simpledb.query(domain, None, next_token=token)
            names.extend(page.item_names)
            token = page.next_token
            if token is None:
                break
        for item_name in names:
            attrs = account.simpledb.get_attributes(domain, item_name)
            if attrs:
                refs.add(ObjectRef.from_item_name(item_name))
    spent = account.meter.snapshot() - before
    return refs, spent.request_count(), spent.transfer_out()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    shards=st.integers(min_value=1, max_value=6),
)
def test_all_sdb_placement_meters_identically_to_pre_refactor_engine(
    seed, n_stages, shards
):
    events = random_workload(random.Random(seed), n_stages)
    # The legacy oracle predates access-path planning; planned modes add
    # statistics consults, so the byte-identity comparison pins the knob
    # (the planner-off default is the byte-identical path).
    sim = loaded_simulation(events, shards=shards, placement="sdb", planner="off")
    engine = sim.query_engine()

    for program in ("blast", "align", "merge"):
        q2 = engine.q2_outputs_of(program)
        legacy_refs, legacy_ops, legacy_bytes = legacy_q2_measure(sim, program)
        assert set(q2.refs) == legacy_refs
        assert q2.operations == legacy_ops
        assert q2.bytes_out == legacy_bytes

    q1_all = engine.q1_all()
    legacy_refs, legacy_ops, legacy_bytes = legacy_q1_all_measure(sim)
    assert set(q1_all.refs) == legacy_refs
    assert q1_all.operations == legacy_ops
    assert q1_all.bytes_out == legacy_bytes


PLACEMENTS = ["sdb", "ddb", "mixed", {0: "ddb"}]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    shards=st.integers(min_value=1, max_value=5),
    placement=st.sampled_from(PLACEMENTS),
)
def test_placement_is_invisible_to_query_results(seed, n_stages, shards, placement):
    events = random_workload(random.Random(seed), n_stages)
    baseline = loaded_simulation(events, shards=1, placement="sdb")
    placed = loaded_simulation(events, shards=shards, placement=placement)
    base_engine = baseline.query_engine()
    placed_engine = placed.query_engine()

    for program in ("blast", "merge"):
        assert set(placed_engine.q2_outputs_of(program).refs) == set(
            base_engine.q2_outputs_of(program).refs
        )
        assert set(placed_engine.q3_descendants_of(program).refs) == set(
            base_engine.q3_descendants_of(program).refs
        )
    assert set(placed_engine.q1_all().refs) == set(base_engine.q1_all().refs)
    subject = events[0].subject
    assert set(placed_engine.q1(subject).refs) == set(base_engine.q1(subject).refs)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=8),
    n_before=st.integers(min_value=1, max_value=5),
    n_after=st.integers(min_value=1, max_value=5),
    placement_before=st.sampled_from(PLACEMENTS),
    placement_after=st.sampled_from(PLACEMENTS),
)
def test_cross_backend_rebalance_round_trip(
    seed, n_stages, n_before, n_after, placement_before, placement_after
):
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded_simulation(events, shards=n_before, placement=placement_before)
    source = sim.store.router
    target = ShardRouter(n_after, placement=placement_after)

    before = authoritative_snapshot(sim.account, source)
    sim.account.quiesce()
    report = rebalance(sim.account, source, target)
    after = authoritative_snapshot(sim.account, target)

    # Every item preserved verbatim, landed on its target (store, kind).
    assert after == before
    assert report.items_scanned == len(before)
    assert report.items_moved + report.items_kept == report.items_scanned
    backends = sim.account.provenance_backends()
    for item_name in after:
        owner = target.domain_for_item(item_name)
        owning = backends[target.backend_for(owner)]
        assert item_name in owning.authoritative_item_names(owner)

    # Source stores that left the layout (by name or by backend) were
    # emptied and dropped; surviving (store, kind) sites were not.
    target_sites = set(target.placement_by_domain().items())
    for domain in source.domains:
        kind = source.backend_for(domain)
        if (domain, kind) in target_sites:
            continue
        assert backends[kind].item_count(domain) == 0
        assert domain in report.domains_deleted or not before

    # A flip of every shard's backend forces every *moved* item across.
    if (
        source.domains == target.domains
        and all(k == "sdb" for k in source.placement)
        and all(k == "ddb" for k in target.placement)
    ):
        assert report.cross_backend_moves == report.items_moved == len(before)


def test_full_backend_flip_migrates_every_item():
    """sdb→ddb at the same shard count: same store names, different
    service — every item must cross, every old store must drop."""
    events = random_workload(random.Random(21), 6)
    sim = loaded_simulation(events, shards=3, placement="sdb")
    source = sim.store.router
    target = ShardRouter(3, placement="ddb")
    before = authoritative_snapshot(sim.account, source)
    sim.account.quiesce()
    report = rebalance(sim.account, source, target)

    assert report.cross_backend_moves == report.items_moved == len(before)
    assert report.items_kept == 0
    assert authoritative_snapshot(sim.account, target) == before
    assert sim.account.simpledb.list_domains() == []  # all dropped
    assert set(sim.account.dynamodb.list_tables()) == set(target.domains)
    # And back again, through the other adapter's write path.
    back = rebalance(sim.account, target, ShardRouter(3, placement="sdb"))
    assert back.cross_backend_moves == len(before)
    assert authoritative_snapshot(
        sim.account, ShardRouter(3, placement="sdb")
    ) == before
    assert sim.account.dynamodb.list_tables() == []


def test_queries_work_after_cross_backend_migration():
    """The migrated layout answers Q2/Q3 identically to a fresh load."""
    events = random_workload(random.Random(33), 7)
    sim = loaded_simulation(events, shards=2, placement="sdb")
    sim.account.quiesce()
    target = ShardRouter(4, placement="mixed")
    rebalance(sim.account, sim.store.router, target)
    migrated = SimpleDBEngine(sim.account, router=target)
    control = loaded_simulation(events, shards=1, placement="sdb").query_engine()
    for program in ("blast", "align"):
        assert set(migrated.q2_outputs_of(program).refs) == set(
            control.q2_outputs_of(program).refs
        )
        assert set(migrated.q3_descendants_of(program).refs) == set(
            control.q3_descendants_of(program).refs
        )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_stages=st.integers(min_value=1, max_value=6),
    shards=st.integers(min_value=2, max_value=5),
    concurrency=st.sampled_from([1, 4]),
)
def test_per_backend_accounting_sums_exactly(seed, n_stages, shards, concurrency):
    """per_backend rolls up per_shard exactly — ops and bytes — under
    mixed placement, in both dispatch modes."""
    events = random_workload(random.Random(seed), n_stages)
    sim = loaded_simulation(events, shards=shards, placement="mixed")
    engine = SimpleDBEngine(
        sim.account, router=sim.store.router, concurrency=concurrency
    )
    for measurement in (
        engine.q2_outputs_of("blast"),
        engine.q3_descendants_of("blast"),
        engine.q1_all(),
    ):
        assert sum(ops for _, ops, _ in measurement.per_backend) == measurement.operations
        assert (
            sum(nbytes for _, _, nbytes in measurement.per_backend)
            == measurement.bytes_out
        )
        kinds = {kind for kind, _, _ in measurement.per_backend}
        assert kinds <= {"sdb", "ddb"}
        router = sim.store.router
        expected_kinds = {
            router.backend_for(domain) for domain, _, _ in measurement.per_shard
        }
        assert kinds == expected_kinds
