"""Property tests: the SELECT front-end agrees with the bracket Query
language (two spellings, one semantics)."""

from hypothesis import given, settings, strategies as st

from repro.aws.sdb_query import parse_query, parse_select, run_query

attr_names = st.sampled_from(["type", "name", "ver"])
attr_values = st.text(alphabet="abc12", min_size=1, max_size=4)

items_strategy = st.dictionaries(
    keys=st.text(alphabet="wxyz", min_size=1, max_size=4),
    values=st.dictionaries(
        keys=attr_names,
        values=st.lists(attr_values, min_size=1, max_size=3).map(tuple),
        min_size=0,
        max_size=3,
    ),
    min_size=0,
    max_size=10,
).map(lambda d: sorted(d.items()))


def bracket_names(items, expression):
    return [n for n, _ in run_query(items, parse_query(expression))]


def select_names(items, statement):
    return [n for n, _ in run_query(items, parse_select(statement).query)]


@settings(max_examples=80, deadline=None)
@given(items=items_strategy, attribute=attr_names, value=attr_values)
def test_equality_agrees(items, attribute, value):
    assert bracket_names(items, f"['{attribute}' = '{value}']") == select_names(
        items, f"select * from d where {attribute} = '{value}'"
    )


@settings(max_examples=80, deadline=None)
@given(
    items=items_strategy,
    a1=attr_names,
    v1=attr_values,
    a2=attr_names,
    v2=attr_values,
)
def test_intersection_is_and(items, a1, v1, a2, v2):
    bracket = f"['{a1}' = '{v1}'] intersection ['{a2}' = '{v2}']"
    select = f"select * from d where {a1} = '{v1}' and {a2} = '{v2}'"
    assert bracket_names(items, bracket) == select_names(items, select)


@settings(max_examples=80, deadline=None)
@given(
    items=items_strategy,
    attribute=attr_names,
    v1=attr_values,
    v2=attr_values,
)
def test_or_within_predicate_is_in_list(items, attribute, v1, v2):
    bracket = f"['{attribute}' = '{v1}' or '{attribute}' = '{v2}']"
    select = f"select * from d where {attribute} in ('{v1}', '{v2}')"
    assert bracket_names(items, bracket) == select_names(items, select)


@settings(max_examples=80, deadline=None)
@given(items=items_strategy, attribute=attr_names, value=attr_values)
def test_not_agrees(items, attribute, value):
    bracket = f"not ['{attribute}' = '{value}']"
    select = f"select * from d where not {attribute} = '{value}'"
    assert bracket_names(items, bracket) == select_names(items, select)


single_valued_items = st.dictionaries(
    keys=st.text(alphabet="wxyz", min_size=1, max_size=4),
    values=st.dictionaries(
        keys=attr_names,
        values=attr_values.map(lambda v: (v,)),
        min_size=0,
        max_size=3,
    ),
    min_size=0,
    max_size=10,
).map(lambda d: sorted(d.items()))


@settings(max_examples=80, deadline=None)
@given(items=single_valued_items, attribute=attr_names, lo=attr_values, hi=attr_values)
def test_range_is_between_single_valued(items, attribute, lo, hi):
    """On single-valued attributes, BETWEEN equals the bracket range.

    The languages genuinely diverge on multi-valued attributes — see
    ``test_between_diverges_on_multivalues`` — matching real SimpleDB:
    a bracket's intra-predicate AND binds one attribute *value*, while
    SELECT comparisons each match independently.
    """
    if lo > hi:
        lo, hi = hi, lo
    bracket = f"['{attribute}' >= '{lo}' and '{attribute}' <= '{hi}']"
    select = f"select * from d where {attribute} between '{lo}' and '{hi}'"
    assert bracket_names(items, bracket) == select_names(items, select)


def test_between_diverges_on_multivalues():
    """Documented divergence: values {a, z} are 'between b and y' under
    SELECT (a distinct value satisfies each bound) but never match the
    bracket range (no single value is inside)."""
    items = [("w", {"ver": ("a", "z")})]
    bracket = "['ver' >= 'b' and 'ver' <= 'y']"
    select = "select * from d where ver between 'b' and 'y'"
    assert bracket_names(items, bracket) == []
    assert select_names(items, select) == ["w"]


@settings(max_examples=60, deadline=None)
@given(items=items_strategy, attribute=attr_names, prefix=attr_values)
def test_starts_with_is_like(items, attribute, prefix):
    bracket = f"['{attribute}' starts-with '{prefix}']"
    select = f"select * from d where {attribute} like '{prefix}%'"
    assert bracket_names(items, bracket) == select_names(items, select)
