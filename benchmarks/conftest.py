"""Shared benchmark fixtures and result capture.

Every table/figure benchmark writes its rendered output to
``benchmarks/results/<name>.txt`` as well as stdout, so EXPERIMENTS.md
can quote the regenerated artifacts verbatim.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

import pytest

from repro.workloads import CombinedWorkload, collect_stats

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale for live (store-everything) runs — big enough for shape, small
#: enough to keep the whole bench suite in minutes.
LIVE_SCALE = float(os.environ.get("REPRO_BENCH_LIVE_SCALE", "0.2"))
#: Scale for the analytic paper-scale pass (Table 2/3 projections).
ANALYTIC_SCALE = float(os.environ.get("REPRO_BENCH_ANALYTIC_SCALE", "33.0"))


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def live_events():
    """A materialised combined trace for live runs."""
    workload = CombinedWorkload()
    return list(workload.iter_events(random.Random("bench-live"), LIVE_SCALE))


@pytest.fixture(scope="session")
def live_stats(live_events):
    return collect_stats(live_events)


@pytest.fixture(scope="session")
def paper_stats():
    """Streamed statistics of the calibrated paper-scale dataset."""
    workload = CombinedWorkload()
    return collect_stats(
        workload.iter_events(random.Random("bench-paper"), ANALYTIC_SCALE)
    )
