"""Group commit — ops/item and USD/item vs write batch width.

The §4 architectures pay one service round trip per provenance record;
batching is the single biggest write-path lever the real services
offer. This benchmark drives the batched write path at widths
1 → 8 → 25 on all three backends and pins the headline claim — both
operations per item and USD per item fall **strictly** with batch
width:

* ``simpledb`` / ``dynamodb`` — the client coalescer flushing through
  ``BatchPutAttributes`` / ``BatchWriteItem`` over a single-shard
  placement (ceil(N/width) requests instead of N; SimpleDB's flat
  per-call box-usage base and DynamoDB's per-request price line are
  what amortise);
* ``sqs (A3)`` — the full WAL pipeline: the commit daemon group-commits
  rounds of ``width`` transactions, batching provenance puts per round
  and WAL deletes through ``DeleteMessageBatch``.

A separate test pins DynamoDB's honest throttling contract: under a
tight provisioned window, ``BatchWriteItem`` returns
``UnprocessedItems`` and every retry round trip is metered and visible
— batching amortises request overhead, never write capacity.
"""

import pytest

from repro.analysis.report import TextTable
from repro.aws import billing
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.backend import DynamoBackend
from repro.core.coalesce import WriteCoalescer
from repro.migration.handle import RouterHandle
from repro.passlib.capture import PassSystem
from repro.sharding import ShardRouter
from repro.sim import Simulation

from conftest import save_result

BATCH_WIDTHS = (1, 8, 25)
N_ITEMS = 200   # direct coalescer regimes
N_EVENTS = 120  # full A3 pipeline regime


def make_events(n_files):
    pas = PassSystem(workload="gcbench")
    events = []
    for i in range(n_files):
        with pas.process(f"tool{i}", env={"E": "x"}) as proc:
            proc.write(f"out/f{i}.dat", f"payload {i}".encode())
            events.append(proc.close(f"out/f{i}.dat"))
    return events


def coalescer_run(placement, width):
    """Drive N provenance items through the client coalescer over a
    single-shard placement; return (account, usage of the writes)."""
    account = AWSAccount(seed=23, consistency=ConsistencyConfig.strong())
    routing = RouterHandle(ShardRouter(1, placement=placement))
    routing.provision(account.provenance_backends())
    before = account.meter.snapshot()
    coalescer = WriteCoalescer(account, routing, width)
    for i in range(N_ITEMS):
        coalescer.put(f"obj{i}_v0001", [("type", "file"), ("seq", str(i))])
    coalescer.close()
    return account, account.meter.snapshot() - before


def a3_run(width):
    """Store a full A3 trace at the given group-commit width."""
    sim = Simulation(
        architecture="s3+simpledb+sqs", seed=23,
        write_batch=width, commit_threshold=1000,
    )
    events = make_events(N_EVENTS)
    before = sim.account.meter.snapshot()
    sim.store_events(events, collect=False)
    return sim.account, sim.account.meter.snapshot() - before


def _usd(account, usage) -> float:
    return account.prices.cost(usage).total


@pytest.fixture(scope="module")
def regime_rows():
    """regime name → width → (ops/item, usd/item, usage)."""
    rows = {}
    for regime, run, n in (
        ("simpledb", lambda w: coalescer_run("sdb", w), N_ITEMS),
        ("dynamodb", lambda w: coalescer_run("ddb", w), N_ITEMS),
        ("sqs (A3)", a3_run, N_EVENTS),
    ):
        rows[regime] = {}
        for width in BATCH_WIDTHS:
            account, usage = run(width)
            rows[regime][width] = (
                usage.request_count() / n,
                _usd(account, usage) / n,
                usage,
            )
    return rows


def test_group_commit_table(benchmark, regime_rows):
    benchmark(coalescer_run, "sdb", 25)
    table = TextTable(
        ["backend", "width", "requests", "ops/item", "$/item (e-6)"],
        title=(
            f"Group commit: write cost vs batch width "
            f"({N_ITEMS} items direct, {N_EVENTS}-event A3 trace)"
        ),
    )
    for regime, widths in regime_rows.items():
        for width, (ops, usd, usage) in widths.items():
            table.add_row(
                regime,
                width,
                usage.request_count(),
                f"{ops:.3f}",
                f"{usd * 1e6:.3f}",
            )
    save_result("group_commit", table.render())


def test_ops_and_usd_per_item_strictly_decrease(regime_rows):
    """The acceptance bar: batch=1 → 8 → 25 strictly lowers both
    operations per item and USD per item on every backend."""
    for regime, widths in regime_rows.items():
        curves = [widths[w][:2] for w in BATCH_WIDTHS]
        for (ops_a, usd_a), (ops_b, usd_b) in zip(curves, curves[1:]):
            assert ops_b < ops_a, regime
            assert usd_b < usd_a, regime


def test_batching_amortises_requests_never_write_units(regime_rows):
    """Fewer round trips is the whole saving: consumed DynamoDB write
    capacity is identical at every width."""
    reference = regime_rows["dynamodb"][1][2].write_units(billing.DDB)
    assert reference > 0
    for width in BATCH_WIDTHS[1:]:
        usage = regime_rows["dynamodb"][width][2]
        assert usage.write_units(billing.DDB) == reference
        assert usage.request_count(billing.DDB) < N_ITEMS


def test_unprocessed_retries_metered_under_throttling():
    """A tight provisioned window forces partial success: the backend
    retries ``UnprocessedItems`` with backoff, and every retry is a
    metered, visible ``BatchWriteItem`` request."""
    account = AWSAccount(seed=5, consistency=ConsistencyConfig.strong())
    ddb = account.dynamodb
    ddb.create_table("prov", write_capacity=3)
    backend = DynamoBackend(ddb)
    items = [(f"k{i}", [("v", "x" * 600)]) for i in range(40)]
    before = account.meter.snapshot()
    start = account.clock.now
    backend.put_provenance_items("prov", items)
    usage = account.meter.snapshot() - before
    assert backend.throttled_requests > 0
    assert account.clock.now > start  # backoff modeled real time
    # An unthrottled run needs ceil(40/25) = 2 requests; the retries
    # are extra metered round trips, not hidden bookkeeping.
    assert usage.request_count(billing.DDB, "BatchWriteItem") > 2
    for key, _ in items:
        assert ddb.authoritative_item("prov", key) == {"v": ("x" * 600,)}
