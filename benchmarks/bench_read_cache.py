"""Read-cache tier — repeated-query cost vs the uncached baseline.

The §5 query workloads are read-heavy and skewed: the same ancestry
closures (Q2/Q3) and the same hot objects (Q1) are asked for again and
again, and every repeat pays full-price backend round trips. This
benchmark puts the ElastiCache-style authority in front of the
provenance store and pins the headline claim — for hot objects, both
backend read operations and USD per round fall **strictly** once the
cache is warm, while the uncached control stays perfectly flat:

* ``q2`` / ``q3`` — ancestry closures served from memoised results
  keyed by the authority's version fence: the repeat round costs a
  couple of cache ``Get``s (priced at the ElastiCache request rate)
  instead of the full scatter-gather over every shard;
* ``q1 (hot object)`` — point reads served from the item cache, with
  spend attributed to the owning shard's label.

A separate regime squeezes the authority into a deliberately small
node (``capacity=2048``) to show the bounded-memory contract: the LRU
evicts under pressure, stored bytes never exceed capacity, and the
queries still answer correctly — the cache degrades to lower hit
rates, never to wrong or unbounded behaviour.
"""

import pytest

from repro.analysis.report import TextTable
from repro.passlib.capture import PassSystem
from repro.sim import Simulation

from conftest import save_result

N_JOBS = 24   # blast → summarize chains in the trace
ROUNDS = 3    # repeated rounds of the same query
SHARDS = 4


def pipeline_events(n_jobs=N_JOBS):
    pas = PassSystem(workload="cachebench")
    pas.stage_input("db/nr", b"database")
    for job in range(n_jobs):
        with pas.process("blast", argv=f"-q {job}") as blast:
            blast.read("db/nr")
            blast.write(f"out/{job % 5}/hits-{job}.dat", f"h{job}".encode())
            blast.close(f"out/{job % 5}/hits-{job}.dat")
        with pas.process("summarize") as post:
            post.read(f"out/{job % 5}/hits-{job}.dat")
            post.write(f"sum/{job}.txt", f"s{job}".encode())
            post.close(f"sum/{job}.txt")
    return list(pas.drain_flushes())


def loaded(read_cache):
    sim = Simulation(
        architecture="s3+simpledb", seed=31, shards=SHARDS,
        read_cache=read_cache,
    )
    sim.store_events(pipeline_events(), collect=False)
    return sim


def query_rounds(sim, query, hot=None):
    """(backend ops, cache ops, USD, latency) per repeated round."""
    engine = sim.query_engine()
    rounds = []
    for _ in range(ROUNDS):
        before = sim.account.meter.snapshot()
        if query == "q2":
            m = engine.q2_outputs_of("blast")
        elif query == "q3":
            m = engine.q3_descendants_of("blast")
        else:
            m = engine.q1(hot)
        spent = sim.account.meter.snapshot() - before
        rounds.append(
            (m.operations, m.cache_operations,
             sim.account.prices.cost(spent).total, m.latency)
        )
    return rounds


@pytest.fixture(scope="module")
def regime_rounds():
    """mode → query → list of per-round (ops, cache_ops, usd, latency)."""
    rows = {}
    hot = None
    for mode in ("off", "on"):
        sim = loaded(mode)
        if hot is None:
            # Probe the uncached control for the hot object so the warm
            # regime's round 1 stays genuinely cold (probing the cached
            # sim would pre-fill the very memos the rounds measure).
            hot = sim.query_engine().q2_outputs_of("blast").refs[0]
        rows[mode] = {
            query: query_rounds(sim, query, hot)
            for query in ("q1 (hot object)", "q2", "q3")
        }
        rows[mode]["cache"] = sim.account.read_cache
    return rows


def test_read_cache_table(benchmark, regime_rounds):
    benchmark(lambda: query_rounds(loaded("on"), "q2"))
    table = TextTable(
        ["cache", "query", "round", "backend ops", "cache ops",
         "$/round (e-6)", "latency (s)"],
        title=(
            f"Read cache: repeated-query cost over a {N_JOBS}-job trace "
            f"(shards={SHARDS})"
        ),
    )
    for mode in ("off", "on"):
        for query in ("q1 (hot object)", "q2", "q3"):
            for index, (ops, cache_ops, usd, latency) in enumerate(
                regime_rounds[mode][query], start=1
            ):
                table.add_row(
                    mode, query, index, ops, cache_ops,
                    f"{usd * 1e6:.3f}", f"{latency:.4f}",
                )
    cache = regime_rounds["on"]["cache"]
    summary = (
        f"authority (on): hits={cache.hits} misses={cache.misses} "
        f"evictions={cache.evictions} stored={cache.stored_nbytes()}B "
        f"max_served_age={cache.max_served_age:.1f}s "
        f"(bound {cache.staleness_bound:.1f}s)"
    )
    save_result("read_cache", table.render() + "\n" + summary)


def test_repeat_cost_strictly_falls_with_cache_on(regime_rounds):
    """The acceptance bar: with the cache on, round 1 → 2 strictly
    lowers backend read operations, USD, and modeled latency for every
    query shape, and later rounds never climb back up."""
    for query in ("q1 (hot object)", "q2", "q3"):
        rounds = regime_rounds["on"][query]
        (ops_1, _, usd_1, lat_1), (ops_2, _, usd_2, lat_2) = rounds[:2]
        assert ops_2 < ops_1, query
        assert usd_2 < usd_1, query
        assert lat_2 < lat_1, query
        for (ops_a, _, usd_a, _), (ops_b, _, usd_b, _) in zip(
            rounds[1:], rounds[2:]
        ):
            assert ops_b <= ops_a, query
            assert usd_b <= usd_a + 1e-15, query


def test_warm_repeats_do_zero_backend_reads(regime_rounds):
    """Warm Q2/Q3 rounds answer entirely from the authority: zero
    backend operations, a handful of metered cache consults."""
    for query in ("q2", "q3"):
        for ops, cache_ops, usd, _ in regime_rounds["on"][query][1:]:
            assert ops == 0, query
            # One consult per memoised phase / BFS wave — a handful,
            # never proportional to the result set.
            assert 0 < cache_ops <= 8, query
            assert usd > 0, query  # consults are priced, not free


def test_cache_off_control_is_perfectly_flat(regime_rounds):
    """The uncached control pays the identical backend bill every
    round — no drift, no cache operations, nothing hidden."""
    for query in ("q1 (hot object)", "q2", "q3"):
        rounds = regime_rounds["off"][query]
        first = rounds[0]
        for ops, cache_ops, usd, latency in rounds:
            assert (ops, usd, latency) == (first[0], first[2], first[3])
            assert cache_ops == 0
    assert regime_rounds["off"]["cache"] is None


def test_bounded_node_evicts_rather_than_grows():
    """A deliberately tiny node (2 KiB) under the same workload: the
    LRU evicts, stored bytes respect capacity, and answers still match
    the uncached control."""
    small = loaded("capacity=2048")
    control = loaded("off")
    engine = small.query_engine()
    for _ in range(2):
        q2 = engine.q2_outputs_of("blast")
        q3 = engine.q3_descendants_of("blast")
    cache = small.account.read_cache
    assert cache.evictions > 0
    assert cache.stored_nbytes() <= 2048
    control_engine = control.query_engine()
    assert set(q2.refs) == set(control_engine.q2_outputs_of("blast").refs)
    assert set(q3.refs) == set(control_engine.q3_descendants_of("blast").refs)
