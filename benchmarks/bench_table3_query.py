"""Table 3 — query comparison (paper §5, Table 3).

Q1 (per-version provenance over all objects), Q2 (outputs of blast),
Q3 (descendants of blast outputs) — measured live on both backends with
costs read from the billing meter, plus the analytic projection at paper
scale. Shape assertions: the S3 scan cost is query-independent and the
indexed backend wins Q2/Q3 by orders of magnitude, while Q1-over-all is
the one query where SimpleDB needs an operation per item.
"""

import pytest

from repro.analysis.query_model import (
    QueryCostRow,
    analytic_query_table,
    render_table3,
    shape_check,
)
from repro.query.engine import S3ScanEngine, SimpleDBEngine
from repro.sim import Simulation

from conftest import save_result


@pytest.fixture(scope="module")
def loaded_backends(live_events):
    scan_sim = Simulation(architecture="s3", seed=13)
    scan_sim.store_events(live_events, collect=False)
    indexed_sim = Simulation(architecture="s3+simpledb", seed=13)
    indexed_sim.store_events(live_events, collect=False)
    return scan_sim, indexed_sim


@pytest.fixture(scope="module")
def measured_rows(loaded_backends):
    scan_sim, indexed_sim = loaded_backends
    scan = S3ScanEngine(scan_sim.account)
    indexed = SimpleDBEngine(indexed_sim.account)
    program = "blast"
    rows = []
    pairs = [
        ("Q1", scan.q1_all(), indexed.q1_all()),
        ("Q2", scan.q2_outputs_of(program), indexed.q2_outputs_of(program)),
        ("Q3", scan.q3_descendants_of(program), indexed.q3_descendants_of(program)),
    ]
    for name, s3_m, sdb_m in pairs:
        rows.append(
            QueryCostRow(
                query=name,
                s3_bytes=s3_m.bytes_out,
                s3_ops=s3_m.operations,
                sdb_bytes=sdb_m.bytes_out,
                sdb_ops=sdb_m.operations,
            )
        )
    return rows


def test_table3_live_measured(benchmark, measured_rows, live_events):
    benchmark(render_table3, measured_rows)
    text = render_table3(
        measured_rows,
        title=f"Table 3 (measured live, {len(live_events)}-object repository)",
    )
    save_result("table3_query_live", text)
    problems = shape_check(measured_rows, min_factor=10)
    assert problems == [], problems


def test_table3_analytic_paper_scale(benchmark, paper_stats):
    rows = benchmark(analytic_query_table, paper_stats)
    text = render_table3(rows, title="Table 3 (analytic, paper scale)")
    save_result("table3_query_analytic", text)
    assert shape_check(rows, min_factor=100) == []
    by_name = {row.query: row for row in rows}
    # The paper's S3 column formula: N_objects + N_spills HEAD/GETs.
    assert by_name["Q1"].s3_ops == paper_stats.n_objects + paper_stats.n_records_gt_1kb
    # Q2/Q3 land in the paper's single-digit / tens-of-ops bands.
    assert by_name["Q2"].sdb_ops <= 12
    assert 10 <= by_name["Q3"].sdb_ops <= 80


def test_query_results_agree_across_backends(benchmark, loaded_backends):
    scan_sim, indexed_sim = loaded_backends
    scan = S3ScanEngine(scan_sim.account)
    indexed = SimpleDBEngine(indexed_sim.account)
    benchmark(indexed.q1, next(iter(indexed.q2_outputs_of('blast').refs)))
    assert set(scan.q2_outputs_of("blast").refs) == set(
        indexed.q2_outputs_of("blast").refs
    )
    assert set(scan.q3_descendants_of("blast").refs) == set(
        indexed.q3_descendants_of("blast").refs
    )


def test_bench_q2_scan(benchmark, loaded_backends):
    scan_sim, _ = loaded_backends
    engine = S3ScanEngine(scan_sim.account)
    measurement = benchmark(engine.q2_outputs_of, "blast")
    assert measurement.result_count > 0


def test_bench_q2_indexed(benchmark, loaded_backends):
    _, indexed_sim = loaded_backends
    engine = SimpleDBEngine(indexed_sim.account)
    measurement = benchmark(engine.q2_outputs_of, "blast")
    assert measurement.result_count > 0


def test_bench_q3_indexed(benchmark, loaded_backends):
    _, indexed_sim = loaded_backends
    engine = SimpleDBEngine(indexed_sim.account)
    measurement = benchmark(engine.q3_descendants_of, "blast")
    assert measurement.result_count > 0
