"""Heterogeneous shard placement — cost/latency of SDB vs DDB vs mixed.

The §6 discussion treats SimpleDB as one plausible provenance store;
the backend protocol makes the placement a knob. This benchmark loads
the same live trace into three placements — all-SimpleDB, all-DynamoDB
style, and mixed (even shards SDB, odd DDB) — at N ∈ {1, 4, 16} and
reports, from meter deltas:

* write-path cost: operations and USD to store the trace;
* Q1/Q2/Q3 operations, bytes out, modeled latency, and USD — SimpleDB
  answers Q2/Q3 with server-side predicates, the DynamoDB-style store
  scans and filters client-side, so its read amplification (and read
  unit consumption) is the honest price of having no query language,
  while Q1-over-everything *benefits* from scan pages carrying whole
  items instead of SimpleDB's one-GetAttributes-per-item pattern;
* the per-backend spend split under mixed placement
  (``QueryMeasurement.per_backend``), which must sum exactly to the
  query totals.

Result sets must be identical across placements at every N (the
backend property suite hammers this; here it guards the measured
configurations).
"""

import pytest

from repro.analysis.report import TextTable
from repro.aws import billing
from repro.sim import Simulation

from conftest import save_result

SHARD_COUNTS = (1, 4, 16)
PLACEMENTS = ("sdb", "ddb", "mixed")
PROGRAM = "blast"


@pytest.fixture(scope="module")
def placed_sims(live_events):
    """One loaded s3+simpledb deployment per (placement, shard count),
    with the metered cost of the load itself."""
    sims = {}
    for placement in PLACEMENTS:
        for shards in SHARD_COUNTS:
            sim = Simulation(
                architecture="s3+simpledb", seed=17, shards=shards,
                placement=placement,
            )
            before = sim.account.meter.snapshot()
            sim.store_events(live_events, collect=False)
            load_usage = sim.account.meter.snapshot() - before
            sims[(placement, shards)] = (sim, load_usage)
    return sims


@pytest.fixture(scope="module")
def query_rows(placed_sims):
    rows = {}
    for key, (sim, _) in placed_sims.items():
        engine = sim.query_engine()
        q2 = engine.q2_outputs_of(PROGRAM)
        q3 = engine.q3_descendants_of(PROGRAM)
        q1 = engine.q1(q2.refs[0])
        rows[key] = {"q1": q1, "q2": q2, "q3": q3}
    return rows


def _usd(sim, usage) -> float:
    return sim.account.prices.cost(usage).total


def test_multibackend_table(benchmark, placed_sims, query_rows, live_events):
    benchmark(
        placed_sims[("mixed", 16)][0].query_engine().q2_outputs_of, PROGRAM
    )
    table = TextTable(
        ["placement", "shards", "store ops", "store $", "Q1 ops", "Q2 ops",
         "Q3 ops", "Q3 bytes", "Q3 ms", "queries $", "RCU", "WCU"],
        title=(
            f"Heterogeneous shard placement ({len(live_events)}-object "
            f"repository, queries on {PROGRAM!r})"
        ),
    )
    for placement in PLACEMENTS:
        for shards in SHARD_COUNTS:
            sim, load_usage = placed_sims[(placement, shards)]
            rows = query_rows[(placement, shards)]
            query_usage = rows["q1"].usage
            for name in ("q2", "q3"):
                query_usage = _merge(query_usage, rows[name].usage)
            table.add_row(
                placement,
                shards,
                load_usage.request_count(),
                f"{_usd(sim, load_usage):.4f}",
                rows["q1"].operations,
                rows["q2"].operations,
                rows["q3"].operations,
                rows["q3"].bytes_out,
                f"{rows['q3'].latency * 1000:.0f}",
                f"{_usd(sim, query_usage):.6f}",
                f"{query_usage.read_units(billing.DDB):.1f}",
                f"{load_usage.write_units(billing.DDB):.0f}",
            )
    save_result("multibackend_placement", table.render())


def _merge(a, b):
    """Sum two usage snapshots (Usage supports only subtraction)."""
    from collections import Counter

    def add(pairs_a, pairs_b):
        counter = Counter(dict(pairs_a))
        counter.update(dict(pairs_b))
        return tuple(sorted(counter.items()))

    from repro.aws.billing import Usage

    return Usage(
        requests=add(a.requests, b.requests),
        bytes_in=add(a.bytes_in, b.bytes_in),
        bytes_out=add(a.bytes_out, b.bytes_out),
        byte_seconds=add(a.byte_seconds, b.byte_seconds),
        stored_bytes=a.stored_bytes,
        box_usage_hours=a.box_usage_hours + b.box_usage_hours,
        read_capacity_units=add(a.read_capacity_units, b.read_capacity_units),
        write_capacity_units=add(a.write_capacity_units, b.write_capacity_units),
    )


def test_results_identical_across_placements(query_rows):
    for shards in SHARD_COUNTS:
        baseline = query_rows[("sdb", shards)]
        for placement in ("ddb", "mixed"):
            rows = query_rows[(placement, shards)]
            for name in ("q1", "q2", "q3"):
                assert set(rows[name].refs) == set(baseline[name].refs), (
                    f"{name} differs under {placement} at shards={shards}"
                )


def test_mixed_per_backend_split_sums_exactly(query_rows):
    for shards in (4, 16):
        rows = query_rows[("mixed", shards)]
        for name in ("q2", "q3"):
            measurement = rows[name]
            kinds = {kind for kind, _, _ in measurement.per_backend}
            assert kinds == {"sdb", "ddb"}
            assert (
                sum(ops for _, ops, _ in measurement.per_backend)
                == measurement.operations
            )
            assert (
                sum(nbytes for _, _, nbytes in measurement.per_backend)
                == measurement.bytes_out
            )


def test_ddb_q1_all_needs_fewer_requests_than_sdb(placed_sims):
    """Scan pages carry whole items, so Q1-over-everything on DynamoDB
    style shards avoids SimpleDB's per-item GetAttributes round trips."""
    sdb_sim, _ = placed_sims[("sdb", 4)]
    ddb_sim, _ = placed_sims[("ddb", 4)]
    sdb_q1_all = sdb_sim.query_engine().q1_all()
    ddb_q1_all = ddb_sim.query_engine().q1_all()
    assert set(ddb_q1_all.refs) == set(sdb_q1_all.refs)
    assert ddb_q1_all.operations < sdb_q1_all.operations


def test_sdb_q2_needs_fewer_bytes_than_ddb_scan(query_rows):
    """Server-side predicates return only matches; a scan pays transfer
    for every item it filters — the query-language asymmetry, visible
    in bytes out."""
    for shards in SHARD_COUNTS:
        sdb_q2 = query_rows[("sdb", shards)]["q2"]
        ddb_q2 = query_rows[("ddb", shards)]["q2"]
        assert sdb_q2.bytes_out < ddb_q2.bytes_out
