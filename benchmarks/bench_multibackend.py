"""Heterogeneous shard placement — Scan vs GSI vs SimpleDB cost/latency.

The §6 discussion treats SimpleDB as one plausible provenance store;
the backend protocol makes the placement a knob, and the GSI subsystem
makes the DynamoDB-style store's *access path* a knob too. This
benchmark loads the same live trace into four placements — all-SimpleDB
(queried through both the bracket Query and SELECT front-ends),
all-DynamoDB answered by Scan, all-DynamoDB answered by GSI Query, and
mixed (even shards SDB, odd DDB+GSI) — at N ∈ {1, 4, 16} and reports,
from meter deltas:

* write-path cost: operations, USD, and write-capacity units to store
  the trace — the GSI rows pay visible *write amplification* (every
  changed index entry is an index write) and that is the honest price
  of the index;
* Q1/Q2/Q3 operations, bytes out, modeled latency, and USD — Scan
  answered Q2/Q3 pay read amplification for every item they cross,
  GSI-answered Q2/Q3 pay only for matching projected entries (strictly
  dominating Scan in read ops, bytes, and USD — pinned below), while
  SimpleDB's server-side predicates remain the 2009 baseline;
* the per-backend spend split under mixed placement
  (``QueryMeasurement.per_backend``), which must sum exactly to the
  query totals.

Result sets must be identical across every regime at every N (the GSI
property suite hammers this; here it guards the measured
configurations).
"""

import pytest

from repro.analysis.report import TextTable
from repro.aws import billing
from repro.aws.billing import Usage
from repro.query.engine import SimpleDBEngine
from repro.sim import Simulation

from conftest import save_result

SHARD_COUNTS = (1, 4, 16)
#: name → Simulation knobs. Index specs are pinned per configuration so
#: the comparison is immune to the REPRO_DDB_INDEXES environment.
CONFIGS = {
    "sdb": dict(placement="sdb", ddb_indexes=""),
    "ddb-scan": dict(placement="ddb", ddb_indexes=""),
    "ddb-gsi": dict(placement="ddb", ddb_indexes="name,input"),
    "mixed": dict(placement="mixed", ddb_indexes="name,input"),
}
#: Rows derived without their own deployment: SELECT is the same sdb
#: store queried through the other 2009 wire language.
REGIMES = ("sdb", "sdb-select", "ddb-scan", "ddb-gsi", "mixed")
PROGRAM = "blast"


@pytest.fixture(scope="module")
def placed_sims(live_events):
    """One loaded s3+simpledb deployment per (config, shard count),
    with the metered cost of the load itself."""
    sims = {}
    for config, knobs in CONFIGS.items():
        for shards in SHARD_COUNTS:
            sim = Simulation(
                architecture="s3+simpledb", seed=17, shards=shards, **knobs
            )
            before = sim.account.meter.snapshot()
            sim.store_events(live_events, collect=False)
            load_usage = sim.account.meter.snapshot() - before
            sims[(config, shards)] = (sim, load_usage)
    return sims


def _engine(placed_sims, regime, shards):
    if regime == "sdb-select":
        sim, _ = placed_sims[("sdb", shards)]
        return SimpleDBEngine(
            sim.account, router=sim.store.router, select_mode=True
        )
    return placed_sims[(regime, shards)][0].query_engine()


def _load_row(placed_sims, regime, shards):
    config = "sdb" if regime == "sdb-select" else regime
    return placed_sims[(config, shards)]


@pytest.fixture(scope="module")
def query_rows(placed_sims):
    rows = {}
    for regime in REGIMES:
        for shards in SHARD_COUNTS:
            engine = _engine(placed_sims, regime, shards)
            q2 = engine.q2_outputs_of(PROGRAM)
            q3 = engine.q3_descendants_of(PROGRAM)
            q1 = engine.q1(q2.refs[0])
            rows[(regime, shards)] = {"q1": q1, "q2": q2, "q3": q3}
    return rows


def _usd(sim, usage) -> float:
    return sim.account.prices.cost(usage).total


def _query_usage(rows) -> Usage:
    return rows["q1"].usage + rows["q2"].usage + rows["q3"].usage


def _read_units(usage) -> float:
    """Consumed read capacity across base tables and their indexes."""
    return usage.read_units(billing.DDB) + usage.read_units(billing.DDB_GSI)


def test_multibackend_table(benchmark, placed_sims, query_rows, live_events):
    benchmark(
        placed_sims[("ddb-gsi", 16)][0].query_engine().q2_outputs_of, PROGRAM
    )
    table = TextTable(
        ["regime", "shards", "store ops", "store $", "WCU", "Q1 ops",
         "Q2 ops", "Q3 ops", "Q3 bytes", "Q3 ms", "queries $", "RCU"],
        title=(
            f"Scan vs GSI vs SimpleDB placement ({len(live_events)}-object "
            f"repository, queries on {PROGRAM!r})"
        ),
    )
    for regime in REGIMES:
        for shards in SHARD_COUNTS:
            sim, load_usage = _load_row(placed_sims, regime, shards)
            rows = query_rows[(regime, shards)]
            query_usage = _query_usage(rows)
            table.add_row(
                regime,
                shards,
                load_usage.request_count(),
                f"{_usd(sim, load_usage):.4f}",
                f"{load_usage.write_units(billing.DDB) + load_usage.write_units(billing.DDB_GSI):.0f}",
                rows["q1"].operations,
                rows["q2"].operations,
                rows["q3"].operations,
                rows["q3"].bytes_out,
                f"{rows['q3'].latency * 1000:.0f}",
                f"{_usd(sim, query_usage):.6f}",
                f"{_read_units(query_usage):.1f}",
            )
    save_result("multibackend_placement", table.render())


def test_results_identical_across_regimes(query_rows):
    for shards in SHARD_COUNTS:
        baseline = query_rows[("sdb", shards)]
        for regime in REGIMES[1:]:
            rows = query_rows[(regime, shards)]
            for name in ("q1", "q2", "q3"):
                assert set(rows[name].refs) == set(baseline[name].refs), (
                    f"{name} differs under {regime} at shards={shards}"
                )


def test_gsi_strictly_dominates_scan(placed_sims, query_rows):
    """The acceptance bar: GSI-served Q2/Q3 beat Scan-served Q2/Q3
    strictly in bytes out, read units, modeled latency, and query USD
    at every measured N, and strictly in read operations at N=4 (and
    N=1) where per-shard tables overflow a scan page. At N=16 a tiny
    smoke-scale table can fit one scan page, collapsing the request
    counts to a tie — never a GSI loss."""
    for shards in SHARD_COUNTS:
        scan_rows = query_rows[("ddb-scan", shards)]
        gsi_rows = query_rows[("ddb-gsi", shards)]
        for name in ("q2", "q3"):
            scan, gsi = scan_rows[name], gsi_rows[name]
            if shards <= 4:
                assert gsi.operations < scan.operations, (name, shards)
            else:
                assert gsi.operations <= scan.operations, (name, shards)
            assert gsi.bytes_out < scan.bytes_out, (name, shards)
            assert gsi.latency < scan.latency, (name, shards)
            assert _read_units(gsi.usage) < _read_units(scan.usage), (
                name, shards,
            )
        scan_sim, _ = placed_sims[("ddb-scan", shards)]
        gsi_sim, _ = placed_sims[("ddb-gsi", shards)]
        assert _usd(gsi_sim, _query_usage(gsi_rows)) < _usd(
            scan_sim, _query_usage(scan_rows)
        ), shards


def test_gsi_write_amplification_is_visible(placed_sims):
    """The index is not free: the GSI placement's write path consumes
    strictly more write units than the scan placement's — itemised on
    the dynamodb.gsi billing lines rather than hidden."""
    for shards in SHARD_COUNTS:
        _, scan_load = placed_sims[("ddb-scan", shards)]
        _, gsi_load = placed_sims[("ddb-gsi", shards)]
        assert gsi_load.write_units(billing.DDB_GSI) > 0
        assert scan_load.write_units(billing.DDB_GSI) == 0
        assert gsi_load.write_units(billing.DDB) == scan_load.write_units(
            billing.DDB
        )


def test_mixed_per_backend_split_sums_exactly(query_rows):
    for shards in (4, 16):
        rows = query_rows[("mixed", shards)]
        for name in ("q2", "q3"):
            measurement = rows[name]
            kinds = {kind for kind, _, _ in measurement.per_backend}
            assert kinds == {"sdb", "ddb"}
            assert (
                sum(ops for _, ops, _ in measurement.per_backend)
                == measurement.operations
            )
            assert (
                sum(nbytes for _, _, nbytes in measurement.per_backend)
                == measurement.bytes_out
            )


def test_ddb_q1_all_needs_fewer_requests_than_sdb(placed_sims):
    """Scan pages carry whole items, so Q1-over-everything on DynamoDB
    style shards avoids SimpleDB's per-item GetAttributes round trips
    (GSIs play no part in Q1 — no predicate to serve)."""
    sdb_sim, _ = placed_sims[("sdb", 4)]
    ddb_sim, _ = placed_sims[("ddb-scan", 4)]
    sdb_q1_all = sdb_sim.query_engine().q1_all()
    ddb_q1_all = ddb_sim.query_engine().q1_all()
    assert set(ddb_q1_all.refs) == set(sdb_q1_all.refs)
    assert ddb_q1_all.operations < sdb_q1_all.operations


def test_sdb_q2_needs_fewer_bytes_than_ddb_scan(query_rows):
    """Server-side predicates return only matches; a scan pays transfer
    for every item it filters — the query-language asymmetry, visible
    in bytes out."""
    for shards in SHARD_COUNTS:
        sdb_q2 = query_rows[("sdb", shards)]["q2"]
        ddb_q2 = query_rows[("ddb-scan", shards)]["q2"]
        assert sdb_q2.bytes_out < ddb_q2.bytes_out
