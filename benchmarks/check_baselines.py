"""CI perf-regression gate: metered query totals vs committed baselines.

The whole evaluation is denominated in what the simulated AWS services
meter, so a change that silently alters an operation or byte count is a
perf (and cost) regression even when every result set is still correct.
This script freezes the key totals — Q1/Q2/Q3 operations and bytes_out
at shards ∈ {1, 4} over a fixed seeded workload, for the all-SimpleDB
placement (the paper baseline, keys ``shards=N/...``) and for the
DynamoDB placement in both access regimes (Scan-served ``ddb-scan/...``
and GSI-served ``ddb-gsi/...``, the latter also pinning the write
path's index write-unit amplification) — into
``benchmarks/baselines.json`` and fails when a run drifts from the
committed numbers. The ``migration/...`` keys additionally pin the
online-migration headline totals (items copied, double-writes, WAL
records captured/replayed, cutover epochs, and overhead ops/bytes) for
a grow-under-traffic and an sdb→ddb-flip-with-GSI-backfill scenario, so
a change to the live protocol's request streams is just as visible in
review as a query-path drift. The ``group-commit/wb=N`` keys pin the
batched A3 write path's request totals at widths 1/8/25 — the wb=1 row
is the meter-identity sentinel for the legacy single-request path.

Usage::

    PYTHONPATH=src python benchmarks/check_baselines.py            # gate
    PYTHONPATH=src python benchmarks/check_baselines.py --write    # rebaseline

``make bench-check`` runs the gate; CI runs it as the ``bench-gate``
job. A PR that legitimately changes a metered total must update the
baseline file in the same PR (with ``--write``) so the drift is visible
in review, never silent. The ``read-cache/...`` keys pin the
ElastiCache-tier contract with the knob held both ways: the ``off``
rows are the byte-identity sentinel (zero ``elasticache`` operations,
backend totals identical to the uncached path), and the ``on`` rows
freeze the headline collapse — a repeated Q2/Q3 answers from memoised
ancestry closures with zero backend operations. The ``matrix/*`` keys
pin the ``repro matrix`` quick grid — the new skewed/deep generators'
event streams, the runner's metered totals per cell, and the trace
codec's replay identity (``replay_ok`` = 1).

The workload and queries are fully deterministic (seeded RNG, MD5 shard
routing, strong consistency), so totals are exact integers — comparison
is equality, not a tolerance band.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).parent / "baselines.json"

#: Fixed workload scale — big enough that Q2/Q3 exercise batching and
#: pagination, small enough for a CI gate (a few seconds).
SCALE = 2.0
SEED = 7
PROGRAM = "blast"
SHARD_COUNTS = (1, 4)


def measure() -> dict[str, int]:
    """Run the gate workload and return the metered totals, keyed flat."""
    from repro.aws import billing
    from repro.sim import Simulation
    from repro.workloads import CombinedWorkload

    workload = CombinedWorkload()
    events = list(workload.iter_events(random.Random(f"bench-gate:{SEED}"), SCALE))
    totals: dict[str, int] = {}
    # Placements and index specs pinned explicitly: the gate freezes
    # each regime's totals and must inherit neither
    # REPRO_BACKEND_PLACEMENT nor REPRO_DDB_INDEXES. The all-SimpleDB
    # keys keep their historical names so any drift in the paper
    # baseline stays byte-obvious in a diff.
    regimes = (
        ("shards={shards}", "sdb", ""),
        ("ddb-scan/shards={shards}", "ddb", ""),
        ("ddb-gsi/shards={shards}", "ddb", "name,input"),
    )
    for prefix_template, placement, indexes in regimes:
        for shards in SHARD_COUNTS:
            sim = Simulation(
                architecture="s3+simpledb", seed=SEED, shards=shards,
                placement=placement, ddb_indexes=indexes,
            )
            before = sim.account.meter.snapshot()
            sim.store_events(events, collect=False)
            load = sim.account.meter.snapshot() - before
            prefix = prefix_template.format(shards=shards)
            if indexes:
                # Write amplification is part of the regime's contract.
                totals[f"{prefix}/load/index_wcu"] = int(
                    load.write_units(billing.DDB_GSI)
                )
            engine = sim.query_engine()
            q2 = engine.q2_outputs_of(PROGRAM)
            q3 = engine.q3_descendants_of(PROGRAM)
            q1 = engine.q1(q2.refs[0])
            for name, measurement in (("q1", q1), ("q2", q2), ("q3", q3)):
                totals[f"{prefix}/{name}/ops"] = measurement.operations
                totals[f"{prefix}/{name}/bytes_out"] = measurement.bytes_out
                totals[f"{prefix}/{name}/results"] = measurement.result_count
    totals.update(measure_migration(events))
    totals.update(measure_group_commit(events))
    totals.update(measure_read_cache(events))
    totals.update(measure_matrix())
    totals.update(measure_planner())
    return totals


def measure_planner() -> dict[str, int]:
    """Query-planner totals with the knob pinned each way (``planner/*``).

    Runs the two planner rows of the compare matrix (deep lineage and
    the incremental-compile time-range workload) on the composite-GSI
    DynamoDB cell under ``planner ∈ {off, first-fit, cost}`` and
    freezes operations, read units (doubled to stay integral), and
    metered/predicted spend in nano-USD. The ``off`` rows are the
    byte-identity sentinel for the default path; ``off_env_identity``
    additionally pins that an explicit ``"off"`` and an unset knob
    build meter-identical engines. The ff-vs-cost rows make the
    planner's contract — never more expensive, strictly cheaper where a
    range slice beats a whole-partition read — a reviewable diff.
    """
    from repro.bench.matrix import Q4_VERSION_RANGE, default_cells, default_workloads

    specs = {s.key: s for s in default_workloads()}
    cell = next(c for c in default_cells() if c.key == "ddb-planner-cost-4")

    def run(workload_key: str, planner: str | None) -> dict[str, int]:
        spec = specs[workload_key]
        rng = spec.rep_rng(SEED, 0)
        timed = list(spec.workload.iter_timed_events(rng, spec.scale))
        from repro.sim import Simulation

        sim = Simulation(
            architecture=cell.architecture, seed=SEED, shards=cell.shards,
            placement=cell.placement, ddb_indexes=cell.ddb_indexes,
            planner=planner,
        )
        if spec.workload.timed:
            sim.store_timed_events(timed, collect=False)
        else:
            sim.store_events([event for _, event in timed], collect=False)
        engine = sim.query_engine()
        before = sim.account.meter.snapshot()
        q2 = engine.q2_outputs_of(spec.program)
        q3 = engine.q3_descendants_of(spec.program)
        q4 = engine.q4_time_range(*Q4_VERSION_RANGE)
        spent = sim.account.meter.snapshot() - before
        predicted = [
            m.predicted_cost for m in (q2, q3, q4) if m.predicted_cost is not None
        ]
        return {
            "q2_ops": q2.operations,
            "q3_ops": q3.operations,
            "q4_ops": q4.operations,
            "q4_results": q4.result_count,
            "q4_ru_x2": int(q4.usage.read_units() * 2),
            "metered_nanousd": int(
                round(sim.account.prices.cost(spent).total * 1e9)
            ),
            "predicted_nanousd": (
                int(round(sum(predicted) * 1e9)) if predicted else 0
            ),
        }

    totals: dict[str, int] = {}
    for workload_key in ("deep-lineage", "time-range"):
        rows = {mode: run(workload_key, mode) for mode in ("off", "first-fit", "cost")}
        # An unset knob (None → environment → off) must meter exactly
        # like the explicit "off" — the sentinel that keeps the default
        # path byte-identical no matter how the knob is plumbed. The
        # environment is cleared for the probe so a CI matrix pass with
        # REPRO_QUERY_PLANNER exported gates the same totals.
        import os

        from repro.query.planner import PLANNER_ENV

        saved = os.environ.pop(PLANNER_ENV, None)
        try:
            rows_default = run(workload_key, None)
        finally:
            if saved is not None:
                os.environ[PLANNER_ENV] = saved
        totals[f"planner/{workload_key}/off_env_identity"] = int(
            rows_default == rows["off"]
        )
        for mode, row in rows.items():
            for metric, value in row.items():
                totals[f"planner/{workload_key}/{mode}/{metric}"] = value
    return totals


def measure_matrix() -> dict[str, int]:
    """Matrix-runner totals over the reduced CI grid (``matrix/*`` keys).

    One repetition of the ``--quick`` grid (Zipfian fleet + deep
    lineage × sdb-1 / sdb-4-cache) pins the new generators' event
    streams and the runner's load/query/probe request totals. The
    ``replay_ok`` rows freeze the codec honesty check: repetition 0
    serialised through the JSONL trace format must replay to a
    byte-identical meter (1 = held).
    """
    from repro.bench.matrix import quick_cells, quick_workloads, run_matrix

    report = run_matrix(
        quick_workloads(scale=0.5), quick_cells(), reps=1, seed=SEED, probe_reads=16
    )
    totals: dict[str, int] = {}
    metrics = (
        "events", "load_ops", "load_bytes_in",
        "q2_ops", "q2_results", "q3_ops", "q3_results", "probe_ops",
    )
    for entry in report.grid:
        prefix = f"matrix/{entry.workload}/{entry.cell}"
        totals[f"{prefix}/replay_ok"] = int(bool(entry.replay_ok))
        for metric in metrics:
            totals[f"{prefix}/{metric}"] = int(entry.stats[metric]["median"])
    return totals


def measure_group_commit(events) -> dict[str, int]:
    """Batched write-path totals at the three headline widths.

    The ``wb=1`` row doubles as the meter-identity sentinel: it must
    stay byte-identical to what the pre-batching A3 write path spent,
    so any accidental change to the legacy single-request path shows up
    here even with batching off everywhere else.
    """
    from repro.aws import billing
    from repro.sim import Simulation

    sample = events[: len(events) // 2]
    totals: dict[str, int] = {}
    for width in (1, 8, 25):
        sim = Simulation(
            architecture="s3+simpledb+sqs", seed=SEED,
            write_batch=width, commit_threshold=1000,
        )
        before = sim.account.meter.snapshot()
        sim.store_events(sample, collect=False)
        load = sim.account.meter.snapshot() - before
        prefix = f"group-commit/wb={width}"
        totals[f"{prefix}/ops"] = load.request_count()
        totals[f"{prefix}/sdb_ops"] = load.request_count(billing.SDB)
        totals[f"{prefix}/sqs_ops"] = load.request_count(billing.SQS)
    return totals


def measure_read_cache(events) -> dict[str, int]:
    """Read-cache tier totals with the knob pinned both ways.

    The mode is passed explicitly (``off``/``on``) so these keys
    inherit nothing from ``REPRO_READ_CACHE``. The ``off`` rows are the
    byte-identity sentinel — zero cache operations, backend totals
    equal on first and repeated runs. The ``on`` rows freeze the
    headline collapse: the repeated Q2/Q3 answers entirely from the
    authority's memoised closures (zero backend operations), and the
    hit counter pins the item-level cache behaviour on the first runs.
    """
    from repro.sim import Simulation

    totals: dict[str, int] = {}
    for mode in ("off", "on"):
        sim = Simulation(
            architecture="s3+simpledb", seed=SEED, shards=4, read_cache=mode,
        )
        sim.store_events(events, collect=False)
        engine = sim.query_engine()
        q2_first = engine.q2_outputs_of(PROGRAM)
        q2_repeat = engine.q2_outputs_of(PROGRAM)
        q3_first = engine.q3_descendants_of(PROGRAM)
        q3_repeat = engine.q3_descendants_of(PROGRAM)
        prefix = f"read-cache/{mode}"
        for name, first, repeat in (
            ("q2", q2_first, q2_repeat),
            ("q3", q3_first, q3_repeat),
        ):
            totals[f"{prefix}/{name}/first_ops"] = first.operations
            totals[f"{prefix}/{name}/repeat_ops"] = repeat.operations
            totals[f"{prefix}/{name}/repeat_cache_ops"] = repeat.cache_operations
            totals[f"{prefix}/{name}/results"] = repeat.result_count
        if mode == "on":
            cache = sim.account.read_cache
            totals[f"{prefix}/hits"] = cache.hits
            totals[f"{prefix}/evictions"] = cache.evictions
    return totals


def measure_migration(events) -> dict[str, int]:
    """Online-migration headline totals under deterministic live traffic.

    Half the workload is stored up front; the rest lands one event per
    state-machine step, so the copy (WAL capture), double-write, and
    catch-up windows all see writes. Strong consistency + seeded
    routing make every counter an exact integer.
    """
    from repro.sharding import ShardRouter
    from repro.sim import Simulation

    scenarios = (
        ("migration/grow-sdb-1to4", dict(shards=1, placement="sdb"),
         dict(shards=4, placement="sdb"), ""),
        ("migration/flip-2sdb-to-2ddb-gsi", dict(shards=2, placement="sdb"),
         dict(shards=2, placement="ddb"), "name,input"),
    )
    totals: dict[str, int] = {}
    for prefix, source, target, indexes in scenarios:
        sim = Simulation(
            architecture="s3+simpledb", seed=SEED, ddb_indexes=indexes, **source
        )
        sim.store_events(events[: len(events) // 2], collect=False)
        migration = sim.start_migration(router=ShardRouter(**target))
        index = len(events) // 2
        while True:
            if index < len(events):
                sim.store.store(events[index])
                index += 1
            if not migration.step():
                break
        while index < len(events):
            sim.store.store(events[index])
            index += 1
        sim.settle()
        report = migration.report
        overhead = report.overhead_usage()
        totals[f"{prefix}/copied"] = report.items_moved
        totals[f"{prefix}/double_writes"] = report.double_writes
        totals[f"{prefix}/wal_records"] = report.wal_records
        totals[f"{prefix}/replayed"] = report.replayed_records
        totals[f"{prefix}/cutover_epochs"] = report.cutover_epochs
        totals[f"{prefix}/scrub_deletes"] = report.scrub_deletes
        totals[f"{prefix}/overhead_ops"] = overhead.request_count()
        totals[f"{prefix}/overhead_bytes_out"] = overhead.transfer_out()
        if indexes:
            totals[f"{prefix}/index_wcu"] = int(report.index_write_units)
    return totals


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help="rewrite baselines.json from this run (commit the diff)",
    )
    args = parser.parse_args(argv)

    totals = measure()
    if args.write:
        BASELINE_PATH.write_text(json.dumps(totals, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(totals)} baseline totals to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"FAIL: {BASELINE_PATH} missing; run with --write and commit it")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    drifted = []
    for key in sorted(set(baseline) | set(totals)):
        expected = baseline.get(key)
        actual = totals.get(key)
        if expected != actual:
            drifted.append(f"  {key}: baseline={expected} actual={actual}")
    if drifted:
        print("FAIL: metered totals drifted from benchmarks/baselines.json")
        print("\n".join(drifted))
        print(
            "\nIf the drift is intended, rebaseline in this PR:\n"
            "  PYTHONPATH=src python benchmarks/check_baselines.py --write"
        )
        return 1
    print(f"bench-gate OK: {len(totals)} metered totals match baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
