"""Extension experiment — the provenance-aware cloud (paper §7).

The paper closes with: "we plan to investigate how a cloud might take
advantage of this provenance." This benchmark runs that investigation
over the reproduction's own workloads: replay each workload's read
sequence through an LRU cache, with and without provenance-guided
prefetching, and report the dedup/placement opportunities the stored
provenance exposes.
"""

import random

import pytest

from repro.advisor import CacheReplay, ProvenanceAdvisor
from repro.analysis.report import TextTable
from repro.workloads import (
    BlastWorkload,
    CombinedWorkload,
    LinuxCompileWorkload,
    ProvenanceChallengeWorkload,
)

from conftest import save_result

WORKLOADS = {
    "linux-compile": (LinuxCompileWorkload(), 0.25),
    "blast": (BlastWorkload(), 0.6),
    "provchallenge": (ProvenanceChallengeWorkload(), 1.2),
}


@pytest.fixture(scope="module")
def traces():
    return {
        name: list(workload.iter_events(random.Random(f"adv:{name}"), scale))
        for name, (workload, scale) in WORKLOADS.items()
    }


def test_prefetch_hit_rates(benchmark, traces):
    replay = CacheReplay(capacity=24)
    benchmark(replay.replay, traces["provchallenge"], True)
    table = TextTable(
        ["workload", "reads", "hit rate (demand)", "hit rate (advised)",
         "prefetch precision"],
        title="Extension: provenance-guided prefetch (LRU capacity 24)",
    )
    improvements = {}
    for name, events in traces.items():
        base, advised = replay.compare(events)
        improvements[name] = advised.hit_rate - base.hit_rate
        table.add_row(
            name,
            base.accesses,
            f"{base.hit_rate:.3f}",
            f"{advised.hit_rate:.3f}",
            f"{advised.prefetch_precision:.2f}",
        )
    save_result("extension_advisor_prefetch", table.render())
    # Advice must never hurt, and the pipeline-heavy workflow gains.
    assert all(delta >= 0 for delta in improvements.values())
    assert improvements["provchallenge"] > 0


def test_dedup_and_placement_opportunities(benchmark, traces):
    events = list(
        CombinedWorkload().iter_events(random.Random("adv:combined"), 0.2)
    )
    advisor = benchmark.pedantic(
        lambda: ProvenanceAdvisor.from_bundles(
            b for e in events for b in e.all_bundles()
        ),
        rounds=1,
        iterations=1,
    )
    dedup = advisor.dedup_report()
    groups = advisor.placement_groups()
    lines = [
        "Extension: what stored provenance tells the provider",
        f"  duplicate computations: {len(dedup)} groups "
        f"({sum(len(g) - 1 for g in dedup)} redundant objects)",
        f"  co-placement groups (>=2 objects): {len(groups)}; "
        f"largest spans {max((len(g) for g in groups), default=0)} objects",
        f"  learned stage transitions: "
        f"{advisor.model.transitions.most_common(5)}",
    ]
    save_result("extension_advisor_opportunities", "\n".join(lines))
    assert groups, "workflows must yield co-access structure"


def test_bench_model_ingest(benchmark, traces):
    events = traces["linux-compile"]
    bundles = [b for e in events for b in e.all_bundles()]

    def build():
        return ProvenanceAdvisor.from_bundles(bundles)

    advisor = benchmark(build)
    assert len(advisor.model) == len(bundles)
