"""Cost-based query planner — access-path spend vs the first-fit baseline.

Every scatter phase used to take whatever access path its backend's
first-fit rule produced; with composite hash+range GSIs declared, that
rule still reads a whole hash partition where a range-conditioned Query
would read one version slice. This benchmark runs the two planner-cell
rows of the compare matrix (deep lineage and the incremental-compile
time-range workload) under ``planner ∈ {off, first-fit, cost}`` and
pins the headline claims:

* **identical answers** — every query class returns the same result
  set in all three modes (the planner chooses *how* to read, never
  *what* matches);
* **cost mode never pays more** — metered USD over the planned phases
  is ≤ first-fit on both rows, and *strictly* less on both (the Q4
  version-window slice is the visible win: fewer read units on every
  row, strictly fewer Query requests on the time-range row);
* **predictions are honest** — ``predicted_cost`` lands within
  :data:`~repro.query.planner.PREDICTION_ERROR_BOUND` of the metered
  spend for the planned phases, consult included.
"""

import pytest

from repro.analysis.report import TextTable
from repro.bench.matrix import Q4_VERSION_RANGE, default_cells, default_workloads
from repro.query.planner import PREDICTION_ERROR_BOUND

from conftest import save_result

SEED = 7
MODES = ("off", "first-fit", "cost")
ROWS = ("deep-lineage", "time-range")


def planner_cell(mode):
    """The matrix's cost-planner cell with the mode swapped in."""
    from dataclasses import replace

    base = next(c for c in default_cells() if c.key == "ddb-planner-cost-4")
    return replace(base, key=f"ddb-planner-{mode}-4", planner=mode)


def run_row(spec, mode):
    """One (workload, planner mode) run → per-query results + totals."""
    rng = spec.rep_rng(SEED, 0)
    timed = list(spec.workload.iter_timed_events(rng, spec.scale))
    sim = planner_cell(mode).build_simulation(seed=SEED * 1000)
    if spec.workload.timed:
        sim.store_timed_events(timed)
    else:
        sim.store_events([event for _, event in timed])
    engine = sim.query_engine()
    before = sim.usage()
    q2 = engine.q2_outputs_of(spec.program)
    q3 = engine.q3_descendants_of(spec.program)
    q4 = engine.q4_time_range(*Q4_VERSION_RANGE)
    spent = sim.usage() - before
    predicted = [
        m.predicted_cost for m in (q2, q3, q4) if m.predicted_cost is not None
    ]
    return {
        "refs": {"q2": set(q2.refs), "q3": set(q3.refs), "q4": set(q4.refs)},
        "ops": {"q2": q2.operations, "q3": q3.operations, "q4": q4.operations},
        "q4_read_units": q4.usage.read_units(),
        "metered_usd": sim.account.prices.cost(spent).total,
        "predicted_usd": sum(predicted) if predicted else None,
    }


@pytest.fixture(scope="module")
def planner_grid():
    """workload key → mode → run_row results."""
    specs = {s.key: s for s in default_workloads()}
    return {
        key: {mode: run_row(specs[key], mode) for mode in MODES} for key in ROWS
    }


def test_planner_table(benchmark, planner_grid):
    benchmark(
        lambda: run_row(
            next(s for s in default_workloads() if s.key == "time-range"), "cost"
        )
    )
    table = TextTable(
        ["workload", "planner", "q2 ops", "q3 ops", "q4 ops", "q4 RU",
         "metered $ (e-6)", "predicted $ (e-6)", "rel err"],
        title=(
            "Query planner: metered vs predicted spend per mode "
            f"(4 DynamoDB shards, composite GSIs, Q4 window v{Q4_VERSION_RANGE[0]}"
            f"..v{Q4_VERSION_RANGE[1]})"
        ),
    )
    for key in ROWS:
        for mode in MODES:
            row = planner_grid[key][mode]
            predicted = row["predicted_usd"]
            err = (
                abs(predicted - row["metered_usd"]) / row["metered_usd"]
                if predicted is not None
                else None
            )
            table.add_row(
                key, mode,
                row["ops"]["q2"], row["ops"]["q3"], row["ops"]["q4"],
                f"{row['q4_read_units']:.1f}",
                f"{row['metered_usd'] * 1e6:.3f}",
                f"{predicted * 1e6:.3f}" if predicted is not None else "—",
                f"{err:.3f}" if err is not None else "—",
            )
    save_result("planner", table.render())


def test_result_sets_identical_across_modes(planner_grid):
    for key in ROWS:
        base = planner_grid[key]["off"]["refs"]
        for mode in ("first-fit", "cost"):
            assert planner_grid[key][mode]["refs"] == base, (key, mode)


def test_cost_mode_never_pays_more(planner_grid):
    """Cost ≤ first-fit everywhere; strictly cheaper on both rows, with
    the request-count win visible on the multi-page time-range row."""
    for key in ROWS:
        ff = planner_grid[key]["first-fit"]
        cost = planner_grid[key]["cost"]
        assert cost["metered_usd"] < ff["metered_usd"], key
        assert cost["q4_read_units"] < ff["q4_read_units"], key
    assert (
        planner_grid["time-range"]["cost"]["ops"]["q4"]
        < planner_grid["time-range"]["first-fit"]["ops"]["q4"]
    )


def test_predictions_within_bound(planner_grid):
    for key in ROWS:
        for mode in ("first-fit", "cost"):
            row = planner_grid[key][mode]
            err = abs(row["predicted_usd"] - row["metered_usd"]) / row["metered_usd"]
            assert err <= PREDICTION_ERROR_BOUND, (key, mode, err)
        assert planner_grid[key]["off"]["predicted_usd"] is None, key
