"""Online vs offline migration — the metered price of never quiescing.

The offline :func:`repro.sharding.rebalance` is the cheapest possible
layout change (one write per moved item) but is correct only in a
write-quiet window. The online protocol (:mod:`repro.migration`) runs
under a live :class:`~repro.fleet.ClientFleet` and pays for that
capability in double-writes, WAL capture/replay, cutover verification
reads, and a deferred drop-phase scrub. This benchmark runs three
scenarios — grow (N→N′ on SimpleDB), a mixed re-placement, and a full
sdb→ddb backend flip with GSI backfill — each twice:

* **offline**: the fleet drains completely, the cloud quiesces, then
  ``rebalance()`` runs in the quiet window;
* **online**: the second half of the fleet's traces is written *while*
  the migration runs (one protocol step per fleet round, so the copy,
  double-write, catch-up, cutover, and drop phases all see traffic).

Reported from exact meter captures: migration ops / bytes / USD for
both modes, the online overhead broken into the ``migration.*`` billing
lines, and the client-visible cost of the live window — double-write
amplification per store and the modeled latency the mirrored writes add
to a client's critical path. The correctness bar (identical
authoritative snapshots vs a native target-layout deployment) is
asserted, not assumed.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import TextTable
from repro.fleet import ClientFleet
from repro.query.latency import DEFAULT_LATENCY_MODEL
from repro.sharding import ShardRouter, authoritative_snapshot, rebalance
from repro.sim import Simulation

from conftest import save_result

#: (name, source layout, target layout) per scenario; index specs are
#: pinned so the comparison is immune to the REPRO_DDB_INDEXES env.
SCENARIOS = (
    ("grow-sdb-2to6", dict(shards=2, placement="sdb"), dict(shards=6, placement="sdb")),
    ("replace-2to4-mixed", dict(shards=2, placement="sdb"), dict(shards=4, placement="mixed")),
    ("flip-sdb-to-ddb-gsi", dict(shards=4, placement="sdb"), dict(shards=4, placement="ddb")),
)
N_CLIENTS = 3
SEED = 23
DDB_INDEXES = "name,input"


def _fleet(source) -> ClientFleet:
    return ClientFleet(
        n_clients=N_CLIENTS,
        architecture="s3+simpledb",
        seed=SEED,
        ddb_indexes=DDB_INDEXES,
        **source,
    )


def _traces(live_events):
    return [live_events[i : i + 6] for i in range(0, len(live_events), 6)]


@pytest.fixture(scope="module")
def migration_runs(live_events):
    """offline/online run per scenario, with reports and meter deltas."""
    runs = {}
    for name, source, target in SCENARIOS:
        traces = _traces(live_events)

        # Offline: load everything, quiesce, rebalance in the quiet window.
        offline = _fleet(source)
        offline.scatter(traces)
        offline.run_round_robin()
        offline.account.quiesce()
        target_router = ShardRouter(**target)
        before = offline.account.meter.snapshot()
        offline_report = rebalance(offline.account, offline.router, target_router)
        offline_usage = offline.account.meter.snapshot() - before
        offline.routing.swap(target_router)

        # Online: half the traces land first, the rest during the move.
        online = _fleet(source)
        online.scatter(traces[: len(traces) // 2])
        online.run_round_robin()
        writes_before = online.total_stored()
        online.scatter(traces[len(traces) // 2 :])
        online_report = online.run_live_migration(batch=2, **target)
        live_writes = online.total_stored() - writes_before

        # Correctness floor: both end states equal a native deployment.
        control = ClientFleet(
            n_clients=N_CLIENTS,
            architecture="s3+simpledb",
            seed=SEED,
            ddb_indexes=DDB_INDEXES,
            **target,
        )
        control.scatter(traces)
        control.run_round_robin()
        oracle = authoritative_snapshot(control.account, control.router)
        assert authoritative_snapshot(online.account, online.router) == oracle
        assert authoritative_snapshot(offline.account, offline.router) == oracle

        runs[name] = dict(
            offline=offline,
            offline_report=offline_report,
            offline_usage=offline_usage,
            online=online,
            online_report=online_report,
            live_writes=live_writes,
        )
    return runs


def _usd(fleet, usage) -> float:
    return fleet.account.prices.cost(usage).total


def test_migration_live_table(benchmark, migration_runs, live_events):
    benchmark(lambda: None)  # table-rendering benchmark: work done in fixtures
    table = TextTable(
        ["scenario", "mode", "moved", "ops", "bytes", "USD", "dbl-wr",
         "replays", "verify", "epochs", "+ms/store"],
        title=(
            f"online vs offline shard migration "
            f"({len(live_events)}-object repository, {N_CLIENTS}-client fleet)"
        ),
    )
    for name, _, _ in SCENARIOS:
        run = migration_runs[name]
        offline_usage = run["offline_usage"]
        table.add_row(
            name, "offline", run["offline_report"].items_moved,
            offline_usage.request_count(), offline_usage.transfer_out(),
            f"{_usd(run['offline'], offline_usage):.4f}",
            0, 0, 0, 1, "0",
        )
        report = run["online_report"]
        overhead = report.overhead_usage()
        # Client-visible latency: the mirrored writes ride the client's
        # synchronous store path, so their modeled seconds spread over
        # the stores issued inside the live window.
        extra_ms = (
            DEFAULT_LATENCY_MODEL.stream_seconds(report.double_write_usage)
            / max(1, run["live_writes"]) * 1000.0
        )
        table.add_row(
            name, "online", report.items_moved,
            overhead.request_count(), overhead.transfer_out(),
            f"{_usd(run['online'], overhead):.4f}",
            report.double_writes, report.replayed_records,
            report.verification_reads, report.cutover_epochs,
            f"{extra_ms:.2f}",
        )
    lines = []
    for name, _, _ in SCENARIOS:
        for label, amount in migration_runs[name]["online_report"].cost_lines(
            migration_runs[name]["online"].account.prices
        ):
            if amount:
                lines.append(f"  {name:<22} {label:<24} ${amount:.6f}")
    save_result(
        "migration_live",
        table.render() + "\n\nonline overhead billing lines:\n" + "\n".join(lines),
    )


def _per_item(run):
    online_report = run["online_report"]
    online = online_report.overhead_usage().request_count() / max(
        1, online_report.items_moved
    )
    offline = run["offline_usage"].request_count() / max(
        1, run["offline_report"].items_moved
    )
    return online, offline


def test_online_pays_more_per_item_but_stays_bounded(migration_runs):
    """The tradeoff the table must show. Raw totals can go either way —
    the online path bulk-copies only what existed before the window
    (later writes ride the double-write/cutover routing for free) and
    drops orphan stores *wholesale* where offline pays a delete per
    item, so a full backend flip can even reach rough parity. Where
    source stores survive into the target layout (the grow scenario),
    online is strictly dearer per moved item: each copy adds its share
    of WAL round trips, mirrored writes, verification reads, and a
    deferred per-item scrub delete. Everywhere, the premium is bounded
    (within 0.5×–4× of the offline per-item spend): never quiescing
    costs a premium, not a blowup."""
    grow_online, grow_offline = _per_item(migration_runs["grow-sdb-2to6"])
    assert grow_online > grow_offline
    for name, run in migration_runs.items():
        online_per_item, offline_per_item = _per_item(run)
        assert online_per_item > offline_per_item * 0.5, name
        assert online_per_item < offline_per_item * 4, name


def test_live_window_counters_are_nonzero(migration_runs):
    """Traffic genuinely hit every window: writes were captured during
    the copy, replayed during catch-up, and mirrored during the
    double-write window; every cutover verified."""
    for name, run in migration_runs.items():
        report = run["online_report"]
        assert report.double_writes > 0, name
        assert report.wal_records > 0, name
        assert report.replayed_records == report.wal_records, name
        assert report.verification_reads > 0, name
        assert report.cutover_epochs == len(
            run["online"].router.domains
        ), name


def test_flip_pays_gsi_backfill_on_migration_lines(migration_runs):
    """The sdb→ddb flip must surface the cost of making the target
    queryable by index: nonzero GSI write units on the online report
    and on the offline RebalanceReport alike."""
    flip = migration_runs["flip-sdb-to-ddb-gsi"]
    assert flip["online_report"].index_write_units > 0
    assert flip["offline_report"].index_write_units > 0
    grow = migration_runs["grow-sdb-2to6"]
    assert grow["online_report"].index_write_units == 0


def test_offline_baseline_unchanged_by_migration_subsystem(live_events):
    """Offline rebalance with default knobs stays the plain cheap path:
    a bare-Simulation rebalance report carries no online counters and
    the migration package is inert without start_migration()."""
    sim = Simulation(architecture="s3+simpledb", seed=SEED, shards=2, placement="sdb")
    sim.store_events(live_events[: len(live_events) // 4], collect=False)
    report = sim.migrate(shards=4, placement="sdb", online=False)
    assert not hasattr(report, "double_writes")
    assert report.index_streamed_items == 0  # no covering GSI declared
    assert sim.store.routing.epoch == 1
