"""Table 1 — properties comparison (paper §3/§4, Table 1).

Regenerates the property matrix by *measurement*: crash injection for
atomicity, adversarial eventual consistency for consistency, crash-at-
every-boundary for causal ordering, and live operation counting for
efficient query. Asserts every cell equals the paper's, and benchmarks
the per-architecture evaluation cost.
"""

import pytest

from repro.analysis.report import TextTable, check_mark
from repro.core.properties import PAPER_TABLE1, evaluate_architecture

from conftest import save_result

ARCHITECTURES = ("s3", "s3+simpledb", "s3+simpledb+sqs")


@pytest.fixture(scope="module")
def reports():
    return {name: evaluate_architecture(name, seed=101) for name in ARCHITECTURES}


def test_render_table1(benchmark, reports):
    benchmark(lambda: [evaluate_architecture('s3', seed=303)])
    table = TextTable(
        ["Architecture", "Atomicity", "Consistency", "Causal Ordering", "Efficient Query"],
        title="Table 1: properties comparison (measured)",
    )
    for name in ARCHITECTURES:
        report = reports[name]
        table.add_row(
            name,
            check_mark(report.atomicity),
            check_mark(report.consistency),
            check_mark(report.causal_ordering),
            check_mark(report.efficient_query),
        )
    lines = [table.render(), "", "paper's Table 1:"]
    for name in ARCHITECTURES:
        expected = PAPER_TABLE1[name]
        lines.append(
            f"  {name:18s} "
            + "  ".join(check_mark(v) for v in expected)
        )
    lines.append("")
    for name in ARCHITECTURES:
        lines.append(f"{name} evidence:")
        for key, detail in reports[name].details.items():
            lines.append(f"  {key}: {detail}")
    save_result("table1_properties", "\n".join(lines))
    for name in ARCHITECTURES:
        assert reports[name].matches_paper(), reports[name].details


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_bench_property_evaluation(benchmark, architecture):
    """Benchmark: full property evaluation of one architecture."""
    report = benchmark.pedantic(
        evaluate_architecture,
        args=(architecture,),
        kwargs={"seed": 202},
        rounds=1,
        iterations=1,
    )
    assert report.matches_paper()
