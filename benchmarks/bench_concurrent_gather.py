"""Concurrent scatter-gather — critical-path latency vs. shard count.

PR 1's sharding made Q2/Q3 scatter every phase across all N domains
*sequentially*, so modeled query latency grew linearly in N even though
the per-shard request streams are independent. The concurrent dispatcher
sends each wave of streams through a bounded worker pool; this benchmark
loads the same live trace at N ∈ {1, 4, 16} and compares, per query:

* **sequential latency** — the one-request-at-a-time sum (what a
  single-threaded client pays; grows with N);
* **critical path** — the modeled makespan of the concurrent dispatch
  (stays roughly flat in N: each phase costs ~the slowest shard).

Total operation counts must match the sequential run *exactly* (the
dispatcher only reorders independent requests) and result sets must be
identical at every N and in both modes.
"""

import pytest

from repro.analysis.report import TextTable
from repro.query.engine import SimpleDBEngine
from repro.sim import Simulation

from conftest import save_result

SHARD_COUNTS = (1, 4, 16)
#: Pool width for the concurrent engines — wide enough that every shard
#: stream of the largest layout gets its own worker.
POOL = 16
PROGRAM = "blast"


@pytest.fixture(scope="module")
def gather_sims(live_events):
    sims = {}
    for shards in SHARD_COUNTS:
        sim = Simulation(architecture="s3+simpledb", seed=29, shards=shards)
        sim.store_events(live_events, collect=False)
        sims[shards] = sim
    return sims


@pytest.fixture(scope="module")
def gather_rows(gather_sims):
    rows = {}
    for shards, sim in gather_sims.items():
        sequential = SimpleDBEngine(
            sim.account, router=sim.store.router, concurrency=1
        )
        concurrent = SimpleDBEngine(
            sim.account, router=sim.store.router, concurrency=POOL
        )
        rows[shards] = {
            "q2_seq": sequential.q2_outputs_of(PROGRAM),
            "q2_conc": concurrent.q2_outputs_of(PROGRAM),
            "q3_seq": sequential.q3_descendants_of(PROGRAM),
            "q3_conc": concurrent.q3_descendants_of(PROGRAM),
        }
    return rows


def test_concurrent_gather_table(benchmark, gather_sims, gather_rows, live_events):
    benchmark(
        SimpleDBEngine(
            gather_sims[16].account,
            router=gather_sims[16].store.router,
            concurrency=POOL,
        ).q2_outputs_of,
        PROGRAM,
    )
    table = TextTable(
        ["shards", "Q2 ops", "Q2 seq ms", "Q2 crit ms", "Q2 speedup",
         "Q3 ops", "Q3 seq ms", "Q3 crit ms", "Q3 speedup"],
        title=(
            f"Concurrent scatter-gather ({len(live_events)}-object repository, "
            f"pool={POOL}, queries on {PROGRAM!r})"
        ),
    )
    for shards in SHARD_COUNTS:
        rows = gather_rows[shards]
        table.add_row(
            shards,
            rows["q2_conc"].operations,
            f"{rows['q2_seq'].latency * 1000:.0f}",
            f"{rows['q2_conc'].latency * 1000:.0f}",
            f"{rows['q2_conc'].speedup:.2f}x",
            rows["q3_conc"].operations,
            f"{rows['q3_seq'].latency * 1000:.0f}",
            f"{rows['q3_conc'].latency * 1000:.0f}",
            f"{rows['q3_conc'].speedup:.2f}x",
        )
    save_result("concurrent_gather", table.render())


def test_operations_match_sequential_exactly(gather_rows):
    for shards in SHARD_COUNTS:
        rows = gather_rows[shards]
        for query in ("q2", "q3"):
            seq, conc = rows[f"{query}_seq"], rows[f"{query}_conc"]
            assert conc.operations == seq.operations
            assert conc.bytes_out == seq.bytes_out
            assert conc.per_shard == seq.per_shard
            assert conc.refs == seq.refs


def test_results_identical_across_shard_counts(gather_rows):
    for query in ("q2_conc", "q3_conc"):
        baseline = set(gather_rows[1][query].refs)
        for shards in SHARD_COUNTS[1:]:
            assert set(gather_rows[shards][query].refs) == baseline


def test_sequential_latency_grows_with_shards(gather_rows):
    for query in ("q2", "q3"):
        seq = [gather_rows[s][f"{query}_seq"].latency for s in SHARD_COUNTS]
        assert seq == sorted(seq), f"{query} sequential latency not monotone"
        # Scatter multiplies request fan-out by N: the one-at-a-time cost
        # at N=16 is far above the single-domain run.
        assert seq[-1] >= 2.0 * seq[0]


def test_critical_path_stays_roughly_flat(gather_rows):
    for query in ("q2", "q3"):
        flat = [gather_rows[s][f"{query}_conc"].latency for s in SHARD_COUNTS]
        seq16 = gather_rows[16][f"{query}_seq"].latency
        # Phases cost ~their slowest shard: growing N 16x may not grow
        # the critical path more than ~2x (vs 16x for the sum) ...
        assert max(flat) <= 2.0 * flat[0] + 1e-9, f"{query}: {flat}"
        # ... and at N=16 the dispatcher must beat one-at-a-time handily.
        assert flat[-1] <= 0.5 * seq16, f"{query}: {flat[-1]} vs {seq16}"


def test_per_shard_accounting_exact_under_concurrency(gather_rows):
    for shards in SHARD_COUNTS:
        for query in ("q2_conc", "q3_conc"):
            m = gather_rows[shards][query]
            assert sum(ops for _, ops, _ in m.per_shard) == m.operations
            assert sum(nbytes for _, _, nbytes in m.per_shard) == m.bytes_out
            assert len(m.per_shard) <= shards
