"""Figures 1–3 — the architecture dataflow diagrams (paper §4).

The paper's three figures are structural, not measured; we regenerate
them from the live architecture objects (so they cannot drift from the
code) and benchmark each architecture's store-path latency as the
figure-level "cost of the extra boxes".
"""

import pytest

from repro.graph.diagrams import render_ascii, render_dot, validate_diagram
from repro.passlib.capture import PassSystem
from repro.sim import Simulation

from conftest import save_result

FIGURES = {
    "s3": "figure1_s3_standalone",
    "s3+simpledb": "figure2_s3_simpledb",
    "s3+simpledb+sqs": "figure3_s3_simpledb_sqs",
}


@pytest.mark.parametrize("arch,figure_name", sorted(FIGURES.items()))
def test_render_figures(benchmark, arch, figure_name):
    store = Simulation(architecture=arch).store
    assert validate_diagram(store) == []
    text = benchmark(lambda: render_ascii(store) + "\n\n" + render_dot(store))
    save_result(figure_name, text)


def test_figures_show_increasing_machinery(benchmark):
    benchmark(lambda: Simulation(architecture='s3').store.components())
    sizes = {}
    for arch in FIGURES:
        store = Simulation(architecture=arch).store
        sizes[arch] = (len(store.components()), len(store.flows()))
    assert sizes["s3"] < sizes["s3+simpledb"] < sizes["s3+simpledb+sqs"]


def one_event(tag: str):
    pas = PassSystem(workload="figbench")
    with pas.process("tool", env={"E": "x" * 900}) as proc:
        proc.write(f"bench/{tag}.dat", b"payload" * 40)
        return proc.close(f"bench/{tag}.dat")


@pytest.mark.parametrize("arch", sorted(FIGURES))
def test_bench_store_path_latency(benchmark, arch):
    """Store-path service calls per close, per architecture."""
    sim = Simulation(architecture=arch, seed=5)
    counter = iter(range(10_000))

    def store_one():
        sim.store.store(one_event(f"n{next(counter)}"))

    benchmark(store_one)
    sim.settle()
    assert sim.store.stores_completed > 0


@pytest.mark.parametrize("arch", sorted(FIGURES))
def test_store_path_operation_counts(benchmark, arch):
    """The figure-level truth: how many service requests one close costs."""
    benchmark(one_event, 'fixture-use')
    sim = Simulation(architecture=arch, seed=6)
    sim.store.store(one_event("warmup"))
    sim.settle()
    before = sim.usage()
    sim.store.store(one_event("probe"))
    sim.settle()
    spent = sim.usage() - before
    lines = [f"service requests for one file close ({arch}):"]
    for (service, op), count in spent.requests:
        lines.append(f"  {service:9s} {op:28s} {count}")
    save_result(f"figure_ops_per_close_{arch.replace('+', '_')}", "\n".join(lines))
    assert spent.request_count() >= 1
