"""Table 2 — storage cost comparison (paper §5, Table 2).

Two reproductions of the same table:

* **analytic at paper scale** — the §5 extrapolation formulas over the
  calibrated combined trace (≈31k objects / ≈1.27 GB), mirroring how the
  paper produced its numbers;
* **live at reduced scale** — every event actually stored through each
  architecture against the simulated cloud, with operation counts read
  from the billing meter (something the paper planned as future work).

The shape assertions encode the paper's qualitative claims: storage
S3 < S3+SimpleDB < S3+SimpleDB+SQS; operations S3 < Raw < S3+SimpleDB <
S3+SimpleDB+SQS; full properties at a tens-of-percent space overhead.
"""

import pytest

from repro.analysis.report import TextTable
from repro.analysis.storage_model import (
    paper_formula_a3_ops,
    render_table2,
    shape_check,
    storage_table,
)
from repro.sim import Simulation
from repro.units import fmt_bytes, fmt_count
from repro.workloads.base import collect_stats

from conftest import save_result

ARCHITECTURES = ("s3", "s3+simpledb", "s3+simpledb+sqs")


def test_table2_analytic_paper_scale(benchmark, paper_stats):
    text = benchmark(render_table2, paper_stats)
    preamble = (
        f"dataset: {fmt_count(paper_stats.n_objects)} objects, "
        f"{fmt_bytes(paper_stats.raw_bytes)} raw data "
        f"(paper: 31,180 objects, 1.27GB)\n"
        f"records >1KB: {fmt_count(paper_stats.n_records_gt_1kb)} "
        f"(paper: 24,952); SimpleDB items: {fmt_count(paper_stats.n_sdb_items)}\n"
    )
    save_result("table2_storage_analytic", preamble + text)
    assert shape_check(paper_stats) == []
    # Primary calibration targets hit within tolerance.
    assert abs(paper_stats.n_objects - 31_180) / 31_180 < 0.05
    assert abs(paper_stats.raw_bytes - 1.27 * 1024**3) / (1.27 * 1024**3) < 0.10


def test_table2_live_reduced_scale(benchmark, live_events):
    """Store the trace through each architecture; meter the truth."""
    benchmark(collect_stats, live_events[:50])
    rows = []
    live_stats = collect_stats(live_events)
    for arch in ARCHITECTURES:
        sim = Simulation(architecture=arch, seed=7)
        sim.store_events(live_events, collect=False)
        usage = sim.usage()
        rows.append(
            (
                arch,
                usage.request_count(),
                usage.transfer_in(),
                sim.account.meter.stored_bytes("s3")
                + sim.account.meter.stored_bytes("simpledb"),
            )
        )
    table = TextTable(
        ["architecture", "requests (metered)", "bytes in", "bytes stored"],
        title=f"Table 2 (live run at scale {len(live_events)} events)",
    )
    baseline_ops = live_stats.n_objects
    for arch, ops, bytes_in, stored in rows:
        table.add_row(arch, ops, fmt_bytes(bytes_in), fmt_bytes(stored))
    footer = (
        f"\nraw baseline: {baseline_ops} store operations, "
        f"{fmt_bytes(live_stats.raw_bytes)} data"
    )
    save_result("table2_storage_live", table.render() + footer)
    # Live ordering mirrors the analytic claim.
    ops_by_arch = {arch: ops for arch, ops, _, _ in rows}
    assert (
        ops_by_arch["s3"]
        < ops_by_arch["s3+simpledb"]
        < ops_by_arch["s3+simpledb+sqs"]
    )


def test_a3_ops_formula_vs_protocol(benchmark, paper_stats):
    """Document the gap between the paper's formula and its protocol."""
    rows = benchmark(storage_table, paper_stats)
    formula = paper_formula_a3_ops(paper_stats)
    protocol = rows["s3+simpledb+sqs"].ops
    text = (
        "A3 operation count, paper formula vs protocol-true:\n"
        f"  paper formula (2*(N+prov/8KB)+items+spills): {fmt_count(formula)}\n"
        f"  protocol-true (incl. begin/data/commit):     {fmt_count(protocol)}\n"
        f"  paper's printed value:                        231,287"
    )
    save_result("table2_a3_ops_gap", text)
    assert formula < protocol


def test_bench_stats_collection(benchmark, live_events):
    """Benchmark: §5 statistics collection over the live trace."""
    stats = benchmark(collect_stats, live_events)
    assert stats.n_objects == len(live_events)


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_bench_store_throughput(benchmark, arch, live_events):
    """Benchmark: full-trace store throughput per architecture."""
    subset = live_events[:150]

    def run():
        sim = Simulation(architecture=arch, seed=11)
        sim.store_events(subset, collect=False)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.store.stores_completed == len(subset)
