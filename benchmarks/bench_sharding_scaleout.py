"""Shard scale-out — Q2/Q3 scatter-gather cost and storage skew.

The §6 discussion concedes one SimpleDB domain bounds capacity and query
throughput; the shard router splits the provenance domain N ways by
consistent hash of the object path. This benchmark loads the same live
trace at N ∈ {1, 4, 16} and reports, from meter deltas:

* Q1 operation count — must be independent of N (single-shard route);
* Q2/Q3 operation counts — the latency proxy; scatter-gather multiplies
  query fan-out by N while per-shard work shrinks;
* storage skew — authoritative items per shard, max/mean vs the 2x
  hash-balance budget.

Result sets must be identical at every N (the property suite hammers
this; here it guards the measured configurations).
"""

import pytest

from repro.analysis.report import TextTable
from repro.sim import Simulation

from conftest import save_result

SHARD_COUNTS = (1, 4, 16)
PROGRAM = "blast"


@pytest.fixture(scope="module")
def sharded_sims(live_events):
    """One loaded s3+simpledb deployment per shard count."""
    sims = {}
    for shards in SHARD_COUNTS:
        sim = Simulation(architecture="s3+simpledb", seed=13, shards=shards)
        sim.store_events(live_events, collect=False)
        sims[shards] = sim
    return sims


@pytest.fixture(scope="module")
def scaleout_rows(sharded_sims):
    rows = {}
    for shards, sim in sharded_sims.items():
        engine = sim.query_engine()
        q2 = engine.q2_outputs_of(PROGRAM)
        q3 = engine.q3_descendants_of(PROGRAM)
        q1 = engine.q1(q2.refs[0])
        rows[shards] = {"q1": q1, "q2": q2, "q3": q3}
    return rows


def test_scaleout_table(benchmark, sharded_sims, scaleout_rows, live_events):
    benchmark(sharded_sims[16].query_engine().q2_outputs_of, PROGRAM)
    table = TextTable(
        ["shards", "Q1 ops", "Q2 ops", "Q3 ops", "Q2 bytes", "Q3 bytes",
         "items max/mean"],
        title=(
            f"Shard scale-out ({len(live_events)}-object repository, "
            f"queries on {PROGRAM!r})"
        ),
    )
    for shards, sim in sharded_sims.items():
        rows = scaleout_rows[shards]
        counts = list(sim.store.router.item_counts(sim.account).values())
        mean = sum(counts) / len(counts)
        table.add_row(
            shards,
            rows["q1"].operations,
            rows["q2"].operations,
            rows["q3"].operations,
            rows["q2"].bytes_out,
            rows["q3"].bytes_out,
            f"{max(counts) / mean:.2f}",
        )
    save_result("sharding_scaleout", table.render())


def test_results_identical_across_shard_counts(scaleout_rows):
    baseline = scaleout_rows[1]
    for shards in SHARD_COUNTS[1:]:
        for query in ("q1", "q2", "q3"):
            assert set(scaleout_rows[shards][query].refs) == set(
                baseline[query].refs
            ), f"{query} diverged at shards={shards}"


def test_q1_operations_independent_of_shard_count(scaleout_rows):
    ops = {shards: rows["q1"].operations for shards, rows in scaleout_rows.items()}
    assert len(set(ops.values())) == 1, f"Q1 must be single-shard: {ops}"


def test_scatter_cost_grows_with_shards(scaleout_rows):
    # Q2/Q3 fan out one query per shard per phase: operation counts are
    # monotone in N and per-shard accounting covers the full spend.
    q2_ops = [scaleout_rows[s]["q2"].operations for s in SHARD_COUNTS]
    assert q2_ops == sorted(q2_ops)
    for shards in SHARD_COUNTS:
        m = scaleout_rows[shards]["q2"]
        assert len(m.per_shard) <= max(shards, 1)
        assert sum(ops for _, ops, _ in m.per_shard) == m.operations
        assert sum(nbytes for _, _, nbytes in m.per_shard) == m.bytes_out


def test_storage_skew_within_hash_balance_budget(sharded_sims):
    sim = sharded_sims[16]
    counts = list(sim.store.router.item_counts(sim.account).values())
    mean = sum(counts) / len(counts)
    assert max(counts) <= 2 * mean, f"overloaded shard: {counts}"
    assert min(counts) >= mean / 2, f"starved shard: {counts}"


def test_unsharded_meter_totals_match_plain_run(live_events):
    # shards=1 must be byte-identical to the seed deployment: same
    # requests, same transfer, same stored bytes.
    plain = Simulation(architecture="s3+simpledb", seed=13)
    plain.store_events(live_events, collect=False)
    routed = Simulation(architecture="s3+simpledb", seed=13, shards=1)
    routed.store_events(live_events, collect=False)
    a, b = plain.usage(), routed.usage()
    assert a.requests == b.requests
    assert a.bytes_in == b.bytes_in
    assert a.bytes_out == b.bytes_out
    assert a.stored_bytes == b.stored_bytes
