"""Workload × architecture matrix — the consolidated compare sweep.

Runs the ``repro matrix`` grid at a benchmark-friendly scale and
renders one row per (workload, cell): metered load operations (median
with the bootstrap CI), USD, Q2/Q3 closure cost, point-read probe cost,
and — on cache-enabled cells — the probe hit rate. Two claims are
asserted, not just printed:

* every cell's repetition 0 survives the JSONL trace codec and replays
  to a **byte-identical** meter (the ``replay_ok`` honesty check);
* Zipfian read probes hit the read cache far more often than uniform
  probes on the *same* cell — skew, not pool size, is what pays for
  the cache tier.
"""

import pytest

from repro.analysis.report import TextTable
from repro.bench.matrix import default_cells, default_workloads, run_matrix

from conftest import save_result

REPS = 3
SEED = 0
PROBE_READS = 40


@pytest.fixture(scope="module")
def matrix_report():
    return run_matrix(
        default_workloads(), default_cells(), reps=REPS, seed=SEED,
        probe_reads=PROBE_READS,
    )


def test_matrix_table(benchmark, matrix_report):
    from repro.bench.matrix import quick_cells, quick_workloads

    benchmark(
        lambda: run_matrix(
            quick_workloads(0.3), quick_cells(), reps=1, probe_reads=8,
            check_replay=False,
        )
    )
    table = TextTable(
        [
            "workload", "cell", "events", "load ops [CI]", "load USD",
            "q2 ops", "q3 ops", "probe ops", "hit rate", "replay",
        ],
        title=f"Workload × architecture matrix (R={REPS}, seed={SEED}, "
        "95% bootstrap CI on medians)",
    )
    for entry in matrix_report.grid:
        load = entry.stats["load_ops"]
        hit = entry.stats.get("probe_hit_rate")
        table.add_row(
            entry.workload,
            entry.cell,
            int(entry.stats["events"]["median"]),
            f"{load['median']:.0f} [{load['ci_low']:.0f}, {load['ci_high']:.0f}]",
            f"{entry.stats['load_usd']['median']:.4f}",
            int(entry.stats["q2_ops"]["median"]),
            int(entry.stats["q3_ops"]["median"]),
            int(entry.stats["probe_ops"]["median"]),
            f"{hit['median']:.0%}" if hit is not None else "-",
            "byte-identical" if entry.replay_ok else "DRIFTED",
        )
    save_result("workload_matrix", table.render())


def test_every_cell_replays_byte_identically(matrix_report):
    drifted = [
        (entry.workload, entry.cell)
        for entry in matrix_report.grid
        if entry.replay_ok is not True
    ]
    assert not drifted, f"trace replay drifted on cells: {drifted}"


def test_zipfian_hit_rate_far_exceeds_uniform(matrix_report):
    for cell in ("sdb-4-cache", "mixed-4-cache"):
        zipf = matrix_report.cell("zipfian", cell).stats["probe_hit_rate"]
        uniform = matrix_report.cell("uniform-blast", cell).stats["probe_hit_rate"]
        assert zipf["median"] > uniform["median"] + 0.15, (
            f"{cell}: zipfian hit rate {zipf['median']:.0%} not >> "
            f"uniform {uniform['median']:.0%}"
        )
