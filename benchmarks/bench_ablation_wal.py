"""Ablation — the A3 commit-daemon threshold (paper §4.3 design choice).

The commit daemon fires when ApproximateNumberOfMessages crosses a
threshold. Sweeping it exposes the trade-off the paper leaves implicit:
a low threshold commits eagerly (short time-to-durable, more receive
calls per message); a high threshold batches (cheaper per message, but
data sits in the WAL longer and the queue grows).
"""

import pytest

from repro.analysis.report import TextTable
from repro.passlib.capture import PassSystem
from repro.sim import Simulation

from conftest import save_result

THRESHOLDS = (1, 5, 20, 80)


def make_events(n: int):
    pas = PassSystem(workload="walsweep")
    events = []
    for i in range(n):
        with pas.process(f"tool{i}", env={"E": "x" * 700}) as proc:
            proc.write(f"sweep/f{i:03d}.dat", f"payload {i}".encode())
            events.append(proc.close(f"sweep/f{i:03d}.dat"))
    return events


@pytest.fixture(scope="module")
def sweep_results():
    results = []
    for threshold in THRESHOLDS:
        sim = Simulation(
            architecture="s3+simpledb+sqs",
            seed=21,
            commit_threshold=threshold,
            pump_every=10_000,  # let the daemon's own trigger decide
        )
        events = make_events(120)
        for event in events:
            sim.store.store(event)
            sim.account.clock.advance(1.0)  # one close per second
        daemon = sim.store.commit_daemon
        triggered_applies = daemon.stats.transactions_applied
        sqs_requests_before_settle = sim.usage().request_count("sqs")
        sim.settle()
        usage = sim.usage()
        results.append(
            {
                "threshold": threshold,
                "applies_before_settle": triggered_applies,
                "sqs_requests": usage.request_count("sqs"),
                "receives": usage.request_count("sqs", "ReceiveMessage"),
                "runs": daemon.stats.runs,
                "deferred": daemon.stats.transactions_deferred,
            }
        )
    return results


def test_wal_threshold_sweep(benchmark, sweep_results):
    benchmark(make_events, 5)
    table = TextTable(
        ["threshold", "applies pre-settle", "daemon runs", "SQS receives", "SQS requests total"],
        title="Ablation: commit-daemon trigger threshold (120 closes, 1/s)",
    )
    for row in sweep_results:
        table.add_row(
            row["threshold"],
            row["applies_before_settle"],
            row["runs"],
            row["receives"],
            row["sqs_requests"],
        )
    save_result("ablation_wal_threshold", table.render())
    # Lower thresholds commit more work before any explicit drain...
    assert (
        sweep_results[0]["applies_before_settle"]
        >= sweep_results[-1]["applies_before_settle"]
    )
    # ...and every configuration eventually drains everything.
    for row in sweep_results:
        assert row["applies_before_settle"] <= 120


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_bench_commit_phase(benchmark, threshold):
    """Benchmark: one commit phase over a 30-transaction backlog."""
    sim = Simulation(
        architecture="s3+simpledb+sqs",
        seed=23,
        commit_threshold=10_000,  # never self-trigger
        pump_every=10_000,
    )
    for event in make_events(30):
        sim.store.store(event)

    daemon = sim.store.commit_daemon

    def commit_all():
        return daemon.drain()

    applied = benchmark.pedantic(commit_all, rounds=1, iterations=1)
    assert applied == 30
