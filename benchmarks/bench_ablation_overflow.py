"""Ablation — the 1 KB spill threshold (paper §4.1/§5 design choice).

The paper spills any record value over 1 KB to its own S3 object "to
avoid" the 2 KB metadata ceiling, paying 24,952 extra PUTs. Sweeping the
threshold shows the trade: spill less (larger threshold) and metadata
pressure forces second-pass spills anyway; spill more (smaller
threshold) and the operation count balloons while metadata shrinks.
"""

import random

import pytest

from repro.analysis.report import TextTable
from repro.passlib.serializer import to_s3_metadata
from repro.units import S3_MAX_METADATA_SIZE, fmt_bytes
from repro.workloads import CombinedWorkload

from conftest import save_result

THRESHOLDS = (256, 512, 1024, 1536, 1900)


@pytest.fixture(scope="module")
def events():
    return list(CombinedWorkload().iter_events(random.Random("spill"), 0.15))


@pytest.fixture(scope="module")
def sweep(events):
    rows = []
    for threshold in THRESHOLDS:
        overflow_objects = 0
        overflow_bytes = 0
        metadata_bytes = 0
        forced_second_pass = 0
        for event in events:
            payload = to_s3_metadata(event, spill_threshold=threshold)
            assert payload.metadata_size <= S3_MAX_METADATA_SIZE
            overflow_objects += len(payload.overflow)
            overflow_bytes += sum(o.size for o in payload.overflow)
            metadata_bytes += payload.metadata_size
            forced_second_pass += sum(
                1 for o in payload.overflow if o.size <= threshold
            )
        rows.append(
            {
                "threshold": threshold,
                "overflow_objects": overflow_objects,
                "overflow_bytes": overflow_bytes,
                "metadata_bytes": metadata_bytes,
                "forced": forced_second_pass,
            }
        )
    return rows


def test_overflow_threshold_sweep(benchmark, sweep, events):
    benchmark(to_s3_metadata, events[0])
    table = TextTable(
        ["spill threshold", "overflow PUTs", "overflow bytes", "metadata bytes",
         "2KB-pressure spills"],
        title=f"Ablation: >threshold spill rule over {len(events)} closes",
    )
    for row in sweep:
        table.add_row(
            fmt_bytes(row["threshold"]),
            row["overflow_objects"],
            fmt_bytes(row["overflow_bytes"]),
            fmt_bytes(row["metadata_bytes"]),
            row["forced"],
        )
    save_result("ablation_overflow_threshold", table.render())
    # Spill ops decrease monotonically as the threshold rises...
    ops = [row["overflow_objects"] for row in sweep]
    assert ops == sorted(ops, reverse=True)
    # ...while metadata bytes grow (more rides inline).
    metadata = [row["metadata_bytes"] for row in sweep]
    assert metadata == sorted(metadata)
    # Above ~1.5 KB the 2 KB ceiling forces second-pass spills, which is
    # why the paper's 1 KB choice is on the efficient frontier.
    assert sweep[-1]["forced"] >= sweep[2]["forced"]


def test_bench_serialization(benchmark, events):
    subset = events[:200]

    def serialize_all():
        return sum(len(to_s3_metadata(e).overflow) for e in subset)

    benchmark(serialize_all)
