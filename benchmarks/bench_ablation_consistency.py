"""Ablation — eventual-consistency window vs read-path retries (§4.2).

The md5‖nonce mechanism turns consistency violations into retries. This
sweep quantifies that cost: as the replica-propagation window grows, how
many extra round trips does a correct read need, and how often would a
*naive* reader (no verification) have returned mismatched data?
"""

import pytest

from repro.analysis.report import TextTable
from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.core.base import RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.errors import NoSuchKey, ReadCorrectnessViolation
from repro.passlib.capture import PassSystem
from repro.passlib.records import Attr, consistency_token

from conftest import save_result

WINDOWS = (0.0, 1.0, 3.0, 6.0)
REWRITES = 40


def rewrite_events(n: int):
    pas = PassSystem(workload="ecsweep")
    events = []
    for i in range(n):
        with pas.process(f"writer{i}") as proc:
            proc.write("hot/object.dat", f"content {i}".encode())
            events.append(proc.close("hot/object.dat"))
    return events


def run_window(window: float):
    account = AWSAccount(
        seed=31,
        consistency=(
            ConsistencyConfig.strong()
            if window == 0
            else ConsistencyConfig.eventual(window=window, immediate_fraction=0.4)
        ),
    )
    store = S3SimpleDB(
        account,
        retry=RetryPolicy(attempts=20, wait=lambda: account.clock.advance(0.25)),
    )
    store.provision()
    naive_mismatches = 0
    retries = 0
    unresolved = 0
    for event in rewrite_events(REWRITES):
        store.store(event)
        # Naive reader: pair one S3 GET with one SimpleDB lookup, no
        # verification — would it have served skewed data?
        try:
            data = account.s3.get("pass-data", "hot/object.dat")
            nonce = data.metadata["nonce"]
            attrs = account.simpledb.get_attributes(
                "pass-prov", f"hot/object.dat_{nonce}"
            )
            token = (attrs.get(Attr.MD5) or ("",))[0]
            if token != consistency_token(data.blob.md5(), nonce):
                naive_mismatches += 1
        except NoSuchKey:
            naive_mismatches += 1
        # Correct reader: the architecture's verified read.
        try:
            result = store.read("hot/object.dat")
            retries += result.retries
        except ReadCorrectnessViolation:
            unresolved += 1
    return {
        "window": window,
        "naive_mismatches": naive_mismatches,
        "verified_retries": retries,
        "unresolved": unresolved,
        "internal_retries": store.consistency_retries,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_window(w) for w in WINDOWS]


def test_consistency_window_sweep(benchmark, sweep):
    benchmark(rewrite_events, 3)
    table = TextTable(
        ["EC window (s)", "naive mismatches", "verified-read retries", "unresolved"],
        title=f"Ablation: consistency window ({REWRITES} rewrites of one object)",
    )
    for row in sweep:
        table.add_row(
            f"{row['window']:.1f}",
            row["naive_mismatches"],
            row["verified_retries"],
            row["unresolved"],
        )
    save_result("ablation_consistency_window", table.render())
    # Strong consistency needs neither retries nor tolerance.
    assert sweep[0]["naive_mismatches"] == 0
    assert sweep[0]["verified_retries"] == 0
    # Adversarial windows actually exercise the mechanism...
    assert any(row["naive_mismatches"] > 0 for row in sweep[1:])
    # ...and the verified reader never returned a mismatch (it retried).
    assert all(row["unresolved"] == 0 for row in sweep)


def test_bench_verified_read_strong(benchmark):
    account = AWSAccount(seed=33, consistency=ConsistencyConfig.strong())
    store = S3SimpleDB(account)
    store.provision()
    for event in rewrite_events(3):
        store.store(event)
    result = benchmark(store.read, "hot/object.dat")
    assert result.consistent


def test_bench_verified_read_eventual(benchmark):
    account = AWSAccount(
        seed=34, consistency=ConsistencyConfig.eventual(window=2.0)
    )
    store = S3SimpleDB(
        account,
        retry=RetryPolicy(attempts=20, wait=lambda: account.clock.advance(0.25)),
    )
    store.provision()
    for event in rewrite_events(3):
        store.store(event)
    account.quiesce()
    result = benchmark(store.read, "hot/object.dat")
    assert result.consistent
