"""Sharded provenance domains: consistent-hash routing + rebalancing.

The paper's §6 discussion concedes that one SimpleDB domain bounds both
provenance capacity and query throughput. :class:`ShardRouter` lifts
that limit by partitioning the provenance store across **N SimpleDB
domains**, routed by a consistent hash of the object's *path* (its PASS
file name) so that:

* every version of one object lands on the same shard — Q1 lookups and
  ``version_history`` stay single-shard no matter how large N grows;
* growing N → N' (N ≥ 2) moves only the ``~(N'-N)/N'`` of the keyspace
  claimed by the new shards — never a key between two surviving shards
  (the consistent-hashing property :func:`rebalance` exploits). The one
  exception is leaving the N=1 layout, which uses the original
  single-domain name: every item migrates off ``pass-prov``;
* with ``shards=1`` the router degenerates to the single paper domain
  (:data:`DEFAULT_BASE_DOMAIN`) and every store/query code path is
  byte-identical to the unsharded reproduction.

Routing must be stable across processes and Python versions, so the hash
is MD5 of the UTF-8 path — never the interpreter's randomised ``hash()``.

Heterogeneous placement: each shard may live on a *named backend* — the
paper's SimpleDB (``"sdb"``) or the DynamoDB-style service (``"ddb"``,
:mod:`repro.aws.dynamo`) — via the router's ``placement`` map (see
:func:`parse_placement`; default all-SimpleDB, byte-identical to the
paper's deployment). The router stays pure routing: it answers *which
store and which backend kind*, while the actual service adapters come
from :meth:`repro.aws.account.AWSAccount.provenance_backends` (any
helper here accepts the account, a ready backend mapping, or — for
all-SimpleDB layouts only — the bare SimpleDB service, which older call
sites pass). The ``REPRO_BACKEND_PLACEMENT`` environment variable
supplies the default placement spec, which is how CI runs the whole
suite under a mixed SDB/DDB layout.

Consistency caveats (documented here, tested in
``tests/properties/test_prop_sharding.py``):

* cross-shard queries (Q2/Q3 scatter-gather) offer no snapshot
  isolation: each shard is read at its own replica time, exactly like
  issuing the N queries by hand against N separate domains;
* :func:`rebalance` here is the **offline** path: it copies through the
  public read APIs (replica state) and moves items in place, so it is
  correct only in a write-quiet window — but in that window it is the
  cheapest possible migration (one write per moved item, no mirroring,
  no WAL). Under live traffic use the **online** protocol in
  :mod:`repro.migration` instead: every routing consumer goes through a
  shared :class:`~repro.migration.RouterHandle` (the routing-epoch
  indirection), and :class:`~repro.migration.LiveMigration` reshapes
  the layout in phases — bulk copy with WAL capture, a double-write
  window, WAL catch-up replay, per-shard cutover (one epoch bump each),
  and verified drop — at the metered cost of the double-writes, replays
  and verification reads its :class:`~repro.migration.MigrationReport`
  itemises. Rule of thumb: offline when you can quiesce, online when
  you cannot.
"""

from __future__ import annotations

import bisect
import hashlib
import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.passlib.records import ObjectRef
from repro.units import SDB_MAX_ATTRS_PER_CALL

#: The paper's single provenance domain (§4.2) — what ``shards=1`` uses.
DEFAULT_BASE_DOMAIN = "pass-prov"

#: Environment variable holding the default placement spec (CI sets it
#: to ``mixed`` for the heterogeneous-placement suite pass).
PLACEMENT_ENV = "REPRO_BACKEND_PLACEMENT"

#: Backend kinds a placement may name (must match the adapter kinds in
#: ``repro.aws.backend``; kept literal here so routing stays AWS-free).
SDB_KIND = "sdb"
DDB_KIND = "ddb"
_KINDS = (SDB_KIND, DDB_KIND)


def parse_placement(
    spec: str | Mapping[int, str] | Sequence[str] | None, shards: int
) -> tuple[str, ...]:
    """Normalise a placement spec to one backend kind per shard index.

    Accepted specs:

    * ``None`` — the ``REPRO_BACKEND_PLACEMENT`` environment spec, or
      all-SimpleDB when unset (the paper's deployment);
    * ``"sdb"`` / ``"ddb"`` — every shard on that backend;
    * ``"mixed"`` — even shard indices on SimpleDB, odd on the DynamoDB
      style store (shard 0 — and thus ``shards=1`` — stays SimpleDB);
    * ``"0:sdb,3:ddb"`` — explicit index:kind pairs, unlisted indices
      defaulting to SimpleDB;
    * a mapping ``{index: kind}`` or a sequence of ``shards`` kinds.

    >>> parse_placement("mixed", 4)
    ('sdb', 'ddb', 'sdb', 'ddb')
    >>> parse_placement({1: "ddb"}, 3)
    ('sdb', 'ddb', 'sdb')
    """
    if spec is None:
        env = os.environ.get(PLACEMENT_ENV, "").strip()
        spec = env or SDB_KIND
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in _KINDS:
            return (text,) * shards
        if text == "mixed":
            return tuple(_KINDS[index % 2] for index in range(shards))
        pairs: dict[int, str] = {}
        for part in text.split(","):
            index_text, _, kind = part.partition(":")
            try:
                index = int(index_text)
            except ValueError:
                raise ValueError(f"bad placement spec {spec!r}") from None
            pairs[index] = kind.strip()
        spec = pairs
    if isinstance(spec, Mapping):
        placement = [SDB_KIND] * shards
        for index, kind in spec.items():
            if not 0 <= int(index) < shards:
                raise ValueError(
                    f"placement names shard {index}, but shards={shards}"
                )
            placement[int(index)] = kind
    else:
        placement = list(spec)
        if len(placement) != shards:
            raise ValueError(
                f"placement lists {len(placement)} shards, expected {shards}"
            )
    for kind in placement:
        if kind not in _KINDS:
            raise ValueError(
                f"unknown backend kind {kind!r}; expected one of {_KINDS}"
            )
    return tuple(placement)


def _resolve_backends(cloud) -> Mapping[str, object]:
    """Coerce ``cloud`` into a kind → backend-adapter mapping.

    Accepts a ready mapping, an :class:`~repro.aws.account.AWSAccount`
    (every backend), or a bare SimpleDB service (all-SimpleDB layouts
    only — the pre-placement call convention, kept working so existing
    operational scripts do not break).
    """
    if isinstance(cloud, Mapping):
        return cloud
    if hasattr(cloud, "provenance_backends"):
        return cloud.provenance_backends()
    if hasattr(cloud, "create_domain"):  # a bare SimpleDBService
        from repro.aws.backend import SimpleDBBackend

        return {SDB_KIND: SimpleDBBackend(cloud)}
    raise TypeError(
        f"expected an AWSAccount, backend mapping, or SimpleDB service; "
        f"got {type(cloud).__name__}"
    )


def _backend_for(backends: Mapping[str, object], router: "ShardRouter", domain: str):
    kind = router.backend_for(domain)
    try:
        return backends[kind]
    except KeyError:
        raise KeyError(
            f"placement puts {domain!r} on backend {kind!r}, but only "
            f"{sorted(backends)} are available — pass the AWSAccount "
            f"(or its provenance_backends()) instead of a bare service"
        ) from None

#: Virtual nodes per shard on the hash ring. More vnodes → better
#: balance; 384 keeps per-shard item counts within 2x of the mean (both
#: directions) for the benchmark workloads at N=16, and a 16-shard ring
#: is still only ~6K points.
DEFAULT_VNODES = 384


def _hash_point(text: str) -> int:
    """Stable 64-bit ring position for ``text`` (MD5, not ``hash()``)."""
    return int.from_bytes(
        hashlib.md5(text.encode("utf-8")).digest()[:8], "big"
    )


class ShardRouter:
    """Routes object paths to one of N provenance domains.

    >>> router = ShardRouter(shards=1)
    >>> router.domains
    ('pass-prov',)
    >>> router.domain_for("any/path")
    'pass-prov'
    """

    def __init__(
        self,
        shards: int = 1,
        base_domain: str = DEFAULT_BASE_DOMAIN,
        vnodes: int = DEFAULT_VNODES,
        placement: str | Mapping[int, str] | Sequence[str] | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.base_domain = base_domain
        self.vnodes = vnodes
        #: Backend kind per shard index ("sdb"/"ddb"); placement does
        #: not influence routing, only which service hosts each store.
        self.placement = parse_placement(placement, shards)
        if shards == 1:
            # The unsharded paper deployment: one domain, original name,
            # and no ring — domain_for short-circuits, so building one
            # would be pure waste on the common default path.
            self.domains: tuple[str, ...] = (base_domain,)
            self._ring_points: list[int] = []
            self._ring_domains: list[str] = []
            return
        self.domains = tuple(
            f"{base_domain}-{index:02d}" for index in range(shards)
        )
        ring: list[tuple[int, str]] = []
        for domain in self.domains:
            for vnode in range(vnodes):
                ring.append((_hash_point(f"{domain}#{vnode}"), domain))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_domains = [domain for _, domain in ring]

    # -- routing ------------------------------------------------------------

    def domain_for(self, path: str) -> str:
        """The shard domain owning ``path`` (all versions of it)."""
        if self.shards == 1:
            return self.domains[0]
        index = bisect.bisect_right(self._ring_points, _hash_point(path))
        if index == len(self._ring_points):
            index = 0  # wrap around the ring
        return self._ring_domains[index]

    def domain_for_ref(self, ref: ObjectRef) -> str:
        return self.domain_for(ref.path)

    def domain_for_item(self, item_name: str) -> str:
        """Route a SimpleDB item name (``name_vNNNN``) to its shard."""
        return self.domain_for(ObjectRef.from_item_name(item_name).path)

    def shard_index(self, path: str) -> int:
        """Ordinal of the shard owning ``path`` (for skew statistics)."""
        return self.domains.index(self.domain_for(path))

    def resized(
        self,
        shards: int | None = None,
        placement: str | Mapping[int, str] | Sequence[str] | None = None,
    ) -> "ShardRouter":
        """A router for a changed layout, inheriting what isn't overridden.

        Base domain and vnodes always carry over. When ``placement`` is
        not given, the *current placement pattern is tiled* across the
        new shard count — a uniform layout stays uniform, an alternating
        one stays alternating — rather than falling back to the
        ``REPRO_BACKEND_PLACEMENT`` environment default, so a
        shards-only migration can never silently flip the deployment's
        backend choice.
        """
        shards = self.shards if shards is None else shards
        if placement is None:
            placement = tuple(
                self.placement[index % self.shards] for index in range(shards)
            )
        return ShardRouter(
            shards,
            base_domain=self.base_domain,
            vnodes=self.vnodes,
            placement=placement,
        )

    # -- placement ----------------------------------------------------------

    def backend_for(self, domain: str) -> str:
        """The backend kind ("sdb"/"ddb") hosting a shard's store."""
        try:
            return self.placement[self.domains.index(domain)]
        except ValueError:
            raise ValueError(f"{domain!r} is not one of this router's domains") from None

    def backend_for_path(self, path: str) -> str:
        return self.placement[self.shard_index(path)]

    def placement_by_domain(self) -> dict[str, str]:
        """Domain → backend kind (what operators read in reports)."""
        return dict(zip(self.domains, self.placement))

    def uses_backend(self, kind: str) -> bool:
        return kind in self.placement

    # -- provisioning / introspection --------------------------------------

    def provision(self, cloud) -> None:
        """Create every shard's store on its placed backend (idempotent).

        ``cloud`` may be the AWSAccount, a backend mapping, or — for
        all-SimpleDB placements — the bare SimpleDB service.
        """
        backends = _resolve_backends(cloud)
        for domain in self.domains:
            _backend_for(backends, self, domain).provision(domain)

    def item_counts(self, cloud) -> dict[str, int]:
        """Authoritative items per shard (storage-skew reporting)."""
        backends = _resolve_backends(cloud)
        return {
            domain: _backend_for(backends, self, domain).item_count(domain)
            for domain in self.domains
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        placement = ""
        if any(kind != SDB_KIND for kind in self.placement):
            placement = f", placement={'/'.join(self.placement)}"
        return (
            f"ShardRouter(shards={self.shards}, "
            f"base_domain={self.base_domain!r}{placement})"
        )


def item_attribute_pairs(attrs: Mapping[str, Sequence[str]]) -> list[tuple[str, str]]:
    """Flatten an item's attribute map to sorted (name, value) pairs.

    The canonical serialisation order every migration write batches in —
    offline rebalance, the online bulk copy, and the drop-phase repair
    must all produce identical put sequences for the same item.
    """
    return [
        (attribute, value)
        for attribute in sorted(attrs)
        for value in attrs[attribute]
    ]


@dataclass
class RebalanceReport:
    """What a shard rebalance did (counters for tests and operators).

    ``domains_deleted`` lists source domains that no longer belong to
    the target layout and were emptied by the migration — a shrink
    N→N' leaves them behind otherwise, and ``list_domains``/skew
    reporting would keep counting the orphans.
    """

    items_scanned: int = 0
    items_moved: int = 0
    items_kept: int = 0
    #: Moves whose source and target shard live on *different* backend
    #: kinds (SimpleDB ↔ the DynamoDB-style store).
    cross_backend_moves: int = 0
    moves_by_domain: dict[str, int] = field(default_factory=dict)
    domains_deleted: list[str] = field(default_factory=list)
    #: Items the migration read off a covering (ALL-projection) GSI
    #: instead of scanning the base table — the index-aware migration
    #: read path, available only for DynamoDB-placed source shards that
    #: declare such an index (0 otherwise, including every historical
    #: layout).
    index_streamed_items: int = 0
    #: Write units spent creating/backfilling/maintaining global
    #: secondary indexes on DynamoDB-placed destination shards during
    #: the migration — the metered price of making the target layout
    #: index-queryable. 0.0 when no target shard declares indexes (or
    #: when ``cloud`` exposes no billing meter to measure against).
    index_write_units: float = 0.0


def rebalance(
    cloud,
    source: ShardRouter,
    target: ShardRouter,
    put_batch: int = SDB_MAX_ATTRS_PER_CALL,
) -> RebalanceReport:
    """Move every provenance item from ``source``'s layout to ``target``'s.

    Walks each source store through its backend's migration read stream
    (the full scan, or a covering ALL-projection GSI on DynamoDB-placed
    shards — see ``migration_pages`` and
    ``RebalanceReport.index_streamed_items``), re-puts items whose
    owning shard — or owning *backend* — changed, and deletes them from
    the old store. Values are copied verbatim (multi-valued attributes
    included), so the union of all bundles is preserved exactly — the
    round-trip invariant the property suite checks. Both backends merge
    writes as sets, so a re-run after a crash is idempotent.

    Heterogeneous layouts migrate *across backends*: an item whose shard
    keeps its domain name but moves from SimpleDB to the DynamoDB-style
    table (or back) is copied between services, counted on
    ``RebalanceReport.cross_backend_moves``. ``cloud`` is the
    AWSAccount (or a backend mapping); the bare SimpleDB service is
    still accepted for all-SimpleDB layouts.

    Shrinking (some source stores absent from the target layout, by
    name *or* by backend) additionally drops each orphaned source store
    once the migration has verifiably emptied it, so store listings and
    skew reporting see only the target layout; the deletions are listed
    on ``RebalanceReport.domains_deleted``. A store that still holds
    items (e.g. replica lag hid them from the migration scan) is left
    in place for a re-run rather than destroyed.

    Consistency caveat: reads go through replicas on either backend;
    rebalance during a write-quiet window (or quiesce the simulated
    cloud first). For migrations that must run under live writers, use
    :class:`repro.migration.LiveMigration` (``Simulation.migrate(...,
    online=True)``), which pays for a double-write window and WAL
    catch-up instead of requiring quiescence.
    """
    backends = _resolve_backends(cloud)
    report = RebalanceReport()
    # Index-backfill accounting: destination provisioning creates any
    # declared GSIs and every migrated put maintains them; the meter
    # delta over the whole migration is the index cost of the move.
    meter = getattr(cloud, "meter", None)
    if meter is not None:
        from repro.aws.billing import DDB_GSI

        index_units_before = meter.snapshot().write_units(DDB_GSI)
    target.provision(backends)
    target_sites = set(target.placement_by_domain().items())
    for source_domain in source.domains:
        source_kind = source.backend_for(source_domain)
        source_backend = _backend_for(backends, source, source_domain)
        via_index, pages = source_backend.migration_pages(source_domain)
        for item_name, attrs in pages:
            report.items_scanned += 1
            if via_index:
                report.index_streamed_items += 1
            target_domain = target.domain_for_item(item_name)
            target_kind = target.backend_for(target_domain)
            if target_domain == source_domain and target_kind == source_kind:
                report.items_kept += 1
                continue
            pairs = item_attribute_pairs(attrs)
            target_backend = _backend_for(backends, target, target_domain)
            for start in range(0, len(pairs), put_batch):
                target_backend.put_provenance_item(
                    target_domain, item_name, pairs[start : start + put_batch]
                )
            source_backend.delete_item(source_domain, item_name)
            report.items_moved += 1
            if target_kind != source_kind:
                report.cross_backend_moves += 1
            report.moves_by_domain[target_domain] = (
                report.moves_by_domain.get(target_domain, 0) + 1
            )
    for source_domain in source.domains:
        source_kind = source.backend_for(source_domain)
        if (source_domain, source_kind) in target_sites:
            continue
        source_backend = _backend_for(backends, source, source_domain)
        if source_backend.item_count(source_domain) == 0:
            source_backend.drop(source_domain)
            report.domains_deleted.append(source_domain)
    if meter is not None:
        report.index_write_units = (
            meter.snapshot().write_units(DDB_GSI) - index_units_before
        )
    return report


def authoritative_snapshot(cloud, router: ShardRouter) -> dict[str, dict]:
    """Every item under ``router``'s layout, read from backend oracles.

    Item name → attribute map, across all shards and both backend
    kinds — the migration-verification view the property suite diffs
    before/after a rebalance.
    """
    backends = _resolve_backends(cloud)
    snapshot: dict[str, dict] = {}
    for domain in router.domains:
        backend = _backend_for(backends, router, domain)
        for item_name in backend.authoritative_item_names(domain):
            snapshot[item_name] = backend.authoritative_item(domain, item_name)
    return snapshot
