"""Sharded provenance domains: consistent-hash routing + rebalancing.

The paper's §6 discussion concedes that one SimpleDB domain bounds both
provenance capacity and query throughput. :class:`ShardRouter` lifts
that limit by partitioning the provenance store across **N SimpleDB
domains**, routed by a consistent hash of the object's *path* (its PASS
file name) so that:

* every version of one object lands on the same shard — Q1 lookups and
  ``version_history`` stay single-shard no matter how large N grows;
* growing N → N' (N ≥ 2) moves only the ``~(N'-N)/N'`` of the keyspace
  claimed by the new shards — never a key between two surviving shards
  (the consistent-hashing property :func:`rebalance` exploits). The one
  exception is leaving the N=1 layout, which uses the original
  single-domain name: every item migrates off ``pass-prov``;
* with ``shards=1`` the router degenerates to the single paper domain
  (:data:`DEFAULT_BASE_DOMAIN`) and every store/query code path is
  byte-identical to the unsharded reproduction.

Routing must be stable across processes and Python versions, so the hash
is MD5 of the UTF-8 path — never the interpreter's randomised ``hash()``.

Consistency caveats (documented here, tested in
``tests/properties/test_prop_sharding.py``):

* cross-shard queries (Q2/Q3 scatter-gather) offer no snapshot
  isolation: each shard is read at its own replica time, exactly like
  issuing the N queries by hand against N separate domains;
* :func:`rebalance` copies through the public SimpleDB API, so it reads
  replica state — run it after the cloud has quiesced (a maintenance
  window) or orchestrate a double-write window around it.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from repro.passlib.records import ObjectRef
from repro.units import SDB_MAX_ATTRS_PER_CALL

#: The paper's single provenance domain (§4.2) — what ``shards=1`` uses.
DEFAULT_BASE_DOMAIN = "pass-prov"

#: Virtual nodes per shard on the hash ring. More vnodes → better
#: balance; 384 keeps per-shard item counts within 2x of the mean (both
#: directions) for the benchmark workloads at N=16, and a 16-shard ring
#: is still only ~6K points.
DEFAULT_VNODES = 384


def _hash_point(text: str) -> int:
    """Stable 64-bit ring position for ``text`` (MD5, not ``hash()``)."""
    return int.from_bytes(
        hashlib.md5(text.encode("utf-8")).digest()[:8], "big"
    )


class ShardRouter:
    """Routes object paths to one of N provenance domains.

    >>> router = ShardRouter(shards=1)
    >>> router.domains
    ('pass-prov',)
    >>> router.domain_for("any/path")
    'pass-prov'
    """

    def __init__(
        self,
        shards: int = 1,
        base_domain: str = DEFAULT_BASE_DOMAIN,
        vnodes: int = DEFAULT_VNODES,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.base_domain = base_domain
        self.vnodes = vnodes
        if shards == 1:
            # The unsharded paper deployment: one domain, original name,
            # and no ring — domain_for short-circuits, so building one
            # would be pure waste on the common default path.
            self.domains: tuple[str, ...] = (base_domain,)
            self._ring_points: list[int] = []
            self._ring_domains: list[str] = []
            return
        self.domains = tuple(
            f"{base_domain}-{index:02d}" for index in range(shards)
        )
        ring: list[tuple[int, str]] = []
        for domain in self.domains:
            for vnode in range(vnodes):
                ring.append((_hash_point(f"{domain}#{vnode}"), domain))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_domains = [domain for _, domain in ring]

    # -- routing ------------------------------------------------------------

    def domain_for(self, path: str) -> str:
        """The shard domain owning ``path`` (all versions of it)."""
        if self.shards == 1:
            return self.domains[0]
        index = bisect.bisect_right(self._ring_points, _hash_point(path))
        if index == len(self._ring_points):
            index = 0  # wrap around the ring
        return self._ring_domains[index]

    def domain_for_ref(self, ref: ObjectRef) -> str:
        return self.domain_for(ref.path)

    def domain_for_item(self, item_name: str) -> str:
        """Route a SimpleDB item name (``name_vNNNN``) to its shard."""
        return self.domain_for(ObjectRef.from_item_name(item_name).path)

    def shard_index(self, path: str) -> int:
        """Ordinal of the shard owning ``path`` (for skew statistics)."""
        return self.domains.index(self.domain_for(path))

    # -- provisioning / introspection --------------------------------------

    def provision(self, simpledb) -> None:
        """CreateDomain for every shard (idempotent, like the service)."""
        for domain in self.domains:
            simpledb.create_domain(domain)

    def item_counts(self, simpledb) -> dict[str, int]:
        """Authoritative items per shard (storage-skew reporting)."""
        return {domain: simpledb.item_count(domain) for domain in self.domains}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardRouter(shards={self.shards}, "
            f"base_domain={self.base_domain!r})"
        )


@dataclass
class RebalanceReport:
    """What a shard rebalance did (counters for tests and operators).

    ``domains_deleted`` lists source domains that no longer belong to
    the target layout and were emptied by the migration — a shrink
    N→N' leaves them behind otherwise, and ``list_domains``/skew
    reporting would keep counting the orphans.
    """

    items_scanned: int = 0
    items_moved: int = 0
    items_kept: int = 0
    moves_by_domain: dict[str, int] = field(default_factory=dict)
    domains_deleted: list[str] = field(default_factory=list)


def rebalance(
    simpledb,
    source: ShardRouter,
    target: ShardRouter,
    put_batch: int = SDB_MAX_ATTRS_PER_CALL,
) -> RebalanceReport:
    """Move every provenance item from ``source``'s layout to ``target``'s.

    Walks each source domain through the public query API, re-puts items
    whose owning shard changed, and deletes them from the old shard.
    Values are copied verbatim (multi-valued attributes included), so the
    union of all bundles is preserved exactly — the round-trip invariant
    the property suite checks. PutAttributes' set-merge semantics make a
    re-run after a crash idempotent.

    Shrinking (some source domains absent from the target layout)
    additionally drops each orphaned source domain once the migration
    has verifiably emptied it, so ``list_domains`` and skew reporting
    see only the target layout; the deletions are listed on
    ``RebalanceReport.domains_deleted``. A domain that still holds items
    (e.g. replica lag hid them from the migration scan) is left in place
    for a re-run rather than destroyed.

    Consistency caveat: reads go through replicas; rebalance during a
    write-quiet window (or quiesce the simulated cloud first).
    """
    report = RebalanceReport()
    target.provision(simpledb)
    for source_domain in source.domains:
        token: str | None = None
        while True:
            page = simpledb.query_with_attributes(
                source_domain, None, next_token=token
            )
            for item_name, attrs in page.items:
                report.items_scanned += 1
                target_domain = target.domain_for_item(item_name)
                if target_domain == source_domain:
                    report.items_kept += 1
                    continue
                pairs = [
                    (attribute, value)
                    for attribute in sorted(attrs)
                    for value in attrs[attribute]
                ]
                for start in range(0, len(pairs), put_batch):
                    simpledb.put_attributes(
                        target_domain, item_name, pairs[start : start + put_batch]
                    )
                simpledb.delete_attributes(source_domain, item_name)
                report.items_moved += 1
                report.moves_by_domain[target_domain] = (
                    report.moves_by_domain.get(target_domain, 0) + 1
                )
            token = page.next_token
            if token is None:
                break
    surviving = set(target.domains)
    for source_domain in source.domains:
        if source_domain in surviving:
            continue
        if simpledb.item_count(source_domain) == 0:
            simpledb.delete_domain(source_domain)
            report.domains_deleted.append(source_domain)
    return report
