"""Thread-safety primitives for the simulated cloud.

The simulation was born single-threaded: one client, one manually
advanced :class:`~repro.clock.SimClock`, services mutating plain dicts.
The concurrent scatter-gather executor (``repro.query.engine``) breaks
that assumption — per-shard request streams run on a bounded worker
pool, so every piece of shared simulation state the workers touch
(service stores, the billing meter, the clock's event heap) must be
guarded.

The locking model is deliberately coarse: each service serialises its
public API behind one re-entrant lock (:func:`synchronized`). Requests
therefore execute atomically, exactly as they did when the simulation
was single-threaded — the *modeled* latency of a concurrent query comes
from the engine's latency model, not from real parallel execution, so
coarse locks cost nothing while guaranteeing that interleavings can
never corrupt replica state or double-count the meter.

Lock ordering: service lock → meter lock → (no further locks). The
clock's event-heap lock is leaf-level too; ``SimClock.now`` is read
without a lock (a CPython float load is atomic) so meter integration
never takes the clock lock while holding the meter lock.

This discipline is machine-enforced, not just documented:

* statically by ``provlint`` rule **PL001** (``python -m
  repro.devtools.provlint src/``) — synchronized classes must mint
  ``self._lock`` here via :func:`new_lock`, public mutators of metered
  ``repro.aws`` service classes must be decorated, and raw
  ``threading`` lock constructions are confined to this module;
* at runtime by the ``REPRO_SANITIZE=1`` sanitizer
  (:mod:`repro.devtools.sanitize`) — :func:`new_lock` then returns an
  order-recording shim that asserts the partial order above on every
  acquisition, per thread, across the whole concurrent suite.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, TypeVar

from repro.devtools import sanitize

F = TypeVar("F", bound=Callable)


def synchronized(method: F) -> F:
    """Serialise a method behind its instance's ``_lock`` (an RLock).

    The decorated class must create ``self._lock`` via :func:`new_lock`
    in ``__init__`` before any decorated method runs (provlint PL001
    checks this). Re-entrant so a public method may call another public
    method of the same object.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


def new_lock(order: str = "service", name: str | None = None):
    """A fresh re-entrant lock (kept here so services avoid importing
    ``threading`` just for one constructor).

    ``order`` names the lock's class in the documented partial order —
    ``"service"`` (default), ``"meter"``, or ``"leaf"`` (the clock's
    event heap). It is ignored in normal runs; under ``REPRO_SANITIZE=1``
    the returned shim records per-thread acquisition order and flags any
    inversion of service → meter → leaf. ``name`` labels the lock in
    sanitizer reports.
    """
    if sanitize.enabled():
        return sanitize.OrderedLock(order, name=name)
    if order not in sanitize.LOCK_RANKS:
        raise ValueError(
            f"unknown lock order {order!r}; expected one of "
            f"{sorted(sanitize.LOCK_RANKS)}"
        )
    return threading.RLock()
