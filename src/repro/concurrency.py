"""Thread-safety primitives for the simulated cloud.

The simulation was born single-threaded: one client, one manually
advanced :class:`~repro.clock.SimClock`, services mutating plain dicts.
The concurrent scatter-gather executor (``repro.query.engine``) breaks
that assumption — per-shard request streams run on a bounded worker
pool, so every piece of shared simulation state the workers touch
(service stores, the billing meter, the clock's event heap) must be
guarded.

The locking model is deliberately coarse: each service serialises its
public API behind one re-entrant lock (:func:`synchronized`). Requests
therefore execute atomically, exactly as they did when the simulation
was single-threaded — the *modeled* latency of a concurrent query comes
from the engine's latency model, not from real parallel execution, so
coarse locks cost nothing while guaranteeing that interleavings can
never corrupt replica state or double-count the meter.

Lock ordering: service lock → meter lock → (no further locks). The
clock's event-heap lock is leaf-level too; ``SimClock.now`` is read
without a lock (a CPython float load is atomic) so meter integration
never takes the clock lock while holding the meter lock.
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def synchronized(method: F) -> F:
    """Serialise a method behind its instance's ``_lock`` (an RLock).

    The decorated class must create ``self._lock = threading.RLock()``
    in ``__init__`` before any decorated method runs. Re-entrant so a
    public method may call another public method of the same object.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


def new_lock() -> threading.RLock:
    """A fresh re-entrant lock (kept here so services avoid importing
    ``threading`` just for one constructor)."""
    return threading.RLock()
