"""Content blobs: real bytes or synthetic paper-scale payloads.

The paper's evaluation dataset holds 1.27 GB of file data across 31,180
objects. Materialising that in memory for every benchmark run would be
wasteful and slow, and nothing in the provenance protocols depends on the
actual bytes — only on their *size* (billing, limits) and their *digest*
(the MD5‖nonce consistency check of architectures A2/A3).

:class:`Blob` therefore abstracts content behind ``size``, ``md5()`` and
``read()``:

* :class:`BytesBlob` wraps real bytes — used by tests and small examples,
  where reads must return the exact data written.
* :class:`SyntheticBlob` represents content by ``(seed, size)``. Its digest
  is computed from the seed/size pair without generating the payload, and
  ranged reads generate deterministic bytes on demand, so a 5 GB object
  costs a few dozen bytes of memory yet behaves consistently: equal
  (seed, size) pairs always yield equal bytes and equal digests.

The substitution is sound for this paper because every consistency
argument in §4 reduces to "does the digest stored with the provenance
match the digest of the data read back" — which synthetic digests preserve
exactly (distinct seeds model distinct contents; rewriting identical data
reuses the seed, reproducing the paper's 'same-data overwrite' corner case).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


class Blob:
    """Abstract immutable content reference."""

    @property
    def size(self) -> int:
        """Content length in bytes."""
        raise NotImplementedError

    def md5(self) -> str:
        """Hex digest of the content."""
        raise NotImplementedError

    def read(self, start: int = 0, end: int | None = None) -> bytes:
        """Return content bytes in ``[start, end)`` (end defaults to size)."""
        raise NotImplementedError

    def slice_params(self, start: int, end: int | None) -> tuple[int, int]:
        """Validate and normalise a byte range against this blob."""
        size = self.size
        if end is None:
            end = size
        if not (0 <= start <= end <= size):
            raise ValueError(f"invalid range [{start}, {end}) for size {size}")
        return start, end

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Blob):
            return NotImplemented
        return self.size == other.size and self.md5() == other.md5()

    def __hash__(self) -> int:
        return hash((self.size, self.md5()))


class BytesBlob(Blob):
    """A blob backed by real, in-memory bytes."""

    __slots__ = ("_data", "_md5")

    def __init__(self, data: bytes):
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._data = bytes(data)
        self._md5: str | None = None

    @property
    def size(self) -> int:
        return len(self._data)

    def md5(self) -> str:
        if self._md5 is None:
            self._md5 = hashlib.md5(self._data).hexdigest()
        return self._md5

    def read(self, start: int = 0, end: int | None = None) -> bytes:
        start, end = self.slice_params(start, end)
        return self._data[start:end]

    def __repr__(self) -> str:
        return f"BytesBlob(size={self.size})"


@dataclass(frozen=True)
class SyntheticBlob(Blob):
    """A blob identified by ``(seed, size)`` with deterministic content.

    The byte at offset ``i`` is ``md5(seed || block_index)`` expanded in
    16-byte blocks, so ranged reads are reproducible without storing the
    payload. Two synthetic blobs are byte-identical iff their seeds and
    sizes are equal — workload generators exploit this to model "the file
    was overwritten with the same data" (same seed) versus "new contents"
    (new seed), the distinction §4.2 raises for MD5-based consistency.
    """

    seed: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {self.size_bytes}")

    @property
    def size(self) -> int:
        return self.size_bytes

    def md5(self) -> str:
        # Digest of the identity, not the expanded payload: O(1) for any
        # size. Uniqueness properties match real MD5 for our purposes —
        # equal iff (seed, size) equal.
        ident = f"synthetic:{self.seed}:{self.size_bytes}".encode("utf-8")
        return hashlib.md5(ident).hexdigest()

    def read(self, start: int = 0, end: int | None = None) -> bytes:
        start, end = self.slice_params(start, end)
        if start == end:
            return b""
        out = bytearray()
        first_block, last_block = start // 16, (end - 1) // 16
        for block in range(first_block, last_block + 1):
            block_seed = f"{self.seed}:{block}".encode("utf-8")
            out.extend(hashlib.md5(block_seed).digest())
        offset = start - first_block * 16
        return bytes(out[offset : offset + (end - start)])

    def __repr__(self) -> str:
        return f"SyntheticBlob(seed={self.seed!r}, size={self.size_bytes})"


def as_blob(content: "Blob | bytes | str") -> Blob:
    """Coerce raw bytes/str to a :class:`BytesBlob`; pass blobs through."""
    if isinstance(content, Blob):
        return content
    return BytesBlob(content if isinstance(content, bytes) else content.encode("utf-8"))
