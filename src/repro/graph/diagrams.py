"""Render the architecture diagrams (paper Figures 1–3).

The paper's three figures are dataflow diagrams of the architectures.
Rather than shipping static pictures, this module renders the diagrams
*from the live architecture objects* — each
:class:`~repro.core.base.ProvenanceCloudStore` exposes ``components()``
and ``flows()``, and the renderer lays them out as ASCII (for terminals
and EXPERIMENTS.md) or Graphviz DOT (for papers). Because the diagram is
derived from the same objects the protocols run on, it cannot drift from
the implementation.
"""

from __future__ import annotations

from repro.core.base import ProvenanceCloudStore


def render_ascii(store: ProvenanceCloudStore) -> str:
    """One box per component, one arrow line per flow.

    Output shape::

        +-------------+
        | application |  issues read/write/close system calls
        +-------------+
        application -> pass : system calls
    """
    components = store.components()
    flows = store.flows()
    width = max(len(c.name) for c in components) + 2
    lines: list[str] = [f"architecture: {store.name}", ""]
    for component in components:
        bar = "+" + "-" * width + "+"
        lines.append(bar)
        lines.append(f"| {component.name:<{width - 2}} |  {component.role}")
        lines.append(bar)
    lines.append("")
    arrow_width = max(len(f.source) + len(f.target) for f in flows) + 4
    for flow in flows:
        arrow = f"{flow.source} -> {flow.target}"
        lines.append(f"  {arrow:<{arrow_width}} : {flow.label}")
    return "\n".join(lines)


def render_dot(store: ProvenanceCloudStore) -> str:
    """Graphviz DOT for the same structure."""
    lines = [f'digraph "{store.name}" {{', "  rankdir=LR;", "  node [shape=box];"]
    for component in store.components():
        label = component.name.replace('"', "'")
        tooltip = component.role.replace('"', "'")
        lines.append(f'  "{label}" [tooltip="{tooltip}"];')
    for flow in store.flows():
        label = flow.label.replace('"', "'")
        lines.append(f'  "{flow.source}" -> "{flow.target}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def diagram_summary(store: ProvenanceCloudStore) -> dict[str, int]:
    """Component/flow counts, used by the figure benchmarks' assertions."""
    return {
        "components": len(store.components()),
        "flows": len(store.flows()),
    }


def validate_diagram(store: ProvenanceCloudStore) -> list[str]:
    """Sanity-check a diagram: every flow endpoint must be a component."""
    names = {c.name for c in store.components()}
    problems = []
    for flow in store.flows():
        if flow.source not in names:
            problems.append(f"flow source {flow.source!r} is not a component")
        if flow.target not in names:
            problems.append(f"flow target {flow.target!r} is not a component")
    return problems
