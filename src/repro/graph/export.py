"""Export stored provenance to interchange formats.

The provenance community settled on the W3C PROV data model (entities,
activities, and the *used* / *wasGeneratedBy* / *wasDerivedFrom* /
*wasInformedBy* relations). PASS records map onto it naturally:

* **files** are PROV *entities* (one per version);
* **processes** are PROV *activities*;
* a process ``input`` edge to a file is ``used``;
* a file ``input`` edge to a process is ``wasGeneratedBy``;
* a file's ``prev_version`` edge is ``wasRevisionOf`` (a derivation);
* a process ``input`` edge to a process is ``wasInformedBy``;
* pipes, being transient channels, export as entities generated and
  used by their endpoint activities.

:func:`to_prov_json` emits a PROV-JSON-shaped document (the subset the
mapping needs); :func:`lineage_dot` renders an object's ancestry as a
Graphviz digraph, the artifact people actually paste into papers.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.passlib.records import Attr, ObjectRef, ProvenanceBundle

#: Prefix used for qualified names in the PROV document.
NAMESPACE = "pass"


def _qualified(ref: ObjectRef) -> str:
    return f"{NAMESPACE}:{ref.encode()}"


def _is_activity(ref: ObjectRef) -> bool:
    return ref.name.startswith("proc/")


def _is_channel(ref: ObjectRef) -> bool:
    return ref.name.startswith("pipe/")


def to_prov_json(bundles: Iterable[ProvenanceBundle]) -> dict:
    """Convert bundles to a PROV-JSON-shaped document.

    >>> doc = to_prov_json([])
    >>> sorted(doc) [:3]
    ['activity', 'entity', 'prefix']
    """
    document: dict = {
        "prefix": {NAMESPACE: "urn:pass-cloud-repro:"},
        "entity": {},
        "activity": {},
        "used": {},
        "wasGeneratedBy": {},
        "wasDerivedFrom": {},
        "wasInformedBy": {},
    }
    relation_counter = 0

    def relation_id() -> str:
        nonlocal relation_counter
        relation_counter += 1
        return f"_:r{relation_counter}"

    for bundle in bundles:
        subject = bundle.subject
        subject_id = _qualified(subject)
        attributes = {
            f"{NAMESPACE}:{record.attribute}": record.encoded_value()
            for record in bundle.records
            if record.attribute not in Attr.REF_VALUED
        }
        if bundle.kind == "process":
            document["activity"][subject_id] = attributes
        else:
            attributes[f"{NAMESPACE}:kind"] = bundle.kind
            document["entity"][subject_id] = attributes

        for record in bundle.records:
            if record.attribute not in Attr.REF_VALUED or not isinstance(
                record.value, ObjectRef
            ):
                continue
            parent = record.value
            parent_id = _qualified(parent)
            if record.attribute == Attr.VERSION_OF:
                document["wasDerivedFrom"][relation_id()] = {
                    "prov:generatedEntity": subject_id,
                    "prov:usedEntity": parent_id,
                    "prov:type": "prov:Revision",
                }
            elif bundle.kind == "process" and _is_activity(parent):
                document["wasInformedBy"][relation_id()] = {
                    "prov:informed": subject_id,
                    "prov:informant": parent_id,
                }
            elif bundle.kind == "process":
                document["used"][relation_id()] = {
                    "prov:activity": subject_id,
                    "prov:entity": parent_id,
                }
            elif _is_activity(parent):
                document["wasGeneratedBy"][relation_id()] = {
                    "prov:entity": subject_id,
                    "prov:activity": parent_id,
                }
            else:
                # file <- file/pipe without an activity in between:
                # a plain derivation.
                document["wasDerivedFrom"][relation_id()] = {
                    "prov:generatedEntity": subject_id,
                    "prov:usedEntity": parent_id,
                }
    return document


def prov_json_dumps(bundles: Iterable[ProvenanceBundle], indent: int = 2) -> str:
    """Serialise to a PROV-JSON string."""
    return json.dumps(to_prov_json(bundles), indent=indent, sort_keys=True)


def lineage_dot(
    bundles: Iterable[ProvenanceBundle],
    focus: ObjectRef | None = None,
) -> str:
    """Render provenance as Graphviz DOT: boxes for files, ovals for
    processes, dashed edges for version chains.

    With ``focus`` set, only the focus object's ancestry is drawn (the
    figure a scientist wants when asked "where did this result come
    from?").
    """
    bundle_map = {bundle.subject: bundle for bundle in bundles}
    if focus is not None:
        keep: set[ObjectRef] = set()
        frontier = [focus]
        while frontier:
            node = frontier.pop()
            if node in keep:
                continue
            keep.add(node)
            bundle = bundle_map.get(node)
            if bundle is not None:
                frontier.extend(bundle.inputs())
        bundle_map = {ref: b for ref, b in bundle_map.items() if ref in keep}

    lines = ["digraph lineage {", "  rankdir=BT;"]
    for ref, bundle in sorted(bundle_map.items()):
        label = ref.encode().replace('"', "'")
        if bundle.kind == "process":
            shape = "ellipse"
        elif bundle.kind == "pipe":
            shape = "diamond"
        else:
            shape = "box"
        lines.append(f'  "{label}" [shape={shape}];')
    for ref, bundle in sorted(bundle_map.items()):
        label = ref.encode().replace('"', "'")
        for record in bundle.records:
            if record.attribute not in Attr.REF_VALUED or not isinstance(
                record.value, ObjectRef
            ):
                continue
            parent = record.value.encode().replace('"', "'")
            style = ' [style=dashed]' if record.attribute == Attr.VERSION_OF else ""
            lines.append(f'  "{label}" -> "{parent}"{style};')
    lines.append("}")
    return "\n".join(lines)
