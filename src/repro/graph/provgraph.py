"""The provenance DAG, backed by networkx.

Built from flush events (or raw bundles), :class:`ProvenanceGraph` is the
library's ground truth: tests compare the cloud query engines against
its closures, the versioning property tests assert acyclicity on it, and
the workload statistics (Table 2 inputs) are computed from it.

Edges run **descendant → ancestor** (an ``input`` record is an edge from
the subject to the input), matching the paper's reading of provenance as
"the complete ancestry of a data set".
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.passlib.records import Attr, FlushEvent, ObjectRef, ProvenanceBundle


class ProvenanceGraph:
    """A versioned provenance DAG with typed nodes."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[FlushEvent]) -> "ProvenanceGraph":
        graph = cls()
        for event in events:
            graph.add_event(event)
        return graph

    @classmethod
    def from_bundles(cls, bundles: Iterable[ProvenanceBundle]) -> "ProvenanceGraph":
        graph = cls()
        for bundle in bundles:
            graph.add_bundle(bundle)
        return graph

    def add_event(self, event: FlushEvent) -> None:
        for bundle in event.all_bundles():
            self.add_bundle(bundle)
        self._graph.nodes[event.subject]["data_size"] = event.data.size

    def add_bundle(self, bundle: ProvenanceBundle) -> None:
        subject = bundle.subject
        self._graph.add_node(subject, kind=bundle.kind)
        names = bundle.attribute_values(Attr.NAME)
        if names:
            self._graph.nodes[subject]["name"] = names[0]
        for record in bundle.records:
            if record.attribute in Attr.REF_VALUED and isinstance(
                record.value, ObjectRef
            ):
                self._graph.add_edge(subject, record.value, label=record.attribute)
                self._graph.nodes[record.value].setdefault("kind", "unknown")

    # -- structure queries -----------------------------------------------------

    @property
    def nx(self) -> nx.DiGraph:
        """The underlying networkx graph (read it, do not mutate it)."""
        return self._graph

    def nodes(self, kind: str | None = None) -> list[ObjectRef]:
        if kind is None:
            return sorted(self._graph.nodes)
        return sorted(
            node
            for node, attrs in self._graph.nodes(data=True)
            if attrs.get("kind") == kind
        )

    def kind(self, ref: ObjectRef) -> str:
        return self._graph.nodes[ref].get("kind", "unknown")

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def ancestors(self, ref: ObjectRef) -> set[ObjectRef]:
        """All transitive inputs (descendant→ancestor edges point 'down')."""
        return nx.descendants(self._graph, ref)

    def descendants(self, ref: ObjectRef) -> set[ObjectRef]:
        """All transitive dependents."""
        return nx.ancestors(self._graph, ref)

    def instances_of(self, program: str) -> list[ObjectRef]:
        return sorted(
            node
            for node, attrs in self._graph.nodes(data=True)
            if attrs.get("kind") == "process" and attrs.get("name") == program
        )

    def outputs_of(self, program: str) -> set[ObjectRef]:
        """Q2 oracle on the graph."""
        outputs: set[ObjectRef] = set()
        for instance in self.instances_of(program):
            for dependent in self._graph.predecessors(instance):
                if self.kind(dependent) == "file":
                    outputs.add(dependent)
        return outputs

    def descendants_of_outputs(self, program: str) -> set[ObjectRef]:
        """Q3 oracle on the graph."""
        seeds = self.outputs_of(program)
        results = set(seeds)
        for seed in seeds:
            for node in self.descendants(seed):
                if self.kind(node) == "file":
                    results.add(node)
        return results

    # -- statistics (feed the analysis module) --------------------------------------

    def version_counts(self) -> dict[str, int]:
        """Number of stored versions per object name."""
        counts: dict[str, int] = {}
        for node in self._graph.nodes:
            counts[node.name] = max(counts.get(node.name, 0), node.version)
        return counts

    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, ref: ObjectRef) -> bool:
        return ref in self._graph
