"""Provenance graphs and architecture diagrams.

* :mod:`repro.graph.provgraph` — a networkx-backed provenance DAG built
  from flush events, used as the test oracle and by the analysis module;
* :mod:`repro.graph.diagrams` — renders each architecture's component
  and dataflow structure (the paper's Figures 1–3) as ASCII art and DOT.
"""

from repro.graph.diagrams import render_ascii, render_dot
from repro.graph.provgraph import ProvenanceGraph

__all__ = ["ProvenanceGraph", "render_ascii", "render_dot"]
