"""Command-line interface: regenerate the paper's results from a shell.

    python -m repro properties            # Table 1, measured
    python -m repro storage --scale 1.0   # Table 2 for a generated trace
    python -m repro queries --scale 1.0   # Table 3 (analytic)
    python -m repro figures               # Figures 1-3 as ASCII + DOT
    python -m repro costs --scale 1.0     # USD bill per architecture
    python -m repro advise --scale 0.3    # §7 extension: cloud hints
    python -m repro demo                  # 10-second end-to-end tour
    python -m repro matrix --quick        # workload x architecture sweep

All subcommands are offline and deterministic (--seed).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro.analysis.cost import render_cost_table
from repro.analysis.query_model import analytic_query_table, render_table3
from repro.analysis.report import TextTable, check_mark
from repro.analysis.storage_model import render_table2
from repro.units import fmt_bytes, fmt_count
from repro.workloads import CombinedWorkload, collect_stats


def _generate_stats(scale: float, seed: int):
    workload = CombinedWorkload()
    return collect_stats(workload.iter_events(random.Random(f"cli:{seed}"), scale))


def cmd_properties(args: argparse.Namespace) -> int:
    from repro.core.properties import evaluate_all

    table = TextTable(
        ["architecture", "atomicity", "consistency", "causal ordering",
         "efficient query", "matches paper"],
        title="Table 1: properties comparison (measured)",
    )
    all_match = True
    for report in evaluate_all(seed=args.seed):
        matches = report.matches_paper()
        all_match = all_match and matches
        table.add_row(
            report.architecture,
            check_mark(report.atomicity),
            check_mark(report.consistency),
            check_mark(report.causal_ordering),
            check_mark(report.efficient_query),
            matches,
        )
    print(table.render())
    return 0 if all_match else 1


def cmd_storage(args: argparse.Namespace) -> int:
    stats = _generate_stats(args.scale, args.seed)
    print(
        f"dataset: {fmt_count(stats.n_objects)} objects, "
        f"{fmt_bytes(stats.raw_bytes)} raw data\n"
    )
    print(render_table2(stats, include_paper=not args.no_paper))
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    stats = _generate_stats(args.scale, args.seed)
    print(render_table3(analytic_query_table(stats), include_paper=not args.no_paper))
    return 0


def cmd_costs(args: argparse.Namespace) -> int:
    stats = _generate_stats(args.scale, args.seed)
    print(render_cost_table(stats))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.graph.diagrams import render_ascii, render_dot
    from repro.sim import Simulation

    architectures = (
        [args.architecture]
        if args.architecture
        else ["s3", "s3+simpledb", "s3+simpledb+sqs"]
    )
    for index, name in enumerate(architectures, start=1):
        store = Simulation(architecture=name).store
        print(render_ascii(store))
        if args.dot:
            print()
            print(render_dot(store))
        if index != len(architectures):
            print("\n" + "=" * 60 + "\n")
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.advisor import CacheReplay, ProvenanceAdvisor

    workload = CombinedWorkload()
    events = list(
        workload.iter_events(random.Random(f"cli:{args.seed}"), args.scale)
    )
    advisor = ProvenanceAdvisor.from_bundles(
        bundle for event in events for bundle in event.all_bundles()
    )
    base, advised = CacheReplay(capacity=args.cache).compare(events)
    dedup = advisor.dedup_report()
    groups = advisor.placement_groups()
    print("provenance-aware cloud hints (§7 extension)")
    print(f"  trace: {len(events)} objects")
    print(
        f"  prefetch: hit rate {base.hit_rate:.3f} -> {advised.hit_rate:.3f} "
        f"(precision {advised.prefetch_precision:.2f})"
    )
    print(
        f"  dedup: {len(dedup)} duplicate-computation groups "
        f"({sum(len(g) - 1 for g in dedup)} redundant objects)"
    )
    print(f"  placement: {len(groups)} co-access groups")
    for source_target, count in advisor.model.transitions.most_common(5):
        print(f"  stage transition {source_target[0]} -> {source_target[1]}: x{count}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.graph.export import lineage_dot, prov_json_dumps
    from repro.passlib.records import ObjectRef

    workload = CombinedWorkload()
    bundles = [
        bundle
        for event in workload.iter_events(
            random.Random(f"cli:{args.seed}"), args.scale
        )
        for bundle in event.all_bundles()
    ]
    if args.format == "prov-json":
        print(prov_json_dumps(bundles))
    else:
        focus = ObjectRef.decode(args.focus) if args.focus else None
        print(lineage_dot(bundles, focus=focus))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.passlib.capture import PassSystem
    from repro.sim import Simulation

    try:
        sim = Simulation(architecture=args.architecture or "s3+simpledb+sqs",
                         seed=args.seed, shards=args.shards,
                         placement=args.backend,
                         concurrency=args.concurrency,
                         ddb_indexes=args.ddb_indexes,
                         write_batch=args.write_batch,
                         read_cache=args.read_cache,
                         planner=args.planner)
    except ValueError as exc:  # e.g. a malformed --backend/--ddb-indexes spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.shards > 1:
        if sim.architecture == "s3":
            print("note: --shards has no effect on the s3 architecture "
                  "(provenance lives in object metadata, not SimpleDB)")
        else:
            print(
                f"provenance domain sharded {args.shards} ways: "
                f"{', '.join(sim.store.router.domains)}"
            )
    router = sim.store.router
    if sim.architecture != "s3" and router.uses_backend("ddb"):
        placed = ", ".join(
            f"{domain}->{kind}" for domain, kind in router.placement_by_domain().items()
        )
        print(f"heterogeneous shard placement: {placed}")
        ddb_backend = sim.account.provenance_backends()["ddb"]
        if ddb_backend.index_specs:
            declared = ", ".join(
                f"{spec.name}({spec.key_attribute}; projects "
                f"{'+'.join(sorted(spec.projected_attributes))})"
                for spec in ddb_backend.index_specs
            )
            print(f"DDB global secondary indexes: {declared}")
    pas = PassSystem(workload="demo")
    pas.stage_input("demo/input.csv", b"x,y\n1,2\n")
    with pas.process("analyze", argv="--quick") as proc:
        proc.read("demo/input.csv")
        proc.write("demo/output.csv", b"sum\n3\n")
        proc.close("demo/output.csv")
    stored = sim.store_events(pas.drain_flushes())
    result = sim.read("demo/output.csv")
    print(f"stored {stored} objects via {sim.architecture}")
    print(f"read back {result.subject.encode()} consistent={result.consistent}")
    for record in result.bundle.records:
        print(f"  {record}")
    if sim.architecture != "s3":
        engine = sim.query_engine()
        outputs = engine.q2_outputs_of("analyze")
        # The engine resolves the effective pool width (argument or the
        # REPRO_QUERY_CONCURRENCY environment default).
        mode = (
            f"concurrency={engine.concurrency}"
            if engine.concurrency > 1
            else "sequential"
        )
        print(
            f"Q2 outputs-of(analyze): {outputs.result_count} file(s), "
            f"{outputs.operations} ops, modeled latency "
            f"{outputs.latency * 1000:.0f} ms ({mode}; one-at-a-time "
            f"{outputs.sequential_latency * 1000:.0f} ms)"
        )
        if outputs.predicted_cost is not None:
            metered = sim.account.prices.cost(outputs.usage).total
            print(
                f"Q2 planner={engine.planner_mode}: predicted "
                f"${outputs.predicted_cost:.8f} vs metered ${metered:.8f}"
            )
        cache = sim.account.read_cache
        if cache is not None:
            repeat = sim.query_engine().q2_outputs_of("analyze")
            print(
                f"Q2 repeated with read cache: {repeat.operations} backend "
                f"op(s) + {repeat.cache_operations} cache op(s) "
                f"(hits {cache.hits}, misses {cache.misses}, "
                f"evictions {cache.evictions}, "
                f"{cache.stored_nbytes()}B cached)"
            )
    import os

    from repro.migration import MIGRATION_ENV, parse_migration_spec

    migrate_spec = args.migrate or os.environ.get(MIGRATION_ENV, "").strip()
    if migrate_spec and sim.architecture == "s3":
        print("note: --migrate has no effect on the s3 architecture "
              "(provenance lives in object metadata, not a shard layout)")
    elif migrate_spec:
        try:
            knobs = parse_migration_spec(migrate_spec)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        online = knobs.pop("online", True)
        report = sim.migrate(online=online, **knobs)
        mode = "online" if online else "offline"
        print(
            f"{mode} migration -> shards={sim.store.router.shards} "
            f"(epoch {sim.store.routing.epoch}): "
            f"{report.items_moved} copied, {report.items_kept} kept"
        )
        if online:
            print(
                f"  double-writes {report.double_writes}, WAL replays "
                f"{report.replayed_records}, cutover epochs "
                f"{report.cutover_epochs}, verification reads "
                f"{report.verification_reads}"
            )
            for label, amount in report.cost_lines(sim.account.prices):
                if amount:
                    print(f"  {label}  ${amount:.6f}")
        followup = sim.query_engine().q2_outputs_of("analyze")
        print(
            f"Q2 after migration: {followup.result_count} file(s), "
            f"{followup.operations} ops across "
            f"{len(followup.per_shard)} shard store(s)"
        )
    print(sim.bill())
    return 0


def cmd_matrix(args: argparse.Namespace) -> int:
    import os

    from repro.bench.matrix import (
        default_cells,
        default_workloads,
        quick_cells,
        quick_workloads,
        run_matrix,
    )

    if args.quick:
        specs, cells = quick_workloads(args.scale), quick_cells()
    else:
        specs, cells = default_workloads(args.scale), default_cells()
    if args.workloads:
        wanted = set(args.workloads.split(","))
        unknown = wanted - {spec.key for spec in specs}
        if unknown:
            print(f"unknown workload key(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        specs = [spec for spec in specs if spec.key in wanted]
    if args.cells:
        wanted = set(args.cells.split(","))
        unknown = wanted - {cell.key for cell in cells}
        if unknown:
            print(f"unknown cell key(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        cells = [cell for cell in cells if cell.key in wanted]

    report = run_matrix(
        specs,
        cells,
        reps=args.reps,
        seed=args.seed,
        probe_reads=args.probe_reads,
        check_replay=not args.no_replay_check,
    )
    print(report.to_markdown())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        json_path = os.path.join(args.out, "matrix.json")
        md_path = os.path.join(args.out, "matrix.md")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        with open(md_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown())
        print(f"wrote {json_path} and {md_path}")
    if any(entry.replay_ok is False for entry in report.grid):
        print("FAIL: a cell's trace replay drifted from its capture meter",
              file=sys.stderr)
        return 1
    return 0


def _positive_int(noun: str):
    """An argparse type validating an int >= 1, naming ``noun`` on error."""

    def parse(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"{noun} must be >= 1, got {value}")
        return value

    return parse


_shard_count = _positive_int("shard count")
_worker_count = _positive_int("concurrency")
_batch_width = _positive_int("write batch")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Making a Cloud Provenance-Aware' (TaPP '09)",
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("properties", help="Table 1 (measured)").set_defaults(
        handler=cmd_properties
    )

    for name, handler, description in (
        ("storage", cmd_storage, "Table 2 (storage cost)"),
        ("queries", cmd_queries, "Table 3 (query cost, analytic)"),
        ("costs", cmd_costs, "USD bill per architecture"),
    ):
        sub = commands.add_parser(name, help=description)
        sub.add_argument("--scale", type=float, default=0.5)
        sub.add_argument("--no-paper", action="store_true",
                         help="omit the paper's columns")
        sub.set_defaults(handler=handler)

    figures = commands.add_parser("figures", help="Figures 1-3")
    figures.add_argument("--architecture", choices=["s3", "s3+simpledb",
                                                    "s3+simpledb+sqs"])
    figures.add_argument("--dot", action="store_true", help="include DOT output")
    figures.set_defaults(handler=cmd_figures)

    advise = commands.add_parser("advise", help="§7 extension: cloud hints")
    advise.add_argument("--scale", type=float, default=0.2)
    advise.add_argument("--cache", type=int, default=24)
    advise.set_defaults(handler=cmd_advise)

    demo = commands.add_parser("demo", help="end-to-end tour")
    demo.add_argument("--architecture", choices=["s3", "s3+simpledb",
                                                 "s3+simpledb+sqs"])
    demo.add_argument(
        "--shards", type=_shard_count, default=1,
        help="split the provenance domain across N stores "
        "(consistent-hash routed; default 1, the paper's layout; "
        "each store is placed per --backend)",
    )
    demo.add_argument(
        "--concurrency", type=_worker_count, default=None,
        help="scatter-gather worker-pool width for queries (default 1 = "
        "sequential; N>1 dispatches per-shard streams in parallel)",
    )
    demo.add_argument(
        "--backend", default=None, metavar="PLACEMENT",
        help="shard backend placement: 'sdb' (SimpleDB, the paper's "
        "store), 'ddb' (the DynamoDB-style store), 'mixed' (even shards "
        "on sdb, odd on ddb), or explicit '0:sdb,1:ddb' pairs; default "
        "is the REPRO_BACKEND_PLACEMENT environment spec or all-sdb",
    )
    demo.add_argument(
        "--ddb-indexes", default=None, metavar="SPEC",
        help="global secondary indexes for DynamoDB-placed shards: "
        "comma-separated key attributes, each optionally with "
        "'+included' projection attributes (e.g. 'name,input' or "
        "'input+type+name'); 'auto' enables the provenance defaults "
        "(name,input — what serves Q2/Q3 by index Query instead of "
        "Scan), '' disables; default is the REPRO_DDB_INDEXES "
        "environment spec or no indexes",
    )
    demo.add_argument(
        "--write-batch", type=_batch_width, default=None, metavar="N",
        help="group-commit width for the provenance write path: the "
        "client coalescer flushes N items per batched put "
        "(BatchPutAttributes / BatchWriteItem) and the A3 commit daemon "
        "applies N transactions per round with batched WAL deletes; "
        "default 1 (the paper's one-request-per-item path) or the "
        "REPRO_WRITE_BATCH environment override",
    )
    demo.add_argument(
        "--read-cache", nargs="?", const="on", default=None, metavar="SPEC",
        help="front provenance reads with the ElastiCache-style cache "
        "tier: bare flag or 'on' for the defaults, a byte count for a "
        "custom capacity, or 'capacity=N,staleness=SECONDS'; default is "
        "the REPRO_READ_CACHE environment spec or off (byte-identical "
        "meter)",
    )
    demo.add_argument(
        "--planner", default=None, metavar="MODE",
        choices=("off", "first-fit", "cost"),
        help="query access-path planning mode: 'off' (default — the "
        "backend's native choice, byte-identical meter), 'first-fit' "
        "(same paths, but each query carries a predicted cost), or "
        "'cost' (the cheapest path per the PriceBook cost model and "
        "live table statistics); default is the REPRO_QUERY_PLANNER "
        "environment spec or off",
    )
    demo.add_argument(
        "--migrate", default=None, metavar="SPEC",
        help="after the demo workload, migrate the provenance layout: "
        "comma-separated key=value pairs — shards=N, placement=PLACEMENT "
        "(same grammar as --backend), online=true|false (default true: "
        "the live copy/double-write/catch-up/cutover protocol; false = "
        "offline quiet-window rebalance). E.g. 'shards=8,placement=mixed'. "
        "Default is the REPRO_MIGRATION environment spec or no migration",
    )
    demo.set_defaults(handler=cmd_demo)

    matrix = commands.add_parser(
        "matrix",
        help="workload × architecture compare matrix (statistical sweep)",
    )
    matrix.add_argument(
        "--reps", type=_positive_int("repetition count"), default=3,
        help="seeded repetitions per cell (median + bootstrap CI; default 3)",
    )
    matrix.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale multiplier applied to every axis entry",
    )
    matrix.add_argument(
        "--quick", action="store_true",
        help="the reduced 2x2 CI smoke grid (one Zipfian + one "
        "deep-lineage workload, one plain + one cached cell)",
    )
    matrix.add_argument(
        "--probe-reads", type=_positive_int("probe read count"), default=40,
        metavar="N",
        help="Q1 point reads per repetition, drawn from the workload's "
        "own read distribution (what the cache hit-rate column measures)",
    )
    matrix.add_argument(
        "--workloads", default=None, metavar="KEYS",
        help="comma-separated workload keys to keep (default: all)",
    )
    matrix.add_argument(
        "--cells", default=None, metavar="KEYS",
        help="comma-separated cell keys to keep (default: all)",
    )
    matrix.add_argument(
        "--out", default="benchmarks/results", metavar="DIR",
        help="directory for matrix.json + matrix.md ('' to skip writing)",
    )
    matrix.add_argument(
        "--no-replay-check", action="store_true",
        help="skip serialising rep 0 of each cell through the JSONL "
        "trace codec and replaying it against the captured meter",
    )
    matrix.set_defaults(handler=cmd_matrix)

    export = commands.add_parser(
        "export", help="provenance as PROV-JSON or lineage DOT"
    )
    export.add_argument("--scale", type=float, default=0.05)
    export.add_argument(
        "--format", choices=["prov-json", "dot"], default="prov-json"
    )
    export.add_argument(
        "--focus", help="restrict DOT output to one object's ancestry "
        "(encoded ref, e.g. 'linux/vmlinux:v0001')"
    )
    export.set_defaults(handler=cmd_export)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
