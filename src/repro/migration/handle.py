"""Routing-epoch indirection: the one router reference everything shares.

Before online migration, every store, daemon, and query engine held a
:class:`~repro.sharding.ShardRouter` directly — fine while the layout
never changed underneath them. :class:`RouterHandle` is the level of
indirection that lets the layout change *while clients write*: all
consumers of routing (the A2/A3 stores, the commit daemon, recovery
scans, and every Q1/Q2/Q3 query phase) share one handle, and the handle
answers three questions per request:

* **where do I read?** (:meth:`RouterHandle.read_site`) — one
  :class:`Site` (layout router + store name). Outside a migration it is
  the current layout's answer; during one, reads are served from the
  *source* layout until the shard owning the path has **cut over**, at
  which point they flip to the target — per shard, so a long migration
  flips incrementally;
* **where do I write?** (:meth:`RouterHandle.write_plan`) — one or two
  sites plus a capture flag. During a migration's copy phase, writes
  land on the source and are *captured* to the migration WAL; during
  the double-write window they land on **both** layouts synchronously;
  after the owning shard cuts over, only on the target;
* **where do I scatter?** (:meth:`RouterHandle.query_sites`) — the
  union of the source layout's stores and every cut-over target store,
  deduplicated by physical identity ``(name, backend kind)``. Result
  sets gather into ref sets, and both copies of a migrating item hold
  identical values (set-merge writes), so the union is always correct;
  the extra reads during the window are honest migration overhead.

``epoch`` counts layout changes: every per-shard cutover bumps it, as
does an offline swap — consumers that cache anything derived from the
layout can invalidate on epoch change.

The handle itself knows no migration mechanics; it delegates to the
active :class:`~repro.migration.live.LiveMigration` when one is
registered. With no migration active every method degenerates to the
current router's answer, byte-identical to holding the router directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sharding import ShardRouter


@dataclass(frozen=True)
class Site:
    """One physical shard store: the layout that names it + its name.

    Two sites are the *same store* iff their :attr:`key` matches — a
    backend flip migration keeps the domain name but changes the kind,
    so identity must include both.
    """

    router: ShardRouter
    domain: str

    @property
    def kind(self) -> str:
        """Backend kind ("sdb"/"ddb") hosting this store."""
        return self.router.backend_for(self.domain)

    @property
    def key(self) -> tuple[str, str]:
        """Physical store identity: (store name, backend kind)."""
        return (self.domain, self.kind)


@dataclass(frozen=True)
class WritePlan:
    """Where one provenance write must land.

    ``sites[0]`` is the primary (what a non-migrating deployment would
    write); any further sites are migration double-writes, metered as
    overhead. ``capture`` asks the caller to also log the write to the
    migration WAL (copy phase: the bulk copy may already have passed
    this item's position, so the write is replayed during catch-up).
    """

    sites: tuple[Site, ...]
    capture: bool = False


class RouterHandle:
    """Shared, epoch-versioned routing indirection (see module doc)."""

    def __init__(self, router: ShardRouter):
        self._current = router
        #: Bumped on every layout change: each per-shard cutover of a
        #: live migration, and every offline swap.
        self.epoch = 0
        self._migration = None

    # -- layout state -----------------------------------------------------

    @property
    def current(self) -> ShardRouter:
        """The settled layout (the source while a migration runs)."""
        return self._current

    @property
    def migration(self):
        """The active :class:`LiveMigration`, or ``None``."""
        return self._migration

    @property
    def migrating(self) -> bool:
        return self._migration is not None

    def begin_migration(self, migration) -> None:
        """Register a live migration (one at a time)."""
        if self._migration is not None:
            raise RuntimeError("a migration is already in progress")
        self._migration = migration

    def bump_epoch(self) -> None:
        self.epoch += 1

    def finish_migration(self, target: ShardRouter) -> None:
        """Collapse to the target layout; the migration is complete.

        This is itself a layout change — query sites shrink from the
        source∪cut-over union to the target alone — so it bumps the
        epoch like every cutover and offline swap does.
        """
        self._current = target
        self._migration = None
        self.bump_epoch()

    def abort_migration(self) -> None:
        """Drop the migration registration (a crashed migrator).

        Routing reverts to the source layout; a re-run of the migration
        converges (copies are idempotent set-merges and the source was
        never mutated before the drop phase). Writes that already cut
        over live only in the target until the re-run completes.
        """
        self._migration = None

    def swap(self, target: ShardRouter) -> None:
        """Offline layout change (after a quiet-window rebalance)."""
        if self._migration is not None:
            raise RuntimeError("cannot swap layouts during a live migration")
        self._current = target
        self.bump_epoch()

    # -- routing ----------------------------------------------------------

    def read_site(self, path: str) -> Site:
        """The store serving point reads of ``path`` right now."""
        migration = self._migration
        if migration is not None:
            return migration.read_site(path)
        return Site(self._current, self._current.domain_for(path))

    def write_plan(self, item_name: str) -> WritePlan:
        """Where a provenance item write must land (see :class:`WritePlan`)."""
        migration = self._migration
        if migration is not None:
            return migration.write_plan(item_name)
        router = self._current
        return WritePlan(sites=(Site(router, router.domain_for_item(item_name)),))

    def delete_sites(self, item_name: str) -> tuple[Site, ...]:
        """Every store a delete of ``item_name`` must reach.

        During a migration an item may exist in both layouts (copied
        but not yet scrubbed); deleting only one copy would resurrect
        the other at cutover.
        """
        migration = self._migration
        if migration is not None:
            return migration.delete_sites(item_name)
        router = self._current
        return (Site(router, router.domain_for_item(item_name)),)

    def query_sites(self) -> tuple[Site, ...]:
        """Every store a scatter query must cover (physical dedup)."""
        migration = self._migration
        if migration is not None:
            return migration.query_sites()
        router = self._current
        return tuple(Site(router, domain) for domain in router.domains)

    # -- provisioning / introspection -------------------------------------

    def provision(self, cloud) -> None:
        self._current.provision(cloud)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        migrating = ", migrating" if self._migration is not None else ""
        return f"RouterHandle(epoch={self.epoch}, {self._current!r}{migrating})"


def fresh_handle(
    shards: int = 1,
    *,
    base_domain: str | None = None,
    placement=None,
) -> RouterHandle:
    """A new :class:`RouterHandle` over a freshly built layout.

    This is how consumers obtain routing when no shared handle was
    handed to them: stores, daemons, engines, and fleets ask the routing
    layer for a handle instead of constructing a bare
    :class:`~repro.sharding.ShardRouter` themselves (provlint PL005
    keeps router construction inside ``repro.sharding`` /
    ``repro.migration``, so layout policy — placement defaults, domain
    naming — stays in one place). ``base_domain=None`` uses the paper's
    single-domain default.
    """
    kwargs = {} if base_domain is None else {"base_domain": base_domain}
    return RouterHandle(ShardRouter(shards, placement=placement, **kwargs))


def as_handle(router) -> RouterHandle:
    """Coerce a router-or-handle into a :class:`RouterHandle`.

    A handle passes through unchanged (so every consumer given the same
    handle shares epoch and migration state); a bare
    :class:`ShardRouter` — the pre-migration calling convention, still
    used by operational scripts and tests — gets a fresh handle with no
    migration, which behaves byte-identically to the router itself.
    """
    if isinstance(router, RouterHandle):
        return router
    if isinstance(router, ShardRouter):
        return RouterHandle(router)
    raise TypeError(
        f"expected a ShardRouter or RouterHandle, got {type(router).__name__}"
    )
