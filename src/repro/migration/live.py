"""Online shard migration: copy → double-write → catch-up → cutover → drop.

The offline :func:`repro.sharding.rebalance` is documented as safe only
in a write-quiet window: it reads through replicas and *moves* items,
so a concurrent writer can race it into losing updates. This module is
the production path — a migration that runs **under live traffic**, the
layout changing while clients keep writing, with no recorded provenance
lost or duplicated. The protocol, phase by phase (driven by
:meth:`LiveMigration.step` so callers can interleave work):

1. **copy** — bulk scan-copy every source shard's items to their
   target-layout store (idempotent set-merge puts, so a crashed copy
   re-runs safely). Client writes keep landing on the source layout;
   writes whose item routes differently under the target are *also
   captured* to a migration WAL — an SQS queue of ``prov`` records in
   the :mod:`repro.core.wal` chunk format — because the bulk copy may
   already have passed their position.
2. **double-write** — the copy is complete; the window opens where
   fresh writes land on **both** layouts synchronously (reads are still
   served from the source). From here the WAL backlog is bounded: no
   new records accumulate.
3. **catch-up** — replay the WAL records accumulated during the copy
   against the target layout until the lag (queue depth) drains below
   ``lag_bound``. Replays are set-merge puts: replaying an old write
   after a newer double-write of the same item cannot lose values.
4. **cutover** — after a final drain to zero lag, flip reads to the
   target **per shard**: each flip issues metered verification reads
   against the target store, bumps the shared routing epoch, and from
   then on writes for paths owned by that shard go to the target only.
   A long migration flips incrementally; queries scatter over the
   union of source stores and cut-over target stores in the interim
   (set-gather semantics make the union exact).
5. **drop** — with every shard cut over, scrub surviving source stores
   of items that no longer route to them and drop source stores absent
   from the target layout — each item first *verified* present at its
   target site via the authoritative oracle (replica lag during the
   copy scan can hide items; stragglers are repaired from the
   authoritative state before anything is destroyed).

Every phase's overhead is metered exactly via scoped meter contexts:
:class:`MigrationReport` carries per-category :class:`~repro.aws.billing.Usage`
(copy / double-write / catch-up / verification / drop), the counters the
acceptance tests pin (``double_writes``, ``replayed_records``,
``cutover_epochs``), and the per-backend split of migration writes —
:meth:`MigrationReport.cost_lines` turns them into the
``migration.*`` billing lines ``bench_migration_live.py`` reports.

Consistency caveats: reads served from the source are exactly as fresh
as before the migration started; a cut-over shard serves the target
replicas instead (same eventual-consistency discipline). Deletes issued
mid-migration (orphan recovery) are mirrored to both layouts
immediately rather than WAL-captured; a stale WAL record can therefore
postdate a delete of its item, so catch-up replays only the captured
values still present in the source's authoritative state (dropped
records are counted on ``MigrationReport.skipped_replays``) — a
recovered orphan stays recovered. A replica-lagged copy *scan* can
still transiently resurrect an item deleted mid-copy, the same replica
caveat the offline path documents; the next recovery scan re-deletes
it — an extra copy for a while, never a lost item.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.aws.billing import DDB_GSI, Usage
from repro.core.wal import _chunk_item, _dumps, parse_record
from repro.errors import NoSuchDomain, NoSuchTable
from repro.migration.handle import RouterHandle, Site, WritePlan
from repro.passlib.records import ObjectRef
from repro.passlib.serializer import SdbItemPayload
from repro.sharding import RebalanceReport, ShardRouter, item_attribute_pairs
from repro.units import SDB_MAX_ATTRS_PER_CALL

# Phase names, in protocol order.
PENDING = "pending"
COPY = "copy"
DOUBLE_WRITE = "double_write"
CATCH_UP = "catch_up"
CUTOVER = "cutover"
DROP = "drop"
DONE = "done"
PHASES = (PENDING, COPY, DOUBLE_WRITE, CATCH_UP, CUTOVER, DROP, DONE)

#: Environment variable holding a default migration spec for the demo
#: (same grammar as ``repro demo --migrate``; see :func:`parse_migration_spec`).
MIGRATION_ENV = "REPRO_MIGRATION"

#: Distinguishes migration incarnations (their WAL queues must never
#: merge records across crashed runs).
_MIGRATION_IDS = itertools.count(1)


class MigrationError(RuntimeError):
    """The migration cannot proceed safely (an invariant failed)."""


def resolve_target_router(
    current: ShardRouter,
    shards: int | None = None,
    placement=None,
    router: ShardRouter | None = None,
) -> ShardRouter:
    """The one way a migration target layout is specified.

    Either a ready ``router``, or ``shards=``/``placement=`` knobs
    resolved against the current layout via
    :meth:`~repro.sharding.ShardRouter.resized` — which tiles the
    current placement pattern when none is given, so a shards-only
    migration never resets the deployment's backend choice to the
    environment default.
    """
    if router is not None:
        if shards is not None or placement is not None:
            raise ValueError("pass shards=/placement= or router=, not both")
        return router
    return current.resized(shards, placement)


def begin_live_migration(
    account,
    routing: RouterHandle,
    shards: int | None = None,
    placement=None,
    router: ShardRouter | None = None,
    **knobs,
) -> LiveMigration:
    """Resolve the target and start a migration on the shared handle —
    the single bootstrap ``Simulation.start_migration`` and
    ``ClientFleet.start_migration`` both delegate to."""
    migration = LiveMigration(
        account,
        routing,
        resolve_target_router(routing.current, shards, placement, router),
        **knobs,
    )
    migration.start()
    return migration


def parse_migration_spec(text: str) -> dict:
    """Parse a ``repro demo --migrate`` spec into migrate() kwargs.

    Grammar: comma-separated ``key=value`` pairs — ``shards=8``,
    ``placement=mixed`` (any :func:`repro.sharding.parse_placement`
    string), ``online=false`` (default true, the point of this module).

    >>> parse_migration_spec("shards=8,placement=mixed")
    {'shards': 8, 'placement': 'mixed'}
    """
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ValueError(f"bad migration spec part {part!r} in {text!r}")
        if key == "shards":
            kwargs["shards"] = int(value)
        elif key == "placement":
            kwargs["placement"] = value
        elif key == "online":
            lowered = value.lower()
            if lowered not in ("true", "false", "1", "0", "yes", "no"):
                raise ValueError(f"bad online flag {value!r} in {text!r}")
            kwargs["online"] = lowered in ("true", "1", "yes")
        else:
            raise ValueError(f"unknown migration knob {key!r} in {text!r}")
    if not kwargs:
        raise ValueError(f"empty migration spec {text!r}")
    return kwargs


@dataclass
class MigrationReport(RebalanceReport):
    """What an online migration did — the offline report plus the
    live-window accounting.

    The inherited counters keep their meanings (``items_moved`` counts
    bulk-copied items — online they are *copied*, with the source scrub
    deferred to the drop phase). Each ``*_usage`` field is the exact
    metered spend of one protocol category, captured in scoped meter
    contexts so concurrent client traffic is never misattributed;
    :meth:`cost_lines` prices them as distinct ``migration.*`` billing
    lines.
    """

    #: Client writes mirrored synchronously to the target layout during
    #: the double-write window (the write amplification clients pay).
    double_writes: int = 0
    #: WAL records captured during the copy phase.
    wal_records: int = 0
    #: WAL records replayed against the target during catch-up.
    replayed_records: int = 0
    #: WAL records dropped at replay because their item (or every
    #: captured value) had been deleted from the source since capture —
    #: orphan recovery mid-migration must not be undone by a stale
    #: record.
    skipped_replays: int = 0
    #: Per-shard routing-epoch bumps performed at cutover.
    cutover_epochs: int = 0
    #: Metered reads issued against target stores at each shard's flip.
    verification_reads: int = 0
    #: Items deleted from *surviving* source stores in the drop phase
    #: (they route elsewhere under the target layout).
    scrub_deletes: int = 0
    #: Items the drop-phase verification found missing (or incomplete)
    #: at their target site and re-copied from the authoritative state.
    repair_copies: int = 0
    #: Migration-issued writes per backend kind ("sdb"/"ddb"): bulk
    #: copies + double-writes + replays + repairs.
    writes_by_backend: dict[str, int] = field(default_factory=dict)
    #: Phases completed, in order (for operators and the state tests).
    phases_completed: list[str] = field(default_factory=list)
    copy_usage: Usage = field(default_factory=Usage.empty)
    double_write_usage: Usage = field(default_factory=Usage.empty)
    catch_up_usage: Usage = field(default_factory=Usage.empty)
    verification_usage: Usage = field(default_factory=Usage.empty)
    drop_usage: Usage = field(default_factory=Usage.empty)

    def overhead_usage(self) -> Usage:
        """Everything the migration itself spent (not client traffic)."""
        return (
            self.copy_usage
            + self.double_write_usage
            + self.catch_up_usage
            + self.verification_usage
            + self.drop_usage
        )

    def cost_lines(self, prices) -> list[tuple[str, float]]:
        """USD per protocol category — the new migration billing lines."""
        return [
            ("migration.copy", prices.cost(self.copy_usage).total),
            ("migration.double_write", prices.cost(self.double_write_usage).total),
            ("migration.catch_up", prices.cost(self.catch_up_usage).total),
            ("migration.verification", prices.cost(self.verification_usage).total),
            ("migration.drop", prices.cost(self.drop_usage).total),
        ]

    def overhead_cost(self, prices) -> float:
        return sum(amount for _, amount in self.cost_lines(prices))


class LiveMigration:
    """The online-migration state machine (see module doc for protocol).

    Drive it with :meth:`step` (one bounded unit of work — a shard
    copy, a WAL drain round, one shard flip — so callers interleave
    client traffic between steps) or :meth:`run` (to completion). The
    migration registers itself on the shared :class:`RouterHandle` at
    :meth:`start`, which is how every store/daemon/query consumer
    observes the double-write window and per-shard cutovers without
    holding migration state themselves.
    """

    def __init__(
        self,
        account,
        routing: RouterHandle,
        target: ShardRouter,
        lag_bound: int = 0,
        verify_sample: int = 4,
        receive_batch: int = 10,
        visibility_timeout: float = 60.0,
        put_batch: int = SDB_MAX_ATTRS_PER_CALL,
        max_drain_rounds: int = 400,
    ):
        self.account = account
        self.routing = routing
        self.source = routing.current
        self.target = target
        self.lag_bound = lag_bound
        self.verify_sample = verify_sample
        self.receive_batch = receive_batch
        self.visibility_timeout = visibility_timeout
        self.put_batch = put_batch
        self.max_drain_rounds = max_drain_rounds
        self.phase = PENDING
        self.report = MigrationReport()
        self.migration_id = next(_MIGRATION_IDS)
        self._wal_url: str | None = None
        self._wal_seq = itertools.count(1)
        self._cut_over: set[str] = set()
        self._pending_copies: list[str] = []
        self._pending_cutovers: list[str] = []
        #: Per target domain: sample of copied item names to verify at flip.
        self._verify_names: dict[str, list[str]] = {}

    # -- routing hooks (called via the RouterHandle) -----------------------

    def read_site(self, path: str) -> Site:
        target_domain = self.target.domain_for(path)
        if target_domain in self._cut_over:
            return Site(self.target, target_domain)
        return Site(self.source, self.source.domain_for(path))

    def write_plan(self, item_name: str) -> WritePlan:
        path = ObjectRef.from_item_name(item_name).path
        source_site = Site(self.source, self.source.domain_for(path))
        target_site = Site(self.target, self.target.domain_for(path))
        if target_site.key == source_site.key:
            return WritePlan(sites=(source_site,))
        if target_site.domain in self._cut_over:
            return WritePlan(sites=(target_site,))
        if self.phase == COPY:
            return WritePlan(sites=(source_site,), capture=True)
        return WritePlan(sites=(source_site, target_site))

    def delete_sites(self, item_name: str) -> tuple[Site, ...]:
        path = ObjectRef.from_item_name(item_name).path
        source_site = Site(self.source, self.source.domain_for(path))
        target_site = Site(self.target, self.target.domain_for(path))
        if target_site.key == source_site.key:
            return (source_site,)
        return (source_site, target_site)

    def query_sites(self) -> tuple[Site, ...]:
        sites = [Site(self.source, domain) for domain in self.source.domains]
        keys = {site.key for site in sites}
        for domain in self.target.domains:
            if domain not in self._cut_over:
                continue  # partially copied stores must never serve reads
            site = Site(self.target, domain)
            if site.key not in keys:
                sites.append(site)
                keys.add(site.key)
        return tuple(sites)

    # -- write-path callbacks (from core.base.put_provenance_item) ---------

    def capture_write(self, item_name: str, attributes: list[tuple[str, str]]) -> None:
        """Log one copy-phase write to the migration WAL for catch-up."""
        txn_id = f"mig-{self.migration_id:04d}-{next(self._wal_seq):06d}"
        payload = SdbItemPayload(
            item_name=item_name, attributes=tuple(attributes), overflow=()
        )
        with self.account.meter.scoped() as scope:
            for record in _chunk_item(txn_id, payload):
                self.account.sqs.send_message(self._wal_url, _dumps(record))
                self.report.wal_records += 1
        self.report.catch_up_usage += scope.usage()

    def note_double_write(self, site: Site, usage: Usage) -> None:
        """Account one mirrored client write (already performed)."""
        self.report.double_writes += 1
        self._count_write(site.kind)
        self.report.double_write_usage += usage

    def _count_write(self, kind: str) -> None:
        self.report.writes_by_backend[kind] = (
            self.report.writes_by_backend.get(kind, 0) + 1
        )

    def _invalidate_cached(self, item_name: str) -> None:
        """Write-through invalidation for the migration's own writes.

        WAL replays, repair copies, and scrub deletes bypass the
        :func:`~repro.core.base.put_provenance_item` choke point (they
        talk to backends directly), so they notify the read-cache
        authority themselves; invalidations are unmetered, so the
        migration's scoped overhead accounting is unperturbed. Cutovers
        need no hook — the routing epoch is part of every memo key.
        """
        if self.account.read_cache is not None:
            self.account.read_cache.invalidate(item_name)

    # -- the state machine -------------------------------------------------

    def start(self) -> None:
        """Provision the target layout, open the WAL, enter the copy phase.

        Registration on the shared handle happens *last*: if target
        provisioning or the WAL queue creation fails, no client write
        ever routes toward the half-built target, and a fresh
        migration can be started cleanly.
        """
        if self.phase != PENDING:
            raise MigrationError(f"cannot start from phase {self.phase!r}")
        if self.routing.migration is not None:
            raise RuntimeError("a migration is already in progress")
        with self.account.meter.scoped() as scope:
            # Creating DDB-placed destination stores also creates (and
            # backfills) their declared GSIs — overhead of the move.
            self.target.provision(self.account.provenance_backends())
        self.report.copy_usage += scope.usage()
        self._wal_url = self.account.sqs.create_queue(
            f"migration-wal-{self.migration_id:04d}"
        )
        self._pending_copies = list(self.source.domains)
        self.routing.begin_migration(self)
        self.phase = COPY

    def step(self) -> bool:
        """One bounded unit of migration work; False when fully done."""
        if self.phase == PENDING:
            self.start()
            return True
        if self.phase == COPY:
            if self._pending_copies:
                self._copy_next_shard()
            if not self._pending_copies:
                self._advance(DOUBLE_WRITE)
            return True
        if self.phase == DOUBLE_WRITE:
            # The window is open the moment the phase is entered (the
            # handle consults ``self.phase``); one step later the WAL
            # backlog — now bounded — starts draining.
            self._advance(CATCH_UP)
            return True
        if self.phase == CATCH_UP:
            self._drain_wal(self.lag_bound)
            if self.wal_lag() <= self.lag_bound:
                self._pending_cutovers = list(self.target.domains)
                self._advance(CUTOVER)
            return True
        if self.phase == CUTOVER:
            if self.wal_lag() > 0:
                # Below-bound stragglers must land before any flip.
                self._drain_wal(0)
            self._cutover_next_shard()
            if not self._pending_cutovers:
                self._advance(DROP)
            return True
        if self.phase == DROP:
            self._drop_and_scrub()
            self._advance(DONE)
            self.routing.finish_migration(self.target)
            return False
        return False

    def run(self) -> MigrationReport:
        """Drive the migration to completion; returns its report."""
        limit = 10_000  # generous backstop against a stuck phase
        for _ in range(limit):
            if not self.step():
                return self.report
        raise MigrationError(f"migration did not complete in {limit} steps")

    def _advance(self, phase: str) -> None:
        self.report.phases_completed.append(self.phase)
        self.phase = phase

    # -- copy --------------------------------------------------------------

    def _backends(self):
        return self.account.provenance_backends()

    def _put_batches(self, backend, domain: str, item_name: str, pairs) -> None:
        for start in range(0, len(pairs), self.put_batch):
            backend.put_provenance_item(
                domain, item_name, pairs[start : start + self.put_batch]
            )

    def _copy_next_shard(self) -> None:
        source_domain = self._pending_copies.pop(0)
        source_kind = self.source.backend_for(source_domain)
        backends = self._backends()
        source_backend = backends[source_kind]
        with self.account.meter.scoped() as scope:
            try:
                via_index, pages = source_backend.migration_pages(source_domain)
                for item_name, attrs in pages:
                    self.report.items_scanned += 1
                    if via_index:
                        self.report.index_streamed_items += 1
                    target_domain = self.target.domain_for_item(item_name)
                    target_kind = self.target.backend_for(target_domain)
                    if (target_domain, target_kind) == (source_domain, source_kind):
                        self.report.items_kept += 1
                        continue
                    self._put_batches(
                        backends[target_kind],
                        target_domain,
                        item_name,
                        item_attribute_pairs(attrs),
                    )
                    self.report.items_moved += 1
                    self._count_write(target_kind)
                    if target_kind != source_kind:
                        self.report.cross_backend_moves += 1
                    self.report.moves_by_domain[target_domain] = (
                        self.report.moves_by_domain.get(target_domain, 0) + 1
                    )
                    sample = self._verify_names.setdefault(target_domain, [])
                    if len(sample) < self.verify_sample:
                        sample.append(item_name)
            except (NoSuchDomain, NoSuchTable):
                # A re-run after a crashed drop phase: the store was
                # already verified empty and dropped — nothing to copy.
                pass
        self.report.copy_usage += scope.usage()

    # -- catch-up ----------------------------------------------------------

    def wal_lag(self) -> int:
        """Records still queued on the migration WAL (the catch-up lag).

        The exact depth — the CloudWatch queue-depth analogue — used
        for phase control; the drain's receives are what get metered.
        """
        if self._wal_url is None:
            return 0
        return self.account.sqs.exact_message_count(self._wal_url)

    def _drain_wal(self, target_lag: int) -> int:
        """Replay WAL records against the target until lag <= target."""
        backends = self._backends()
        applied = 0
        stuck_rounds = 0
        rounds = 0
        with self.account.meter.scoped() as scope:
            while self.wal_lag() > target_lag:
                rounds += 1
                if rounds > self.max_drain_rounds:
                    raise MigrationError(
                        f"WAL did not drain to {target_lag} in "
                        f"{self.max_drain_rounds} rounds"
                    )
                batch = self.account.sqs.receive_message(
                    self._wal_url,
                    max_messages=self.receive_batch,
                    visibility_timeout=self.visibility_timeout,
                )
                if not batch:
                    stuck_rounds += 1
                    if stuck_rounds >= 4:
                        # Sampling (or a crashed drain's locks) is hiding
                        # messages; let the visibility timeout lapse.
                        self.account.clock.advance(self.visibility_timeout + 1.0)
                        stuck_rounds = 0
                    continue
                stuck_rounds = 0
                for message in batch:
                    record = parse_record(message.body)
                    item_name = record["item"]
                    source_domain = self.source.domain_for_item(item_name)
                    source_kind = self.source.backend_for(source_domain)
                    authoritative = backends[source_kind].authoritative_item(
                        source_domain, item_name
                    )
                    # Replay transports writes the copy may have missed —
                    # only what *survives* in the source. An item (or
                    # value) deleted since capture (orphan recovery runs
                    # mid-migration and deletes from both layouts) must
                    # not be resurrected into the target by a stale WAL
                    # record; the authoritative read is the simulation's
                    # stand-in for the strongly consistent check a real
                    # replayer would issue.
                    pairs = [
                        (name, value)
                        for name, value in record["attrs"]
                        if authoritative is not None
                        and value in authoritative.get(name, ())
                    ]
                    if pairs:
                        target_domain = self.target.domain_for_item(item_name)
                        target_kind = self.target.backend_for(target_domain)
                        self._put_batches(
                            backends[target_kind], target_domain, item_name, pairs
                        )
                        self.report.replayed_records += 1
                        self._count_write(target_kind)
                        self._invalidate_cached(item_name)
                    else:
                        self.report.skipped_replays += 1
                    self.account.sqs.delete_message(
                        self._wal_url, message.receipt_handle
                    )
                    applied += 1
        self.report.catch_up_usage += scope.usage()
        return applied

    # -- cutover -----------------------------------------------------------

    def _cutover_next_shard(self) -> None:
        target_domain = self._pending_cutovers.pop(0)
        target_kind = self.target.backend_for(target_domain)
        backend = self._backends()[target_kind]
        with self.account.meter.scoped() as scope:
            for item_name in self._verify_names.get(target_domain, ()):
                attrs = backend.get_item(target_domain, item_name)
                self.report.verification_reads += 1
                if not attrs and backend.authoritative_item(
                    target_domain, item_name
                ) is None:
                    raise MigrationError(
                        f"cutover verification: {item_name!r} missing from "
                        f"{target_domain!r} ({target_kind})"
                    )
        self.report.verification_usage += scope.usage()
        self._cut_over.add(target_domain)
        self.routing.bump_epoch()
        self.report.cutover_epochs += 1

    # -- drop / scrub ------------------------------------------------------

    def _covers(self, existing, attrs) -> bool:
        """True when every (attribute, value) of ``attrs`` is present in
        ``existing`` (set-merge writes mean the target may hold more)."""
        if existing is None:
            return False
        for attribute, values in attrs.items():
            have = set(existing.get(attribute, ()))
            if not set(values) <= have:
                return False
        return True

    def _drop_and_scrub(self) -> None:
        backends = self._backends()
        target_sites = {
            (domain, self.target.backend_for(domain))
            for domain in self.target.domains
        }
        with self.account.meter.scoped() as scope:
            for source_domain in self.source.domains:
                source_kind = self.source.backend_for(source_domain)
                backend = backends[source_kind]
                survivor = (source_domain, source_kind) in target_sites
                for item_name in backend.authoritative_item_names(source_domain):
                    target_domain = self.target.domain_for_item(item_name)
                    target_kind = self.target.backend_for(target_domain)
                    if survivor and (target_domain, target_kind) == (
                        source_domain,
                        source_kind,
                    ):
                        continue  # stays put under the target layout
                    attrs = backend.authoritative_item(source_domain, item_name)
                    target_backend = backends[target_kind]
                    existing = target_backend.authoritative_item(
                        target_domain, item_name
                    )
                    if not self._covers(existing, attrs or {}):
                        # Replica lag hid this item (or some values)
                        # from the copy scan; repair before destroying
                        # the only complete copy.
                        self._put_batches(
                            target_backend,
                            target_domain,
                            item_name,
                            item_attribute_pairs(attrs),
                        )
                        self.report.repair_copies += 1
                        self._count_write(target_kind)
                        self._invalidate_cached(item_name)
                    if survivor:
                        backend.delete_item(source_domain, item_name)
                        self.report.scrub_deletes += 1
                        self._invalidate_cached(item_name)
                if not survivor:
                    backend.drop(source_domain)
                    self.report.domains_deleted.append(source_domain)
            # Teardown: the (fully drained) migration WAL queue. A
            # *crashed* run's abandoned queue has no one to delete it —
            # its records lapse under SQS retention, the queue object
            # lingers, and the re-run opens a fresh queue; the re-run's
            # copy scan makes the stale records redundant (copy-window
            # writes always also landed on the source).
            self.account.sqs.delete_queue(self._wal_url)
            self._wal_url = None
        self.report.drop_usage += scope.usage()
        self.report.index_write_units = self.report.overhead_usage().write_units(
            DDB_GSI
        )
