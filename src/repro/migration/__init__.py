"""Online shard migration: routing epochs, double-writes, WAL catch-up.

Two layers:

* :mod:`repro.migration.handle` — :class:`RouterHandle`, the shared
  routing-epoch indirection every store/daemon/query consumer holds
  instead of a bare :class:`~repro.sharding.ShardRouter`;
* :mod:`repro.migration.live` — :class:`LiveMigration`, the
  copy/double-write/catch-up/cutover/drop state machine, and
  :class:`MigrationReport`, its exact-metered accounting.

``live`` is imported lazily (PEP 562): it depends on the WAL record
formats in :mod:`repro.core`, which itself imports the handle — the
laziness is what keeps the layering acyclic.
"""

from repro.migration.handle import RouterHandle, Site, WritePlan, as_handle

_LIVE_EXPORTS = (
    "LiveMigration",
    "MigrationError",
    "MigrationReport",
    "MIGRATION_ENV",
    "PHASES",
    "parse_migration_spec",
)

__all__ = ["RouterHandle", "Site", "WritePlan", "as_handle", *_LIVE_EXPORTS]


def __getattr__(name):
    if name in _LIVE_EXPORTS:
        from repro.migration import live

        return getattr(live, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
