"""Byte-size units and formatting helpers.

The paper quotes limits and results in the binary units AWS documented in
January 2009 (1 KB = 1024 bytes, 2 KB metadata, 8 KB messages, 5 GB
objects). All limits in this library are expressed through these constants
so the numbers in the code match the numbers in the paper's text.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

#: S3 limits (paper §2.1).
S3_MAX_OBJECT_SIZE = 5 * GB
S3_MIN_OBJECT_SIZE = 1
S3_MAX_METADATA_SIZE = 2 * KB

#: SimpleDB limits (paper §2.2).
SDB_MAX_VALUE_SIZE = 1 * KB
SDB_MAX_NAME_SIZE = 1 * KB
SDB_MAX_ATTRS_PER_ITEM = 256
SDB_MAX_ATTRS_PER_CALL = 100
#: SimpleDB billed 45 bytes of indexing overhead per item name, per
#: attribute name, and per attribute value (the 2009 pricing page) —
#: the reason provenance costs noticeably more space in SimpleDB format
#: than as raw S3 metadata (paper Table 2: 121.8 MB → 177.9 MB).
SDB_BILLABLE_OVERHEAD_PER_ELEMENT = 45
#: BatchPutAttributes accepts up to 25 items per call (each item still
#: bounded by the per-call attribute cap above).
SDB_MAX_BATCH_PUT_ITEMS = 25

#: DynamoDB-style limits (the heterogeneous-backend extension; these are
#: the classic DynamoDB numbers, anachronistic next to the 2009 services
#: but the natural "SimpleDB successor" the paper's §6 asks about).
DDB_MAX_ITEM_SIZE = 400 * KB
#: One write capacity unit covers a 1 KB write; one read capacity unit
#: covers a 4 KB strongly consistent read (half for eventual reads).
DDB_WCU_BYTES = 1 * KB
DDB_RCU_BYTES = 4 * KB
#: Default provisioned throughput per table (units per simulated second).
DDB_DEFAULT_READ_CAPACITY = 1000
DDB_DEFAULT_WRITE_CAPACITY = 500
#: Byte budget of one Scan / index-Query page. Real DynamoDB pages by
#: data volume (1 MB), not item count; the simulated repositories are
#: orders of magnitude smaller, so the budget scales down likewise to
#: keep pagination behaviour (and its request-count economics) visible.
#: A scan page spends this budget on *every* item it crosses, while an
#: index page spends it only on matching projected entries — the honest
#: reason indexed reads need fewer requests.
DDB_PAGE_BYTES = 16 * KB
#: Per-entry storage/write overhead of a global secondary index (key
#: duplication plus index bookkeeping — DynamoDB documents ~100 bytes).
DDB_INDEX_ENTRY_OVERHEAD = 100
#: BatchWriteItem accepts up to 25 put requests per call; items the
#: provisioned window cannot admit come back as ``UnprocessedItems``.
DDB_MAX_BATCH_WRITE_ITEMS = 25

#: SQS limits (paper §2.3).
SQS_MAX_MESSAGE_SIZE = 8 * KB
SQS_MAX_RECEIVE_BATCH = 10
#: SendMessageBatch / DeleteMessageBatch accept up to 10 entries per call.
SQS_MAX_BATCH_ENTRIES = 10
SQS_RETENTION_SECONDS = 4 * 24 * 3600  # messages older than 4 days vanish

SECONDS_PER_DAY = 24 * 3600
SECONDS_PER_MONTH = 30 * SECONDS_PER_DAY


def fmt_bytes(n: float) -> str:
    """Render a byte count the way the paper does (e.g. ``121.8MB``).

    >>> fmt_bytes(121.8 * MB)
    '121.8MB'
    >>> fmt_bytes(1.27 * GB)
    '1.27GB'
    >>> fmt_bytes(512)
    '512B'
    """
    if n >= GB:
        value, unit = n / GB, "GB"
    elif n >= MB:
        value, unit = n / MB, "MB"
    elif n >= KB:
        value, unit = n / KB, "KB"
    else:
        return f"{int(n)}B"
    # The paper prints one decimal for MB/KB and two for GB.
    digits = 2 if unit == "GB" else 1
    return f"{value:.{digits}f}{unit}"


def fmt_count(n: int) -> str:
    """Render an operation count with thousands separators (``31,180``)."""
    return f"{n:,}"


def fmt_ratio(part: float, whole: float) -> str:
    """Render ``part`` as a percentage of ``whole`` (``9.3%``)."""
    if whole == 0:
        return "n/a"
    return f"{100.0 * part / whole:.1f}%"


def fmt_factor(part: float, whole: float) -> str:
    """Render ``part`` as a multiple of ``whole`` (``5.4x``)."""
    if whole == 0:
        return "n/a"
    factor = part / whole
    digits = 2 if factor < 1 or factor >= 7 else 1
    return f"{factor:.{digits}f}x"


def parse_size(text: str) -> int:
    """Parse a human size string (``'2KB'``, ``'1.27GB'``) into bytes.

    >>> parse_size('2KB')
    2048
    >>> parse_size('512B')
    512
    """
    text = text.strip().upper()
    for suffix, mult in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(text)
