"""One-stop simulation wiring: cloud + architecture + workload + queries.

:class:`Simulation` is the highest-level entry point — what the README
quickstart uses::

    sim = Simulation(architecture="s3+simpledb+sqs", seed=42)
    sim.run_workload(BlastWorkload(), scale=0.2)
    result = sim.store.read("blast/out/run0/q0000.blast")
    outputs = sim.query_engine().q2_outputs_of("blast")

It owns the :class:`~repro.aws.account.AWSAccount` (clock, meter,
services), constructs the requested architecture with a clock-advancing
retry policy, streams workload events through the store protocol
(pumping the A3 commit daemon as it goes), and hands out the matching
query engine.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan, NO_FAULTS
from repro.core.base import ProvenanceCloudStore, ReadResult, RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone
from repro.migration.live import (
    LiveMigration,
    begin_live_migration,
    resolve_target_router,
)
from repro.passlib.records import FlushEvent
from repro.query.engine import S3ScanEngine, SimpleDBEngine
from repro.migration.handle import fresh_handle
from repro.sharding import RebalanceReport, ShardRouter, rebalance
from repro.workloads.base import TraceStats, Workload

_FACTORIES = {
    "s3": S3Standalone,
    "s3+simpledb": S3SimpleDB,
    "s3+simpledb+sqs": S3SimpleDBSQS,
}


class Simulation:
    """A wired-up provenance-aware cloud."""

    def __init__(
        self,
        architecture: str = "s3+simpledb+sqs",
        seed: int = 0,
        consistency: ConsistencyConfig | None = None,
        faults: FaultPlan = NO_FAULTS,
        retry_attempts: int = 10,
        pump_every: int = 25,
        shards: int = 1,
        placement: str | dict[int, str] | None = None,
        concurrency: int | None = None,
        ddb_indexes: str | tuple | None = None,
        write_batch: int | None = None,
        read_cache: str | bool | int | None = None,
        planner: str | None = None,
        **architecture_kwargs,
    ):
        """``shards``/``placement`` pick the provenance layout: N stores
        routed by consistent hash, each placed on the backend the
        placement spec names (``"sdb"``, ``"ddb"``, ``"mixed"``,
        ``"0:sdb,1:ddb"``, or a ``{index: kind}`` map — default
        all-SimpleDB, or the ``REPRO_BACKEND_PLACEMENT`` environment
        spec). ``ddb_indexes`` declares global secondary indexes on
        DynamoDB-placed shards (``"name,input"``, ``"auto"``, ``""`` for
        none — default the ``REPRO_DDB_INDEXES`` environment spec), so
        Q2/Q3 phases on those shards are index Queries instead of
        Scans. ``write_batch`` sets the client coalescer's and commit
        daemon's group-commit width (default 1 — the paper's
        one-request-per-item path — or the ``REPRO_WRITE_BATCH``
        environment override). ``read_cache`` enables the
        ElastiCache-style read-cache tier fronting the provenance
        backends (``"on"``, a spec like ``"capacity=65536"``, or the
        ``REPRO_READ_CACHE`` environment override — default off,
        byte-identical on the meter). ``planner`` picks the query
        engines' access-path planning mode (``"off"``/``"first-fit"``/
        ``"cost"``, default the ``REPRO_QUERY_PLANNER`` environment
        spec or off — off is byte-identical on the meter)."""
        if architecture not in _FACTORIES:
            raise ValueError(
                f"unknown architecture {architecture!r}; "
                f"expected one of {sorted(_FACTORIES)}"
            )
        self.architecture = architecture
        self.seed = seed
        self.account = AWSAccount(
            seed=seed,
            consistency=consistency or ConsistencyConfig.strong(),
            ddb_indexes=ddb_indexes,
            read_cache=read_cache,
        )
        retry = RetryPolicy(
            attempts=retry_attempts,
            wait=lambda: self.account.clock.advance(0.5),
        )
        if architecture_kwargs.get("router") is None:
            architecture_kwargs["router"] = fresh_handle(shards, placement=placement)
        elif shards != 1 or placement is not None:
            raise ValueError("pass shards=N/placement=... or router=..., not both")
        if architecture != "s3":
            architecture_kwargs.setdefault("write_batch", write_batch)
        elif write_batch is not None:
            raise ValueError("the s3 architecture has no provenance write path to batch")
        self.store: ProvenanceCloudStore = _FACTORIES[architecture](
            self.account, faults=faults, retry=retry, **architecture_kwargs
        )
        self.store.provision()
        #: Scatter-gather worker-pool width for query engines handed out
        #: by :meth:`query_engine` (None → sequential, or the
        #: ``REPRO_QUERY_CONCURRENCY`` environment override).
        self.concurrency = concurrency
        #: Access-path planning mode for query engines handed out by
        #: :meth:`query_engine` (None → the ``REPRO_QUERY_PLANNER``
        #: environment spec, default off).
        self.planner = planner
        self._pump_every = pump_every
        self.events_stored = 0
        self.stats = TraceStats()

    # -- storing ------------------------------------------------------------

    def store_events(self, events: Iterable[FlushEvent], collect: bool = True) -> int:
        """Stream flush events through the architecture's store protocol."""
        count = 0
        for event in events:
            self.store.store(event)
            if collect:
                self.stats.add_event(event)
            count += 1
            if count % self._pump_every == 0:
                self.pump()
        self.settle()
        return count

    def store_timed_events(
        self,
        timed_events: Iterable[tuple[float, FlushEvent]],
        collect: bool = True,
    ) -> int:
        """Store ``(inter_arrival_seconds, event)`` pairs, advancing the
        simulated clock by each delay first — the rate-enveloped capture
        path bursty workloads (``workload.timed``) drive. A zero delay
        takes exactly the :meth:`store_events` store path, so untimed
        streams stay byte-identical on the meter either way.
        """
        count = 0
        for delay, event in timed_events:
            if delay > 0:
                self.account.clock.advance(delay)
            self.store.store(event)
            if collect:
                self.stats.add_event(event)
            count += 1
            if count % self._pump_every == 0:
                self.pump()
        self.settle()
        return count

    def settle(self, max_rounds: int = 12) -> None:
        """Run daemons and let eventual consistency fully converge.

        Under an adversarial consistency window the commit daemon can
        legitimately *defer* transactions (the temp object has not
        reached any sampled replica yet) — their messages stay locked
        until the visibility timeout. Settling models the passage of
        real time: quiesce replication, let timeouts lapse, re-run the
        daemon, until the WAL is empty.
        """
        self.pump()
        self.account.quiesce()
        if not isinstance(self.store, S3SimpleDBSQS):
            return
        for _ in range(max_rounds):
            if self.account.sqs.exact_visible_count(self.store.queue_url) == 0:
                remaining = self.account.sqs.exact_message_count(self.store.queue_url)
                if remaining == 0:
                    return
            self.account.clock.advance(150.0)  # past the visibility timeout
            self.pump()
            self.account.quiesce()

    def run_workload(
        self, workload: Workload, scale: float = 1.0, seed: int | None = None
    ) -> int:
        """Generate and store a workload trace; returns events stored."""
        rng = random.Random(f"{workload.name}:{self.seed if seed is None else seed}")
        if workload.timed:
            stored = self.store_timed_events(workload.iter_timed_events(rng, scale))
        else:
            stored = self.store_events(workload.iter_events(rng, scale))
        self.events_stored += stored
        return stored

    def pump(self) -> None:
        """Drain the A3 commit daemon (no-op for the other architectures)."""
        if isinstance(self.store, S3SimpleDBSQS):
            self.store.pump()

    # -- reading / querying ---------------------------------------------------

    def read(self, name: str, version: int | None = None) -> ReadResult:
        return self.store.read(name, version)

    def query_engine(self):
        """The Table 3 query engine matching this architecture.

        SimpleDB engines share the store's shard router, so queries
        scatter-gather across exactly the domains the store wrote —
        dispatched on a worker pool of ``self.concurrency`` streams
        (1 = the sequential paper behaviour).
        """
        if self.architecture == "s3":
            return S3ScanEngine(self.account)
        return SimpleDBEngine(
            self.account,
            router=self.store.routing,
            concurrency=self.concurrency,
            planner=self.planner,
        )

    def scan_engine(self) -> S3ScanEngine:
        """An S3-scan engine (for apples-to-apples comparisons)."""
        return S3ScanEngine(self.account)

    # -- layout migration -------------------------------------------------------

    def start_migration(
        self,
        shards: int | None = None,
        placement: str | dict[int, str] | None = None,
        router: ShardRouter | None = None,
        **knobs,
    ) -> LiveMigration:
        """Begin an online migration to a new shard layout/placement.

        Returns the started :class:`LiveMigration`; drive it with
        ``step()`` between batches of live traffic (or ``run()`` to
        completion). Every consumer sharing the store's routing handle
        — stores, the commit daemon, query engines from
        :meth:`query_engine` — observes the double-write window and
        per-shard cutovers as they happen.
        """
        if self.architecture == "s3":
            raise ValueError("the s3 architecture has no provenance shards to migrate")
        return begin_live_migration(
            self.account, self.store.routing, shards, placement, router, **knobs
        )

    def migrate(
        self,
        shards: int | None = None,
        placement: str | dict[int, str] | None = None,
        router: ShardRouter | None = None,
        online: bool = True,
        **knobs,
    ) -> RebalanceReport:
        """Reshape the provenance layout; returns the migration report.

        ``online=True`` (default) runs the live protocol — safe under
        concurrent writers, at the metered cost of double-writes,
        WAL catch-up, and cutover verification. ``online=False`` runs
        the offline :func:`~repro.sharding.rebalance` (cheaper: one
        write per moved item) and swaps the layout atomically — correct
        only in a write-quiet window.
        """
        if online:
            return self.start_migration(shards, placement, router, **knobs).run()
        if self.architecture == "s3":
            raise ValueError("the s3 architecture has no provenance shards to migrate")
        target = resolve_target_router(
            self.store.routing.current, shards, placement, router
        )
        report = rebalance(self.account, self.store.routing.current, target)
        self.store.routing.swap(target)
        return report

    # -- accounting ------------------------------------------------------------

    def usage(self):
        return self.account.meter.snapshot()

    def bill(self) -> str:
        return self.account.bill()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulation({self.architecture!r}, events={self.events_stored}, "
            f"now={self.account.clock.now:.0f}s)"
        )
