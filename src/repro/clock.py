"""Simulated time.

All simulated AWS behaviour that depends on wall-clock time — replica
propagation delays (eventual consistency), SQS visibility timeouts, the
4-day message retention window, the cleaner daemon's temporary-object age
threshold, and byte-hour storage billing — reads time from one
:class:`SimClock` owned by the simulation world. Tests advance the clock
explicitly, which makes every consistency race in the paper reproducible
on demand instead of being a matter of luck.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterator

from repro.concurrency import new_lock, synchronized


class SimClock:
    """A manually advanced monotonic clock with an event queue.

    The clock starts at ``epoch`` (default 0.0) and only moves when
    :meth:`advance` or :meth:`advance_to` is called. Callbacks scheduled
    with :meth:`call_at` fire, in timestamp order, as the clock sweeps
    past their deadline.

    The event heap is lock-guarded so concurrent query workers (which
    may schedule replica propagation through service writes) cannot
    corrupt it; :attr:`now` stays lock-free — a float load is atomic in
    CPython, and keeping reads lock-free means billing integration never
    holds the meter lock while waiting on the clock lock.
    """

    def __init__(self, epoch: float = 0.0):
        self._now = float(epoch)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        # Leaf in the documented lock order: nothing may be acquired
        # while the event-heap lock is held (callbacks fired by
        # advance_to mutate replica dicts directly, lock-free).
        self._lock = new_lock("leaf", name="simclock")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @synchronized
    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run when the clock reaches ``when``.

        Deadlines in the past run on the next :meth:`advance` call of any
        size (including ``advance(0)``).
        """
        heapq.heappush(self._events, (float(when), next(self._counter), callback))

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.call_at(self._now + delay, callback)

    def advance(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds, firing due events."""
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self.advance_to(self._now + dt)

    @synchronized
    def advance_to(self, when: float) -> None:
        """Move the clock forward to absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot move time backwards (now={self._now}, target={when})"
            )
        # Fire events in deadline order, never moving _now past the target.
        # An event callback may schedule further events, including ones due
        # before `when`; the loop re-examines the heap each iteration.
        while self._events and self._events[0][0] <= when:
            deadline, _, callback = heapq.heappop(self._events)
            self._now = max(self._now, deadline)
            callback()
        self._now = when

    @synchronized
    def run_until_idle(self, horizon: float | None = None) -> None:
        """Fire every scheduled event, advancing time as needed.

        This is the "quiesce" operation used to let eventual consistency
        converge: after it returns, every pending replica propagation has
        been applied. ``horizon`` bounds how far time may move.
        """
        while self._events:
            deadline = self._events[0][0]
            if horizon is not None and deadline > horizon:
                self.advance_to(horizon)
                return
            self.advance_to(max(deadline, self._now))
        if horizon is not None and horizon > self._now:
            self.advance_to(horizon)

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that have not fired yet."""
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.3f}, pending={len(self._events)})"


class Stopwatch:
    """Measures elapsed simulated time between two points.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> clock.advance(2.5)
    >>> watch.elapsed
    2.5
    """

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> float:
        """Return elapsed time and reset the start mark."""
        elapsed = self.elapsed
        self._start = self._clock.now
        return elapsed


def ticks(clock: SimClock, step: float, count: int) -> Iterator[float]:
    """Advance ``clock`` by ``step`` seconds ``count`` times, yielding time.

    A convenience for daemon loops in examples and benchmarks::

        for now in ticks(clock, step=1.0, count=60):
            daemon.run_once()
    """
    for _ in range(count):
        clock.advance(step)
        yield clock.now
