"""Learning workflow structure from stored provenance.

The provenance the architectures already store is a labelled DAG:
files ← processes ← files, with program names, arguments, and version
chains. :class:`WorkflowModel` distils from it the regularities a cloud
provider could exploit without understanding the science:

* **stage transitions** — program *A*'s outputs are read by program *B*
  (``blast → summarize``, ``cpp → cc1 → as``): the basis for prefetching
  a stage's other inputs when its first read arrives;
* **sibling groups** — outputs of one process instance are accessed
  together (a process writing ``.img`` + ``.hdr`` pairs);
* **derivation signatures** — (program, argv, input versions) tuples
  that deterministically identify a computation: two objects with equal
  signatures are duplicate results (dedup / memoisation candidates);
* **fan-out** — how many descendants an object has accumulated, a
  direct measure of how costly losing or evicting it would be.
"""

from __future__ import annotations

import hashlib
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.passlib.records import Attr, ObjectRef, ProvenanceBundle


@dataclass(frozen=True)
class DerivationSignature:
    """What produced an object: program + argv + exact input versions."""

    program: str
    argv: str
    inputs: tuple[str, ...]  # encoded ObjectRefs, sorted

    def digest(self) -> str:
        payload = "|".join((self.program, self.argv, *self.inputs))
        return hashlib.md5(payload.encode("utf-8")).hexdigest()


class WorkflowModel:
    """Aggregated workflow structure, incrementally built from bundles."""

    def __init__(self) -> None:
        #: program -> program transition counts (A's output read by B).
        self.transitions: Counter[tuple[str, str]] = Counter()
        #: process version -> file versions it wrote.
        self._outputs: dict[ObjectRef, set[ObjectRef]] = defaultdict(set)
        #: process version -> file versions it read.
        self._inputs: dict[ObjectRef, set[ObjectRef]] = defaultdict(set)
        #: file version -> the process version that wrote it.
        self._producer: dict[ObjectRef, ObjectRef] = {}
        #: process version -> program name.
        self._program: dict[ObjectRef, str] = {}
        #: process version -> argv string.
        self._argv: dict[ObjectRef, str] = {}
        #: file version -> direct dependents (files and processes).
        self._dependents: dict[ObjectRef, set[ObjectRef]] = defaultdict(set)
        self.bundles_ingested = 0

    # -- construction -------------------------------------------------------

    def ingest(self, bundle: ProvenanceBundle) -> None:
        """Fold one stored bundle into the model."""
        self.bundles_ingested += 1
        subject = bundle.subject
        if bundle.kind == "process":
            names = bundle.attribute_values(Attr.NAME)
            self._program[subject] = names[0] if names else subject.name
            argvs = bundle.attribute_values(Attr.ARGV)
            self._argv[subject] = argvs[0] if argvs else ""
            for parent in bundle.inputs():
                self._dependents[parent].add(subject)
                if not parent.name.startswith(("proc/", "pipe/")):
                    self._inputs[subject].add(parent)
                    # A file read by this program: credit a transition
                    # from the program that produced the file.
                    producer = self._producer.get(parent)
                    if producer is not None:
                        source = self._program.get(producer)
                        target = self._program.get(subject)
                        if source and target:
                            self.transitions[(source, target)] += 1
        elif bundle.kind == "file":
            for parent in bundle.inputs():
                self._dependents[parent].add(subject)
                if parent.name.startswith("proc/"):
                    self._producer[subject] = parent
                    self._outputs[parent].add(subject)

    def ingest_all(self, bundles: Iterable[ProvenanceBundle]) -> "WorkflowModel":
        for bundle in bundles:
            self.ingest(bundle)
        return self

    # -- queries ------------------------------------------------------------------

    def program_of(self, process: ObjectRef) -> str | None:
        return self._program.get(process)

    def producer_of(self, file_ref: ObjectRef) -> ObjectRef | None:
        return self._producer.get(file_ref)

    def siblings_of(self, file_ref: ObjectRef) -> set[ObjectRef]:
        """Other outputs of the process that produced this file."""
        producer = self._producer.get(file_ref)
        if producer is None:
            return set()
        return self._outputs[producer] - {file_ref}

    def inputs_of_producer(self, file_ref: ObjectRef) -> set[ObjectRef]:
        """The files the producing process read (workflow co-access set)."""
        producer = self._producer.get(file_ref)
        if producer is None:
            return set()
        return set(self._inputs[producer])

    def likely_next_programs(self, program: str, limit: int = 3) -> list[str]:
        """Programs that historically consume ``program``'s outputs."""
        candidates = Counter()
        for (source, target), count in self.transitions.items():
            if source == program:
                candidates[target] += count
        return [name for name, _ in candidates.most_common(limit)]

    def fan_out(self, ref: ObjectRef) -> int:
        """Transitive dependent count (how much is built on this object)."""
        seen: set[ObjectRef] = set()
        frontier = [ref]
        while frontier:
            node = frontier.pop()
            for child in self._dependents.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return len(seen)

    def derivation_signature(self, file_ref: ObjectRef) -> DerivationSignature | None:
        """The computation that produced a file, if known."""
        producer = self._producer.get(file_ref)
        if producer is None:
            return None
        return DerivationSignature(
            program=self._program.get(producer, producer.name),
            argv=self._argv.get(producer, ""),
            inputs=tuple(sorted(r.encode() for r in self._inputs[producer])),
        )

    def duplicate_computations(self) -> list[list[ObjectRef]]:
        """Groups of files produced by identical computations.

        Deterministic tools given identical argv and identical input
        versions produce identical outputs — each group beyond its first
        member is redundant storage and redundant compute.
        """
        groups: dict[str, list[ObjectRef]] = defaultdict(list)
        for file_ref in self._producer:
            signature = self.derivation_signature(file_ref)
            if signature is not None and signature.inputs:
                groups[signature.digest()].append(file_ref)
        return sorted(
            (sorted(refs) for refs in groups.values() if len(refs) > 1),
            key=lambda group: group[0],
        )

    def co_access_components(self) -> list[set[str]]:
        """Connected groups of object *names* linked by one workflow step.

        Objects in one component are touched by the same process
        instances — natural co-placement units for a cloud provider.
        """
        parent: dict[str, str] = {}

        def find(name: str) -> str:
            parent.setdefault(name, name)
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for process, outputs in self._outputs.items():
            touched = [r.name for r in outputs] + [
                r.name for r in self._inputs.get(process, ())
            ]
            for name in touched[1:]:
                union(touched[0], name)
        components: dict[str, set[str]] = defaultdict(set)
        for name in parent:
            components[find(name)].add(name)
        return sorted(components.values(), key=lambda c: (-len(c), sorted(c)[0]))

    def __len__(self) -> int:
        return self.bundles_ingested
