"""Extension: a provenance-aware cloud (the paper's §7 future work).

"AWS is currently agnostic of the metadata. The provenance stored with
the data presents AWS cloud with many hints about the application
storing the data. In the future, we plan to investigate how a cloud
might take advantage of this provenance."

This subpackage is that investigation, built on the reproduction:

* :mod:`repro.advisor.model` — learns workflow structure from stored
  provenance: which programs read which programs' outputs, sibling
  output groups, ancestry fan-out;
* :mod:`repro.advisor.advisor` — turns the model into actionable cloud
  hints: prefetch candidates on GET, duplicate-computation detection,
  eviction scoring, and co-placement groups;
* :mod:`repro.advisor.replay` — a cache simulator that replays a
  workload's read sequence with and without provenance-guided
  prefetching, quantifying the benefit (benchmarked in
  ``benchmarks/bench_extension_advisor.py``).
"""

from repro.advisor.advisor import CloudAdvice, ProvenanceAdvisor
from repro.advisor.model import WorkflowModel
from repro.advisor.replay import CacheReplay, ReplayResult

__all__ = [
    "ProvenanceAdvisor",
    "CloudAdvice",
    "WorkflowModel",
    "CacheReplay",
    "ReplayResult",
]
