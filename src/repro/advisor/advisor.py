"""Turning the workflow model into cloud-side hints.

:class:`ProvenanceAdvisor` is the component a provenance-aware cloud
would run next to its object store. It can be fed directly from bundles
(tests) or hydrated from a live SimpleDB provenance domain (the realistic
deployment: the cloud already holds these items — §7's observation that
the provenance "presents AWS cloud with many hints").

Four kinds of advice:

* :meth:`prefetch_for` — on a GET, which objects to stage next
  (workflow siblings, the producing stage's other inputs, and the
  historical next stage's inputs);
* :meth:`dedup_report` — computations stored more than once;
* :meth:`eviction_plan` — cold objects ranked by (no dependents, age);
* :meth:`placement_groups` — co-access components to co-locate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.advisor.model import WorkflowModel
from repro.aws.account import AWSAccount
from repro.core.base import PROV_DOMAIN
from repro.passlib.records import ObjectRef, ProvenanceBundle
from repro.passlib.serializer import bundle_from_item
from repro.query.engine import SimpleDBEngine


@dataclass(frozen=True)
class CloudAdvice:
    """One batch of hints for the storage layer."""

    prefetch: tuple[ObjectRef, ...] = ()
    dedup_groups: tuple[tuple[ObjectRef, ...], ...] = ()
    evict: tuple[ObjectRef, ...] = ()
    placement_groups: tuple[tuple[str, ...], ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.prefetch or self.dedup_groups or self.evict or self.placement_groups
        )


class ProvenanceAdvisor:
    """Provenance-derived optimisation hints for a cloud store."""

    def __init__(self, model: WorkflowModel | None = None):
        self.model = model or WorkflowModel()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_bundles(cls, bundles: Iterable[ProvenanceBundle]) -> "ProvenanceAdvisor":
        return cls(WorkflowModel().ingest_all(bundles))

    @classmethod
    def from_simpledb(
        cls, account: AWSAccount, domain: str = PROV_DOMAIN
    ) -> "ProvenanceAdvisor":
        """Hydrate from the provenance a cloud already stores.

        Walks the domain with the same paginated queries clients use —
        the advisor needs no special access, only what §4.2 put there.
        """
        advisor = cls()
        engine = SimpleDBEngine(account, domain=domain)
        token = None
        names: list[str] = []
        while True:
            page = account.simpledb.query(domain, None, next_token=token)
            names.extend(page.item_names)
            token = page.next_token
            if token is None:
                break
        for item_name in names:
            attrs = account.simpledb.get_attributes(domain, item_name)
            if not attrs:
                continue
            bundle = bundle_from_item(item_name, attrs, engine._fetch_overflow)
            advisor.model.ingest(bundle)
        return advisor

    def observe(self, bundle: ProvenanceBundle) -> None:
        """Online update as new provenance arrives (store-path hook)."""
        self.model.ingest(bundle)

    # -- advice -----------------------------------------------------------------

    def prefetch_for(self, ref: ObjectRef, limit: int = 8) -> tuple[ObjectRef, ...]:
        """Objects worth staging when ``ref`` is fetched.

        Ranked: outputs written alongside it (siblings are near-certain
        co-access), then the rest of its producing stage's input set
        (re-runs read them together), then nothing speculative — the
        advisor only suggests objects provenance actually links.
        """
        suggestions: list[ObjectRef] = []
        for sibling in sorted(self.model.siblings_of(ref)):
            suggestions.append(sibling)
        for co_input in sorted(self.model.inputs_of_producer(ref)):
            if co_input != ref and co_input not in suggestions:
                suggestions.append(co_input)
        return tuple(suggestions[:limit])

    def dedup_report(self) -> tuple[tuple[ObjectRef, ...], ...]:
        """Groups of objects produced by byte-identical computations."""
        return tuple(tuple(group) for group in self.model.duplicate_computations())

    def eviction_plan(
        self, candidates: Iterable[ObjectRef], keep_fraction: float = 0.5
    ) -> tuple[ObjectRef, ...]:
        """Rank candidates for eviction: fewest dependents first.

        Objects nothing was ever derived from are cheapest to lose — any
        consumer could re-fetch them; objects with deep descendant trees
        anchor reproducibility and should stay hot.
        """
        ranked = sorted(candidates, key=lambda r: (self.model.fan_out(r), r))
        cut = int(len(ranked) * (1.0 - keep_fraction))
        return tuple(ranked[:cut])

    def placement_groups(self, min_size: int = 2) -> tuple[tuple[str, ...], ...]:
        """Object-name groups a provider should co-locate."""
        return tuple(
            tuple(sorted(component))
            for component in self.model.co_access_components()
            if len(component) >= min_size
        )

    def advise(self, read_ref: ObjectRef | None = None) -> CloudAdvice:
        """One-shot combined advice (used by the replay evaluator)."""
        return CloudAdvice(
            prefetch=self.prefetch_for(read_ref) if read_ref else (),
            dedup_groups=self.dedup_report(),
            placement_groups=self.placement_groups(),
        )
