"""Quantifying the advisor: replay a workload's reads through a cache.

The experiment the paper's §7 gestures at: if the cloud used provenance
to prefetch, how many GET round trips would clients save? We replay the
*read accesses* of a PASS trace — every (process, file-read) in trace
order — against a fixed-size LRU cache:

* **baseline** — demand fetching only;
* **advised** — on each miss, the cache also stages what the
  :class:`~repro.advisor.ProvenanceAdvisor` suggests for the fetched
  object (siblings and co-inputs of its producing stage).

The advisor only sees provenance stored *before* the access being
served (no oracle), so the hit-rate improvement is honest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.advisor.advisor import ProvenanceAdvisor
from repro.passlib.records import FlushEvent, ObjectRef


@dataclass(frozen=True)
class ReplayResult:
    """Cache statistics for one replay."""

    accesses: int
    hits: int
    misses: int
    prefetches_issued: int
    prefetches_used: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_precision(self) -> float:
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_used / self.prefetches_issued


class _LruCache:
    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[str, bool] = OrderedDict()

    def touch(self, name: str) -> bool:
        """Access ``name``; True on hit. Was-prefetched flag is returned
        to the caller via ``take_prefetched``."""
        if name in self._entries:
            self._entries.move_to_end(name)
            return True
        return False

    def was_prefetched(self, name: str) -> bool:
        return self._entries.get(name, False)

    def install(self, name: str, prefetched: bool) -> None:
        if name in self._entries:
            self._entries.move_to_end(name)
            if not prefetched:
                self._entries[name] = False
            return
        self._entries[name] = prefetched
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class CacheReplay:
    """Replays the read sequence of a trace with optional advice."""

    def __init__(self, capacity: int = 32):
        self.capacity = capacity

    @staticmethod
    def read_sequence(events: list[FlushEvent]) -> list[tuple[ObjectRef, int]]:
        """(file read, position) pairs in trace order.

        Each stored process bundle lists its file inputs; the flush
        stream orders them causally, which is the access order a
        workflow scheduler would generate.
        """
        sequence: list[tuple[ObjectRef, int]] = []
        for position, event in enumerate(events):
            for bundle in event.all_bundles():
                if bundle.kind != "process":
                    continue
                for parent in bundle.inputs():
                    if not parent.name.startswith(("proc/", "pipe/")):
                        sequence.append((parent, position))
        return sequence

    def replay(
        self, events: list[FlushEvent], advised: bool
    ) -> ReplayResult:
        cache = _LruCache(self.capacity)
        advisor = ProvenanceAdvisor()
        accesses = hits = misses = issued = used = 0

        sequence = self.read_sequence(events)
        next_event_to_ingest = 0
        for ref, position in sequence:
            # The advisor only knows provenance flushed strictly before
            # this access's event — no peeking at the future.
            while next_event_to_ingest < position:
                for bundle in events[next_event_to_ingest].all_bundles():
                    advisor.observe(bundle)
                next_event_to_ingest += 1

            accesses += 1
            if cache.touch(ref.name):
                hits += 1
                if cache.was_prefetched(ref.name):
                    used += 1
                    cache.install(ref.name, prefetched=False)
                continue
            misses += 1
            cache.install(ref.name, prefetched=False)
            if advised:
                for suggestion in advisor.prefetch_for(ref):
                    if suggestion.name != ref.name and not cache.touch(
                        suggestion.name
                    ):
                        issued += 1
                        cache.install(suggestion.name, prefetched=True)
        return ReplayResult(
            accesses=accesses,
            hits=hits,
            misses=misses,
            prefetches_issued=issued,
            prefetches_used=used,
        )

    def compare(self, events: list[FlushEvent]) -> tuple[ReplayResult, ReplayResult]:
        """(baseline, advised) replay results over the same trace."""
        return self.replay(events, advised=False), self.replay(events, advised=True)
