"""repro — reproduction of "Making a Cloud Provenance-Aware" (TaPP '09).

Public API highlights:

* :class:`repro.aws.AWSAccount` — the simulated cloud (S3, SimpleDB, SQS,
  billing, eventual consistency).
* :class:`repro.passlib.PassSystem` — the PASS provenance capture layer.
* :mod:`repro.core` — the three provenance-aware storage architectures
  (``S3Standalone``, ``S3SimpleDB``, ``S3SimpleDBSQS``).
* :mod:`repro.workloads` — Linux-compile / Blast / Provenance-Challenge
  trace generators.
* :mod:`repro.query` — the Q1/Q2/Q3 query engine over both backends.
* :class:`repro.sharding.ShardRouter` — consistent-hash sharding of the
  provenance domain across N SimpleDB domains (scatter-gather queries).
* :mod:`repro.migration` — online shard migration: the
  :class:`~repro.migration.RouterHandle` routing-epoch indirection and
  the :class:`~repro.migration.LiveMigration`
  copy/double-write/catch-up/cutover/drop state machine.
* :mod:`repro.analysis` — the paper's §5 storage/query cost models and
  table renderers.
"""

__version__ = "1.1.0"

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.blob import Blob, BytesBlob, SyntheticBlob, as_blob
from repro.clock import SimClock
from repro.migration import RouterHandle
from repro.sharding import ShardRouter, rebalance

__all__ = [
    "AWSAccount",
    "ConsistencyConfig",
    "Blob",
    "BytesBlob",
    "SyntheticBlob",
    "as_blob",
    "SimClock",
    "RouterHandle",
    "ShardRouter",
    "rebalance",
    "__version__",
]
