"""provlint — the project's AST invariant checker.

Usage::

    python -m repro.devtools.provlint src/            # or src tests benchmarks
    python -m repro.devtools.provlint --json src/     # machine-readable

Five checkers enforce the disciplines the codebase documents but Python
cannot express (exit status 1 when any fires):

* **PL001 lock discipline** — a class with ``@synchronized`` methods
  must create ``self._lock`` via :func:`repro.concurrency.new_lock` in
  ``__init__``; every public mutator method of a *service class* in
  ``repro.aws`` (a class assigning ``self._meter`` in ``__init__``)
  must be ``@synchronized``; raw ``threading.Lock()``/``RLock()``
  constructions are confined to ``repro/concurrency.py``.
* **PL002 metering/billing coverage** — every service key a ``Meter``
  call records must have a matching ``PriceBook.cost`` line and every
  price line must belong to a metered key (no "metered but unpriced"
  spend, no dead price lines). Ownership is by *longest dotted prefix*
  and exclusive: ``dynamodb.gsi.range.*`` lines belong to
  ``dynamodb-gsi-range`` alone — they cannot ride on the shorter
  ``dynamodb-gsi`` prefix, and every metered key must own at least one
  line outright. Keys chosen at runtime are collected from conditional
  expressions and from ``billing_key`` bindings (the repo's convention
  for a dynamically selected service key — assignments and parameter
  defaults both count). ``self._meter`` may only be touched from
  synchronized service methods, private helpers running under the
  caller's lock, or ``Meter.scoped`` contexts.
* **PL003 determinism** — no wall-clock (``time.time()``,
  ``datetime.now()``, …) and no module-level ``random.*`` draws in
  library code; simulation time comes from ``SimClock`` and randomness
  from seeded ``random.Random(seed)`` constructions
  (``make_rng_family``).
* **PL004 serializer discipline** — no manual ``":v"`` key surgery
  (splitting on it or f-string-building around it) outside the wire
  codec in ``repro.passlib`` — the exact bug class behind the PR 6
  ``rsplit(":v")`` COPY-destination corruption.
* **PL005 router-handle discipline** — no ``ShardRouter(...)``
  construction and no ``.router`` attribute writes outside
  ``repro.sharding``/``repro.migration``; consumers obtain routing via
  :func:`repro.migration.handle.fresh_handle` / ``as_handle`` and hold
  a ``RouterHandle``.

Scope: PL001's service-mutator check, PL002, PL003, and PL005 apply to
library code (paths under a ``repro`` package that are not tests or
benchmarks); PL001's raw-lock check and PL004 apply to every scanned
file — hand-rolled key parsing in a test corrupts oracles just as
surely. Directory walks skip any directory containing a
``.provlint-ignore`` marker file (the known-bad lint fixtures live in
one); explicitly named files are always checked.

The allowlist below is deliberately tiny and every entry carries its
justification inline. Extend it only for code that *is* the mechanism a
rule protects (a new lock factory, a new wire codec) — never to mute a
violation in consumer code; fix the consumer instead.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Marker file: a directory containing one is skipped by directory
#: walks (explicit file arguments are still checked).
IGNORE_MARKER = ".provlint-ignore"

#: The versioned-reference wire marker PL004 polices. Kept in one
#: constant (and interpolated into diagnostics) so provlint's own
#: messages do not trip PL004's f-string check.
VREF_MARKER = ":v"

#: Meter recording methods whose first argument is a billing service key.
METER_KEYED_OPS = frozenset(
    {
        "record_request",
        "record_transfer_in",
        "record_transfer_out",
        "record_capacity",
        "adjust_stored",
    }
)

#: Wall-clock call sites PL003 rejects (module attribute -> callables).
WALL_CLOCK_CALLS = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns", "sleep"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

#: Decorators that exempt a public service method from the
#: ``@synchronized`` requirement: read-only descriptors and
#: class/static methods hold no per-instance mutable state. A
#: ``@x.setter`` is *not* exempt — setters mutate.
EXEMPT_DECORATORS = frozenset({"property", "cached_property", "classmethod", "staticmethod"})

# --------------------------------------------------------------------------
# The allowlist. Keep it tiny; every entry is a mechanism, not a consumer.
# --------------------------------------------------------------------------

ALLOWLIST: dict[str, dict[str, str]] = {
    "PL001": {
        # The one factory allowed to mint raw locks — everything else
        # calls new_lock() so the sanitizer can interpose.
        "repro/concurrency.py": "new_lock() is the project's only lock factory",
        # The sanitizer shim wraps the raw RLock it instruments; routing
        # it through new_lock() would recurse.
        "repro/devtools/sanitize.py": "OrderedLock wraps the raw lock it instruments",
    },
    "PL004": {
        # ObjectRef.encode()/decode() *are* the ':v' wire format; the
        # serializer builds on them. Everyone else must call them.
        "repro/passlib/records.py": "ObjectRef is the ':v' wire codec itself",
        "repro/passlib/serializer.py": "the serializer owns the wire format",
    },
}


def _allowed(rule: str, path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in ALLOWLIST.get(rule, ()))


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message} [fix: {self.hint}]"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


def is_library(path: Path) -> bool:
    """Library code: inside a ``repro`` package, not tests/benchmarks."""
    parts = path.as_posix().split("/")
    return "repro" in parts and "tests" not in parts and "benchmarks" not in parts


def _decorator_names(node: ast.FunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _self_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _assigns_self_attr(fn: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if _self_attr(node, attr):
                return True
    return False


def _init_of(cls: ast.ClassDef) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            return node
    return None


def _creates_lock_via_new_lock(init: ast.FunctionDef) -> bool:
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        if not any(_self_attr(t, "_lock") for t in node.targets):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "new_lock":
                return True
    return False


class _ModuleImports:
    """Which bare names in a module refer to stdlib clock/random/thread modules."""

    def __init__(self, tree: ast.Module):
        self.modules: dict[str, str] = {}   # local name -> module name
        self.from_names: dict[str, str] = {}  # local name -> "module.attr"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )


# --------------------------------------------------------------------------
# Per-file checker
# --------------------------------------------------------------------------


class FileChecker(ast.NodeVisitor):
    """Runs every per-file rule over one parsed module."""

    def __init__(self, path: Path, tree: ast.Module, repo_data: "RepoData"):
        self.path = path
        self.tree = tree
        self.library = is_library(path)
        self.imports = _ModuleImports(tree)
        self.findings: list[Finding] = []
        self.repo = repo_data
        self._class_stack: list[ast.ClassDef] = []
        self._function_stack: list[ast.FunctionDef] = []
        self._with_scoped_depth = 0

    def flag(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        if _allowed(rule, self.path):
            return
        self.findings.append(
            Finding(
                path=self.path.as_posix(),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
                hint=hint,
            )
        )

    def run(self) -> list[Finding]:
        self.visit(self.tree)
        return self.findings

    # -- structure tracking ------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self._check_pl001_class(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node)
        # A parameter default is a billing_key binding too (the keyed op
        # inside sees only the bare parameter name).
        positional = node.args.posonlyargs + node.args.args
        defaulted = positional[len(positional) - len(node.args.defaults):]
        pairs = list(zip(defaulted, node.args.defaults)) + [
            (arg, default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if arg.arg == "billing_key" or arg.arg.endswith("_billing_key"):
                self._record_metered_keys(default, node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_With(self, node: ast.With) -> None:
        scoped = any(
            isinstance(item.context_expr, ast.Call)
            and isinstance(item.context_expr.func, ast.Attribute)
            and item.context_expr.func.attr == "scoped"
            for item in node.items
        )
        if scoped:
            self._with_scoped_depth += 1
        self.generic_visit(node)
        if scoped:
            self._with_scoped_depth -= 1

    # -- PL001: lock discipline --------------------------------------------

    def _check_pl001_class(self, cls: ast.ClassDef) -> None:
        init = _init_of(cls)
        methods = [n for n in cls.body if isinstance(n, ast.FunctionDef)]
        synchronized = [m for m in methods if "synchronized" in _decorator_names(m)]
        if synchronized and (init is None or not _creates_lock_via_new_lock(init)):
            self.flag(
                "PL001",
                cls,
                f"class {cls.name} has @synchronized methods but __init__ does "
                "not create self._lock via new_lock()",
                "add `self._lock = new_lock()` to __init__ before any "
                "synchronized method can run",
            )
        if not self.library or "repro/aws/" not in self.path.as_posix():
            return
        is_service = init is not None and _assigns_self_attr(init, "_meter")
        if not is_service:
            return
        for method in methods:
            if method.name.startswith("_"):
                continue
            decorators = _decorator_names(method)
            if "synchronized" in decorators:
                continue
            if decorators & EXEMPT_DECORATORS and "setter" not in decorators:
                continue
            self.flag(
                "PL001",
                method,
                f"public method {cls.name}.{method.name} of a metered service "
                "class is not @synchronized",
                "decorate it with @synchronized (service state and the meter "
                "must mutate atomically), or rename it _private if it is a "
                "helper that only runs under a synchronized caller's lock",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_raw_lock(node)
        self._check_pl003(node)
        self._check_pl004_split(node)
        self._check_pl005_construction(node)
        self._collect_meter_keys(node)
        self.generic_visit(node)

    def _check_raw_lock(self, node: ast.Call) -> None:
        func = node.func
        lock_names = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
        if isinstance(func, ast.Attribute) and func.attr in lock_names:
            if (
                isinstance(func.value, ast.Name)
                and self.imports.modules.get(func.value.id) == "threading"
            ):
                self.flag(
                    "PL001",
                    node,
                    f"raw threading.{func.attr}() construction outside "
                    "repro.concurrency",
                    "use repro.concurrency.new_lock(order=...) so the "
                    "REPRO_SANITIZE lock-order shim can interpose",
                )
        elif isinstance(func, ast.Name):
            origin = self.imports.from_names.get(func.id, "")
            if origin in {f"threading.{name}" for name in lock_names}:
                self.flag(
                    "PL001",
                    node,
                    f"raw {origin}() construction outside repro.concurrency",
                    "use repro.concurrency.new_lock(order=...) so the "
                    "REPRO_SANITIZE lock-order shim can interpose",
                )

    # -- PL002: metering/billing coverage ----------------------------------

    def _resolve_key_values(self, key: ast.AST) -> list[str]:
        """Every service key an expression can evaluate to.

        Handles the forms billing keys actually take at call and binding
        sites: string literals, ``billing.S3``-style attributes (returned
        as ``$S3`` and resolved against billing.py's constants in the
        cross-check), names imported from ``repro.aws.billing``, and
        conditional expressions — a ``a if cond else b`` key contributes
        *both* branches, the way ``query_index`` picks between the plain
        and range GSI keys.
        """
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return [key.value]
        if isinstance(key, ast.Attribute) and isinstance(key.value, ast.Name):
            return [f"${key.attr}"]
        if isinstance(key, ast.Name):
            origin = self.imports.from_names.get(key.id, "")
            if origin.startswith("repro.aws.billing."):
                return [f"${origin.rsplit('.', 1)[1]}"]
            return []
        if isinstance(key, ast.IfExp):
            return self._resolve_key_values(key.body) + self._resolve_key_values(
                key.orelse
            )
        return []

    def _record_metered_keys(self, key: ast.AST, node: ast.AST) -> None:
        if not self.library:
            return
        for resolved in self._resolve_key_values(key):
            self.repo.metered_keys.append(
                (resolved, self.path.as_posix(), node.lineno)
            )

    def _collect_meter_keys(self, node: ast.Call) -> None:
        """Record (service key, site) for the repo-level price-book check."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in METER_KEYED_OPS):
            return
        if not node.args:
            return
        self._record_metered_keys(node.args[0], node)

    def _harvest_billing_key_binding(
        self, targets: list[ast.AST], value: ast.AST, node: ast.AST
    ) -> None:
        """``billing_key = ...`` bindings name the key a later keyed op
        records under — the binding is where the runtime choice happens
        (the keyed op itself sees only a bare local), so it is the site
        the coverage check harvests."""
        if any(
            isinstance(target, ast.Name)
            and (target.id == "billing_key" or target.id.endswith("_billing_key"))
            for target in targets
        ):
            self._record_metered_keys(value, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._harvest_billing_key_binding(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._harvest_billing_key_binding([node.target], node.value, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_pl002_meter_touch(node)
        self._check_pl005_router_write(node)
        self.generic_visit(node)

    def _check_pl002_meter_touch(self, node: ast.Attribute) -> None:
        if not self.library or not _self_attr(node, "_meter"):
            return
        if not self._function_stack:
            return
        fn = self._function_stack[-1]
        if fn.name == "__init__" or fn.name.startswith("_"):
            # __init__ wires the reference; private helpers run under
            # the public caller's (synchronized) lock — PL001 enforces
            # that every public path into them is decorated.
            return
        if "synchronized" in _decorator_names(fn):
            return
        if self._with_scoped_depth:
            return
        self.flag(
            "PL002",
            node,
            f"self._meter touched in unsynchronized public method {fn.name}",
            "decorate the method with @synchronized or record inside a "
            "Meter.scoped context",
        )

    # -- PL003: determinism -------------------------------------------------

    def _check_pl003(self, node: ast.Call) -> None:
        if not self.library:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            module = self.imports.modules.get(owner)
            if module in ("time",) and func.attr in WALL_CLOCK_CALLS["time"]:
                self.flag(
                    "PL003",
                    node,
                    f"wall-clock call {owner}.{func.attr}() in simulation code",
                    "read simulated time from the world's SimClock instead",
                )
                return
            if (
                owner in ("datetime", "date")
                and func.attr in WALL_CLOCK_CALLS.get(owner, ())
                and (
                    module == "datetime"
                    or self.imports.from_names.get(owner, "").startswith("datetime.")
                )
            ):
                self.flag(
                    "PL003",
                    node,
                    f"wall-clock call {owner}.{func.attr}() in simulation code",
                    "read simulated time from the world's SimClock instead",
                )
                return
            if module == "random":
                if func.attr == "Random" and node.args:
                    return  # seeded constructor — the rng-family idiom
                what = (
                    "unseeded random.Random()"
                    if func.attr == "Random"
                    else f"module-level random.{func.attr}()"
                )
                self.flag(
                    "PL003",
                    node,
                    f"{what} draws from global, unseeded state",
                    "derive a stream from make_rng_family(seed) or construct "
                    "random.Random(seed) with an explicit seed",
                )

    # -- PL004: serializer discipline ---------------------------------------

    def _check_pl004_split(self, node: ast.Call) -> None:
        func = node.func
        surgery = {"split", "rsplit", "partition", "rpartition", "startswith", "endswith"}
        if not (isinstance(func, ast.Attribute) and func.attr in surgery):
            return
        for arg in node.args:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and VREF_MARKER in arg.value
            ):
                self.flag(
                    "PL004",
                    node,
                    f"manual {VREF_MARKER!r} key surgery via "
                    f".{func.attr}({arg.value!r})",
                    "use ObjectRef.encode()/decode() (repro.passlib) — ad-hoc "
                    "parsing corrupts pathological names (the PR 6 COPY bug)",
                )
                return

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        has_format = any(isinstance(v, ast.FormattedValue) for v in node.values)
        builds_ref = any(
            isinstance(v, ast.Constant)
            and isinstance(v.value, str)
            and VREF_MARKER in v.value
            for v in node.values
        )
        if has_format and builds_ref:
            self.flag(
                "PL004",
                node,
                f"f-string hand-builds a {VREF_MARKER!r} versioned reference",
                "use ObjectRef.encode() (repro.passlib) so the wire format "
                "stays in one place",
            )
        self.generic_visit(node)

    # -- PL005: router-handle discipline -------------------------------------

    def _routing_layer(self) -> bool:
        posix = self.path.as_posix()
        return "repro/sharding" in posix or "repro/migration/" in posix

    def _check_pl005_construction(self, node: ast.Call) -> None:
        if not self.library or self._routing_layer():
            return
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "ShardRouter":
            self.flag(
                "PL005",
                node,
                "bare ShardRouter construction outside the routing layer",
                "obtain routing via repro.migration.handle.fresh_handle(...) "
                "(or as_handle) and hold the RouterHandle",
            )

    def _check_pl005_router_write(self, node: ast.Attribute) -> None:
        if not self.library or self._routing_layer():
            return
        if node.attr == "router" and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.flag(
                "PL005",
                node,
                "write to a .router attribute outside the routing layer",
                "route layout changes through RouterHandle.swap()/the "
                "LiveMigration state machine instead of swapping routers",
            )


# --------------------------------------------------------------------------
# Repo-level PL002 cross-check (meter keys <-> price book)
# --------------------------------------------------------------------------


class RepoData:
    """Facts gathered across files for repo-level checks."""

    def __init__(self) -> None:
        #: (key, path, line); keys starting with "$" name billing constants.
        self.metered_keys: list[tuple[str, str, int]] = []
        self.billing_constants: dict[str, str] = {}
        #: (label, line) price lines found in PriceBook.cost.
        self.price_lines: list[tuple[str, int]] = []
        self.billing_path: Path | None = None

    def harvest_billing(self, path: Path, tree: ast.Module) -> None:
        self.billing_path = path
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    self.billing_constants[target.id] = node.value.value
        for node in ast.walk(tree):
            if not (isinstance(node, ast.FunctionDef) and node.name == "cost"):
                continue
            for call in ast.walk(node):
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "append"
                ):
                    continue
                for arg in call.args:
                    if isinstance(arg, ast.Tuple) and arg.elts:
                        label = arg.elts[0]
                        if isinstance(label, ast.Constant) and isinstance(
                            label.value, str
                        ):
                            self.price_lines.append((label.value, call.lineno))

    def cross_check(self) -> list[Finding]:
        if self.billing_path is None:
            return []  # billing.py not in the scanned set — nothing to check
        findings: list[Finding] = []
        posix = self.billing_path.as_posix()

        resolved: dict[str, tuple[str, int]] = {}
        for key, path, line in self.metered_keys:
            if key.startswith("$"):
                constant = self.billing_constants.get(key[1:])
                if constant is None:
                    continue
                key = constant
            resolved.setdefault(key, (path, line))

        # A service key's price lines share its dotted prefix:
        # "dynamodb-gsi" -> "dynamodb.gsi.*". Ownership is exclusive by
        # longest prefix over every key billing.py *declares* (its
        # string constants) plus any literal keys metered directly:
        # "dynamodb.gsi.range.read_units" belongs to
        # "dynamodb-gsi-range" alone, never to the shorter
        # "dynamodb-gsi" — so a sub-service's price line cannot hide
        # behind its parent's prefix when the sub-service is never
        # metered, and every metered key must own at least one line
        # outright.
        declared = set(self.billing_constants.values()) | set(resolved)
        prefixes = {key: key.replace("-", ".") + "." for key in declared}

        def owner_of(label: str) -> str | None:
            matching = [
                key for key, prefix in prefixes.items() if label.startswith(prefix)
            ]
            if not matching:
                return None
            return max(matching, key=lambda key: len(prefixes[key]))

        owned: dict[str, list[str]] = {}
        for label, _ in self.price_lines:
            owner = owner_of(label)
            if owner is not None:
                owned.setdefault(owner, []).append(label)

        for key, (path, line) in sorted(resolved.items()):
            if not owned.get(key):
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=0,
                        rule="PL002",
                        message=(
                            f"service key {key!r} is metered but owns no "
                            f"'{prefixes[key]}*' line in PriceBook.cost "
                            "(longest-prefix ownership)"
                        ),
                        hint="add the price line (metered spend must be billable)",
                    )
                )
        for label, line in sorted(self.price_lines):
            owner = owner_of(label)
            if owner is not None and owner in resolved:
                continue
            detail = (
                f"is owned by declared key {owner!r} which is never metered"
                if owner is not None
                else "matches no metered service key"
            )
            findings.append(
                Finding(
                    path=posix,
                    line=line,
                    col=0,
                    rule="PL002",
                    message=f"price line {label!r} {detail} (dead price line)",
                    hint="meter the service or delete the line",
                )
            )
        return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(path)
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            parents = [path / p for p in relative.parents if str(p) != "."]
            if any((parent / IGNORE_MARKER).exists() for parent in parents + [path]):
                continue
            if any(part.startswith(".") for part in candidate.parts):
                continue
            yield candidate


def check_source(source: str, path: Path, repo_data: RepoData | None = None) -> list[Finding]:
    """Check one module's source text (the unit-test entry point)."""
    repo = repo_data if repo_data is not None else RepoData()
    tree = ast.parse(source, filename=str(path))
    if path.as_posix().endswith("repro/aws/billing.py"):
        repo.harvest_billing(path, tree)
    findings = FileChecker(path, tree, repo).run()
    if repo_data is None:
        findings.extend(repo.cross_check())
    return findings


def check_paths(paths: Iterable[Path]) -> list[Finding]:
    """Check files/trees; repo-level rules see the whole set at once."""
    repo = RepoData()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            findings.append(
                Finding(
                    path=path.as_posix(), line=1, col=0, rule="PL000",
                    message=f"unreadable: {error}", hint="fix file permissions",
                )
            )
            continue
        try:
            findings.extend(check_source(source, path, repo))
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=path.as_posix(), line=error.lineno or 1, col=0,
                    rule="PL000", message=f"syntax error: {error.msg}",
                    hint="fix the syntax error",
                )
            )
    findings.extend(repo.cross_check())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="provlint", description="AST invariant checker for the simulated cloud"
    )
    parser.add_argument("paths", nargs="*", default=["src"], type=Path)
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.paths] or [Path("src")]
    findings = check_paths(paths)
    if args.json:
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"provlint: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
