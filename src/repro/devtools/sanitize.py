"""Opt-in runtime sanitizer: lock-order recording + meter-scope auditing.

Enabled by setting ``REPRO_SANITIZE=1`` (any value other than empty or
``"0"``). Two instruments share this module's violation registry:

**Lock order.** :func:`repro.concurrency.new_lock` normally returns a
plain ``threading.RLock``. Under the sanitizer it returns an
:class:`OrderedLock` shim that keeps a per-thread stack of held
sanitized locks and checks every acquisition against the documented
partial order (``repro/concurrency.py``):

    service lock (rank 10)  →  meter lock (rank 20)  →  leaf (rank 30)

A thread may only acquire a lock of *strictly higher* rank than every
sanitized lock it already holds (re-entrant re-acquisition of the same
lock object is always fine). Taking a second service lock while holding
one, or any lock while holding a leaf lock, records a violation —
the interleavings that could deadlock the scatter-gather pool if the
coarse-locking model ever regresses.

**Meter attribution.** The sharded query engine attributes per-shard
spend with ``Meter.scoped`` thread-local contexts. While a query is in
flight the engine brackets its request streams with
``Meter.expect_scope()``; if the sanitizer is on and a metered record
lands on a thread inside that bracket with *no* active scope, the spend
would silently vanish from ``per_shard`` accounting — an
unattributed-spend leak, recorded here.

Violations are **recorded, not raised**: the suite runs to completion
and the test harness (``tests/conftest.py``) fails any test whose run
grew the registry, which localises the offending interleaving. With
``REPRO_SANITIZE`` unset every hook in this module is inert and the
meter's behaviour is byte-identical to the unsanitized build
(``tests/unit/test_sanitize.py`` pins that).

This module deliberately imports nothing from the simulation (only
``os``/``threading``), so the sanitizer can never perturb the world it
observes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

#: Environment variable that switches the sanitizer on.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Lock ranks by order class — the documented partial order. Acquiring
#: rank r while holding rank >= r (on a different lock) is a violation.
LOCK_RANKS = {"service": 10, "meter": 20, "leaf": 30}


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for the sanitizer."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


@dataclass(frozen=True)
class Violation:
    """One recorded sanitizer finding."""

    kind: str        # "lock-order" | "unattributed-spend"
    message: str
    thread: str

    def render(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread})"


# The registry. list.append is atomic under the GIL, which is all the
# recording path needs; reads copy. reset() swaps in a fresh list so a
# test can scope its assertions without racing late appends from pool
# threads of an earlier test.
_violations: list[Violation] = []

_local = threading.local()


def record(kind: str, message: str) -> None:
    """Record one violation (never raises — the suite must run on)."""
    _violations.append(
        Violation(kind=kind, message=message, thread=threading.current_thread().name)
    )


def violations() -> tuple[Violation, ...]:
    """Everything recorded since the last :func:`reset`."""
    return tuple(_violations)


def reset() -> None:
    """Clear the registry (test isolation)."""
    global _violations
    _violations = []


def _held_stack() -> list["OrderedLock"]:
    stack = getattr(_local, "held", None)
    if stack is None:
        stack = _local.held = []
    return stack


class OrderedLock:
    """A re-entrant lock that records acquisition order per thread.

    Drop-in for the ``threading.RLock`` surface the codebase uses
    (``acquire``/``release``/context manager). Each instance carries the
    rank of its order class; on acquisition the shim checks the calling
    thread's stack of held sanitized locks and records a lock-order
    violation when the documented partial order would be broken. The
    underlying lock is still taken either way — the sanitizer observes,
    it does not alter scheduling.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    __slots__ = ("_lock", "order", "rank", "name")

    def __init__(self, order: str, name: str | None = None):
        if order not in LOCK_RANKS:
            raise ValueError(
                f"unknown lock order {order!r}; expected one of {sorted(LOCK_RANKS)}"
            )
        self._lock = threading.RLock()
        self.order = order
        self.rank = LOCK_RANKS[order]
        if name is None:
            with OrderedLock._counter_lock:
                OrderedLock._counter += 1
                name = f"{order}#{OrderedLock._counter}"
        self.name = name

    def _check_order(self) -> None:
        held = _held_stack()
        if not held or any(lock is self for lock in held):
            return  # first lock, or a re-entrant acquisition
        worst = max(held, key=lambda lock: lock.rank)
        if self.rank <= worst.rank:
            record(
                "lock-order",
                f"acquired {self.name} (rank {self.rank}) while holding "
                f"{worst.name} (rank {worst.rank}); documented order is "
                "service -> meter -> leaf",
            )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._check_order()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _held_stack().append(self)
        return acquired

    def release(self) -> None:
        held = _held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index] is self:
                del held[index]
                break
        self._lock.release()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OrderedLock({self.name}, rank={self.rank})"
