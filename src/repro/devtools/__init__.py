"""Project-specific developer tooling: static checks + runtime sanitizers.

Two halves, one purpose — the invariants this codebase leans on (lock
ordering, metering coverage, simulated determinism, serializer and
router-handle discipline) are enforced by machines instead of reviewer
memory:

* :mod:`repro.devtools.provlint` — an AST-based static analysis pass
  (``python -m repro.devtools.provlint src/``) with five checkers,
  PL001..PL005. Run by ``make lint-prov`` and the CI ``lint-prov`` job.
* :mod:`repro.devtools.sanitize` — the opt-in runtime sanitizer
  (``REPRO_SANITIZE=1``): :func:`repro.concurrency.new_lock` hands out
  order-recording lock shims that assert the documented lock partial
  order per thread, and the :class:`~repro.aws.billing.Meter` flags
  spend recorded during a query with no active ``Meter.scoped``
  context. With the variable unset both are inert and the meter is
  byte-identical to the unsanitized build.

Neither module imports the simulation layers above it, so the tooling
can never perturb what it checks.
"""

from repro.devtools.sanitize import (
    SANITIZE_ENV,
    Violation,
    enabled,
    reset,
    violations,
)

__all__ = [
    "SANITIZE_ENV",
    "Violation",
    "enabled",
    "reset",
    "violations",
]
