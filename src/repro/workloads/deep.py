"""Deep-lineage chains: the Q2/Q3 BFS depth stress.

The §5 workloads are wide and shallow — thousands of objects whose
ancestry is a handful of hops. Real pipelines iterate: checkpoint in,
checkpoint out, ten thousand times. :class:`DeepLineageWorkload`
produces exactly that shape — one (or a few) linear chains where step
``i`` reads the output of step ``i-1`` — so a descendant query from the
chain head must walk the full depth, turning Q2/Q3 breadth-first
traversal cost from a constant into the dominant term.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.passlib.records import FlushEvent
from repro.workloads import base


class DeepLineageWorkload(base.Workload):
    """Linear read→write chains, ``chain_length`` steps deep at scale 1."""

    name = "deep-lineage"

    def __init__(
        self,
        chain_length: int = 10_000,
        n_chains: int = 1,
        step_bytes: int = 4_096,
    ):
        if chain_length < 1:
            raise ValueError(f"chains need at least one step, got {chain_length}")
        self.chain_length = chain_length
        self.n_chains = n_chains
        self.step_bytes = step_bytes

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        pas = base.make_system(self.name)
        steps = max(1, int(self.chain_length * scale))
        for chain in range(max(1, self.n_chains)):
            prev = f"deep/c{chain:02d}/s000000.dat"
            pas.stage_input(prev, base.content(rng, self.step_bytes, prev))
            yield from pas.drain_flushes()
            for step in range(1, steps + 1):
                out = f"deep/c{chain:02d}/s{step:06d}.dat"
                with pas.process(
                    "step",
                    argv=f"--chain {chain} --iteration {step}",
                    env=base.synth_env(rng, base.env_size(rng, big_fraction=0.1)),
                ) as proc:
                    proc.read(prev)
                    proc.write(
                        out,
                        base.content(
                            rng,
                            base.lognormal_size(rng, self.step_bytes, 0.3),
                            out,
                        ),
                    )
                    proc.close(out)
                yield from pas.drain_flushes()
                prev = out
                # Long chains would otherwise retain the whole history in
                # the capture layer; release flushed state as we go.
                if step % 256 == 0:
                    pas.trim_flushed()
