"""The combined evaluation dataset (paper §5).

"We use the combined provenance generated from all three benchmarks as
one single dataset for the rest of the discussion." This module does
the same: :class:`CombinedWorkload` concatenates the Linux-compile,
Blast, and Provenance-Challenge traces (file namespaces are disjoint, so
the union is well-formed), and :data:`PAPER_SCALE` is the calibrated
scale factor at which the combined trace approximates the paper's
headline statistics:

=====================  ============  =========================
quantity               paper         calibration target
=====================  ============  =========================
stored objects         31,180        ≈31k
raw data               1.27 GB       ≈1.3 GB
provenance (S3 fmt)    121.8 MB      ≈9–10% of raw
records >1 KB          24,952        ≈0.8 / object
=====================  ============  =========================

The measured values for the calibrated trace are recorded in
EXPERIMENTS.md; benchmarks at paper scale use the streaming API
(:meth:`CombinedWorkload.iter_events`) plus
:func:`repro.workloads.base.collect_stats` so the full trace never
resides in memory.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.passlib.records import FlushEvent
from repro.workloads import base
from repro.workloads.blast import BlastWorkload
from repro.workloads.linux_compile import LinuxCompileWorkload
from repro.workloads.provchallenge import ProvenanceChallengeWorkload

#: Scale factor at which the combined trace matches the paper's dataset
#: size (calibrated by benchmarks/bench_table2_storage.py; see
#: EXPERIMENTS.md for the measured statistics at this scale). At 33.0
#: the combined trace measures ≈31,150 objects and ≈1.28 GB raw data
#: against the paper's 31,180 objects and 1.27 GB.
PAPER_SCALE = 33.0


class CombinedWorkload(base.Workload):
    """Linux compile + Blast + Provenance Challenge, one dataset."""

    name = "combined"

    def __init__(
        self,
        linux: LinuxCompileWorkload | None = None,
        blast: BlastWorkload | None = None,
        challenge: ProvenanceChallengeWorkload | None = None,
    ):
        self.parts: tuple[base.Workload, ...] = (
            linux or LinuxCompileWorkload(),
            blast or BlastWorkload(),
            challenge or ProvenanceChallengeWorkload(),
        )

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        seen: dict[str, int] = {}
        for part in self.parts:
            occurrence = seen.get(part.name, 0)
            seen[part.name] = occurrence + 1
            # First occurrence of a name keeps the historical salt, so
            # the calibrated paper-scale trace (and every committed
            # baseline) stays byte-identical. Repeats of a name are
            # disambiguated by the part's deterministic instance salt
            # plus its occurrence index — without this, two same-named
            # parts whose generators ignore some draws could collapse
            # onto correlated streams.
            if occurrence == 0:
                salt = part.name
            else:
                salt = f"{part.name}#{part.instance_salt}#{occurrence}"
            part_rng = random.Random(f"{salt}:{rng.random():.17f}")
            yield from part.iter_events(part_rng, scale)


def paper_dataset(seed: int = 0, scale: float = PAPER_SCALE) -> Iterator[FlushEvent]:
    """Stream the calibrated paper-scale dataset."""
    workload = CombinedWorkload()
    rng = random.Random(f"paper:{seed}")
    return workload.iter_events(rng, scale)


def small_dataset(seed: int = 0, scale: float = 0.08) -> base.WorkloadResult:
    """A materialised miniature of the combined dataset (tests, examples)."""
    return CombinedWorkload().generate(seed=seed, scale=scale)
