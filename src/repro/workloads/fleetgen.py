"""Fleet-traffic workloads: hot-key skew and diurnal burstiness.

The §5 workloads are uniform batch jobs; the ROADMAP north star is
fleet traffic from many tenants, where a few objects take most of the
writes (Zipf's law) and arrival rates swing with the clock. These two
generators produce that shape deterministically:

* :class:`ZipfianFleetWorkload` — N tenants × K keys, with both the
  tenant and the key for each operation drawn from a Zipf distribution
  of configurable exponent ``s``. Hot keys accumulate long version
  chains (read-modify-write), which is exactly the traffic that decides
  whether the read-cache tier and group commit pay for themselves.
* :class:`DiurnalBurstWorkload` — wraps any workload's event stream in
  a sinusoidal rate envelope over the simulated clock: inter-arrival
  times are exponential draws whose rate follows a day-shaped curve, so
  capture arrives in bursts at the peak and trickles in the trough.

Both are pure functions of the seeded RNG handed to ``iter_events``
(PL003): no wall clock, no module-level random state.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Iterator, Sequence

from repro.passlib.records import FlushEvent, ObjectRef
from repro.workloads import base

#: Service programs a tenant operation runs (the Q2/Q3 probe targets).
SERVICES = ("ingest", "transform", "report")


def zipf_cdf(n: int, s: float) -> list[float]:
    """Cumulative distribution of a Zipf law over ranks ``1..n``."""
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    cdf[-1] = 1.0  # guard against float round-down at the tail
    return cdf


def zipf_pick(rng: random.Random, cdf: Sequence[float]) -> int:
    """Draw a 0-based rank from a precomputed Zipf CDF."""
    return bisect.bisect_left(cdf, rng.random())


class ZipfianFleetWorkload(base.Workload):
    """Multi-tenant read-modify-write traffic with Zipfian hot keys."""

    name = "zipfian-fleet"

    def __init__(
        self,
        n_tenants: int = 6,
        keys_per_tenant: int = 24,
        n_ops: int = 150,
        s: float = 1.1,
        median_bytes: int = 20_000,
    ):
        if s < 0:
            raise ValueError(f"the Zipf exponent must be >= 0, got {s}")
        self.n_tenants = n_tenants
        self.keys_per_tenant = keys_per_tenant
        self.n_ops = n_ops
        self.s = s
        self.median_bytes = median_bytes

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        pas = base.make_system(self.name)
        n_ops = max(1, int(self.n_ops * scale))
        tenant_cdf = zipf_cdf(self.n_tenants, self.s)
        key_cdf = zipf_cdf(self.keys_per_tenant, self.s)

        staged: set[str] = set()
        written: set[str] = set()
        for op in range(n_ops):
            tenant = zipf_pick(rng, tenant_cdf)
            key = zipf_pick(rng, key_cdf)
            config_path = f"fleet/t{tenant:03d}/config.yaml"
            if config_path not in staged:
                pas.stage_input(
                    config_path, base.content(rng, rng.randint(400, 1200), config_path)
                )
                staged.add(config_path)
                yield from pas.drain_flushes()

            key_path = f"fleet/t{tenant:03d}/k{key:03d}.dat"
            service = SERVICES[rng.randrange(len(SERVICES))]
            with pas.process(
                service,
                argv=f"--tenant {tenant} --key {key} --op {op}",
                env=base.synth_env(rng, base.env_size(rng)),
            ) as proc:
                proc.read(config_path)
                if key_path in written:
                    # Read-modify-write: the new version's provenance
                    # references the previous one, so hot keys grow the
                    # long version chains skew is famous for.
                    proc.read(key_path)
                proc.write(
                    key_path,
                    base.content(
                        rng, base.lognormal_size(rng, self.median_bytes, 0.6), key_path
                    ),
                )
                proc.close(key_path)
            written.add(key_path)
            yield from pas.drain_flushes()
            if (op + 1) % 256 == 0:
                pas.trim_flushed()

    def sample_read_refs(
        self, rng: random.Random, refs: Sequence[ObjectRef], n: int
    ) -> list[ObjectRef]:
        """Point reads follow the same Zipf law as the writes.

        Sorted object names put tenant 0 / key 0 — the hottest writers —
        at the low ranks, so read traffic concentrates on exactly the
        keys the write side made hot (and the read cache should absorb).
        """
        pool = sorted(refs)
        if not pool:
            return []
        cdf = zipf_cdf(len(pool), self.s)
        return [pool[zipf_pick(rng, cdf)] for _ in range(n)]


class DiurnalBurstWorkload(base.Workload):
    """A day-shaped arrival-rate envelope over an inner workload.

    The inner workload supplies the events; this wrapper assigns each
    one an inter-arrival delay drawn from an exponential distribution
    whose rate follows ``rate_at`` — a sinusoid between ``base_rate``
    (the overnight trough) and ``base_rate * peak_ratio`` (the daily
    peak). ``Simulation.run_workload`` advances the simulated clock by
    each delay before storing, so capture genuinely arrives in bursts.
    """

    name = "diurnal-burst"
    timed = True

    def __init__(
        self,
        inner: base.Workload | None = None,
        period: float = 86_400.0,
        base_rate: float = 0.05,
        peak_ratio: float = 8.0,
    ):
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        if peak_ratio < 1:
            raise ValueError(f"peak_ratio must be >= 1, got {peak_ratio}")
        self.inner = inner or ZipfianFleetWorkload()
        self.period = period
        self.base_rate = base_rate
        self.peak_ratio = peak_ratio

    def rate_at(self, t: float) -> float:
        """Arrival rate (events/second) at simulated time ``t``."""
        phase = 0.5 * (1.0 + math.sin(2.0 * math.pi * t / self.period - math.pi / 2.0))
        return self.base_rate * (1.0 + (self.peak_ratio - 1.0) * phase)

    def iter_timed_events(
        self, rng: random.Random, scale: float = 1.0
    ) -> Iterator[tuple[float, FlushEvent]]:
        inner_rng = random.Random(
            f"{self.inner.name}#{self.inner.instance_salt}:{rng.random():.17f}"
        )
        t = 0.0
        for event in self.inner.iter_events(inner_rng, scale):
            delay = rng.expovariate(self.rate_at(t))
            t += delay
            yield delay, event

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        for _, event in self.iter_timed_events(rng, scale):
            yield event

    def sample_read_refs(
        self, rng: random.Random, refs: Sequence[ObjectRef], n: int
    ) -> list[ObjectRef]:
        return self.inner.sample_read_refs(rng, refs, n)
