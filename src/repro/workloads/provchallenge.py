"""The First Provenance Challenge workload (paper §5, citing [10]).

The Provenance Challenge workflow [Moreau et al. 2008] is a published
fMRI image-processing pipeline, which makes it the one workload we can
reproduce structurally exactly:

* inputs: four anatomy images (image + header pairs) and one reference
  brain;
* stage 1 — ``align_warp`` (×4): each anatomy image against the
  reference, producing a warp-parameter file;
* stage 2 — ``reslice`` (×4): each warp into a resliced image/header
  pair;
* stage 3 — ``softmean``: averages the four resliced images into the
  atlas image/header;
* stage 4 — ``slicer`` (×3): x/y/z atlas slices;
* stage 5 — ``convert`` (×3): each slice into a graphic (GIF).

One workflow instance stores 9 inputs + 4 warps + 8 resliced files +
2 atlas files + 3 slices + 3 graphics = 29 objects and 15 process
bundles — a deep, narrow DAG that exercises the ancestry queries (Q3)
far more than the wide, shallow build workload does. ``n_workflows``
scales the number of independent subjects processed.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.passlib.records import FlushEvent
from repro.workloads import base


class ProvenanceChallengeWorkload(base.Workload):
    """The fMRI workflow of the First Provenance Challenge."""

    name = "provchallenge"

    def __init__(self, n_workflows: int = 5):
        self.n_workflows = n_workflows

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        pas = base.make_system(self.name)
        n_workflows = max(1, int(self.n_workflows * scale))
        reference = "fmri/reference/brain.img"
        pas.stage_input(reference, base.content(rng, 360_000, reference))
        pas.stage_input(
            "fmri/reference/brain.hdr", base.content(rng, 348, "refhdr")
        )
        yield from pas.drain_flushes()

        for subject in range(n_workflows):
            yield from self._workflow(pas, rng, subject, reference)

    def _workflow(
        self, pas, rng: random.Random, subject: int, reference: str
    ) -> Iterator[FlushEvent]:
        prefix = f"fmri/s{subject:04d}"
        env = lambda: base.synth_env(rng, base.env_size(rng, big_fraction=0.2))

        anatomy_pairs = []
        for i in range(1, 5):
            img = f"{prefix}/anatomy{i}.img"
            hdr = f"{prefix}/anatomy{i}.hdr"
            pas.stage_input(img, base.content(rng, base.lognormal_size(rng, 280_000, 0.15), img))
            pas.stage_input(hdr, base.content(rng, 348, hdr))
            anatomy_pairs.append((img, hdr))
        yield from pas.drain_flushes()

        # Stage 1: align_warp each anatomy image against the reference.
        warps = []
        for i, (img, hdr) in enumerate(anatomy_pairs, start=1):
            warp = f"{prefix}/warp{i}.warp"
            with pas.process(
                "align_warp", argv=f"{img} -R {reference} -o {warp} -m 12", env=env()
            ) as aligner:
                aligner.read(img)
                aligner.read(hdr)
                aligner.read(reference)
                aligner.write(warp, base.content(rng, base.lognormal_size(rng, 70_000, 0.3), warp))
                aligner.close(warp)
            warps.append(warp)
        yield from pas.drain_flushes()

        # Stage 2: reslice each warp into an image/header pair.
        resliced = []
        for i, warp in enumerate(warps, start=1):
            out_img = f"{prefix}/resliced{i}.img"
            out_hdr = f"{prefix}/resliced{i}.hdr"
            with pas.process("reslice", argv=f"{warp} {out_img}", env=env()) as reslicer:
                reslicer.read(warp)
                reslicer.write(out_img, base.content(rng, base.lognormal_size(rng, 280_000, 0.15), out_img))
                reslicer.close(out_img)
                reslicer.write(out_hdr, base.content(rng, 348, out_hdr))
                reslicer.close(out_hdr)
            resliced.append((out_img, out_hdr))
        yield from pas.drain_flushes()

        # Stage 3: softmean averages the resliced images into the atlas.
        atlas_img = f"{prefix}/atlas.img"
        atlas_hdr = f"{prefix}/atlas.hdr"
        with pas.process(
            "softmean", argv=f"{atlas_img} y null " + " ".join(i for i, _ in resliced), env=env()
        ) as softmean:
            for img, hdr in resliced:
                softmean.read(img)
                softmean.read(hdr)
            softmean.write(atlas_img, base.content(rng, 420_000, atlas_img))
            softmean.close(atlas_img)
            softmean.write(atlas_hdr, base.content(rng, 348, atlas_hdr))
            softmean.close(atlas_hdr)
        yield from pas.drain_flushes()

        # Stages 4-5: slice the atlas three ways, convert each to a GIF.
        for axis in ("x", "y", "z"):
            slice_path = f"{prefix}/atlas-{axis}.pgm"
            with pas.process(
                "slicer", argv=f"{atlas_img} -{axis} .5 {slice_path}", env=env()
            ) as slicer:
                slicer.read(atlas_img)
                slicer.read(atlas_hdr)
                slicer.write(slice_path, base.content(rng, base.lognormal_size(rng, 20_000, 0.2), slice_path))
                slicer.close(slice_path)
            graphic_path = f"{prefix}/atlas-{axis}.gif"
            with pas.process(
                "convert", argv=f"{slice_path} {graphic_path}", env=env()
            ) as converter:
                converter.read(slice_path)
                converter.write(graphic_path, base.content(rng, base.lognormal_size(rng, 14_000, 0.2), graphic_path))
                converter.close(graphic_path)
            yield from pas.drain_flushes()
