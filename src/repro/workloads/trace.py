"""A versioned JSONL trace format for provenance op logs, plus replay.

Re-execution from a captured trace is the reproducibility bar the
cloud-provenance literature sets: a run serialised to a trace file must
replay **byte-identically** — same events, same store order, same meter.
This module owns that format:

* :func:`dump_trace` serialises a flush-event stream (optionally with
  the fleet client that stored each event) to canonical JSONL — header
  line first, one event per line, ``sort_keys`` + fixed separators so
  identical traces are identical bytes;
* :func:`load_trace` parses and validates a whole document before
  returning anything. Any malformed line, unsupported version, length
  mismatch, or trailing garbage raises :class:`~repro.errors.
  TraceFormatError` and yields **no** events — a corrupt capture can
  never be partially applied;
* :class:`TraceReplayWorkload` adapts a loaded document back into the
  :class:`~repro.workloads.base.Workload` interface, so a captured run
  drops into every harness (simulations, fleets, the matrix runner)
  that accepts a workload.

Round-tripping is pinned by property tests:
``load(dump(events)) == events`` and ``dump(load(text)) == text``.
"""

from __future__ import annotations

import base64
import binascii
import json
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.blob import Blob, BytesBlob, SyntheticBlob
from repro.errors import TraceFormatError
from repro.passlib.records import (
    FlushEvent,
    ObjectRef,
    ProvenanceBundle,
    ProvenanceRecord,
)
from repro.workloads import base

#: Magic string identifying a trace file's first line.
TRACE_FORMAT = "repro-prov-trace"
#: The (only) format version this codec reads and writes.
TRACE_VERSION = 1

_DUMP_KWARGS = {"sort_keys": True, "separators": (",", ":")}


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_ref(ref: ObjectRef) -> list:
    return [ref.name, ref.version]


def _encode_record(record: ProvenanceRecord) -> list:
    if isinstance(record.value, ObjectRef):
        return [record.attribute, "ref", record.value.name, record.value.version]
    return [record.attribute, "str", record.value]


def _encode_bundle(bundle: ProvenanceBundle) -> dict:
    return {
        "subject": _encode_ref(bundle.subject),
        "kind": bundle.kind,
        "records": [_encode_record(r) for r in bundle.records],
    }


def _encode_data(data: Blob) -> list:
    if isinstance(data, SyntheticBlob):
        return ["synthetic", data.seed, data.size_bytes]
    return ["bytes", base64.b64encode(data.read()).decode("ascii")]


def encode_event(
    event: FlushEvent, client: str | None = None, delay: float | None = None
) -> dict:
    """One trace line's payload for ``event`` (canonical dict form)."""
    payload = {
        "bundle": _encode_bundle(event.bundle),
        "ancestors": [_encode_bundle(b) for b in event.ancestors],
        "data": _encode_data(event.data),
    }
    if client is not None:
        payload["client"] = client
    if delay is not None:
        payload["dt"] = delay
    return payload


def _parallel(events: list, column, what: str) -> list:
    if column is None:
        return [None] * len(events)
    column = list(column)
    if len(column) != len(events):
        raise ValueError(f"{len(events)} events but {len(column)} {what} entries")
    return column


def dump_trace(
    events: Iterable[FlushEvent],
    workload: str = "capture",
    clients: Iterable[str | None] | None = None,
    delays: Iterable[float | None] | None = None,
) -> str:
    """Serialise an op log to canonical JSONL text.

    ``clients`` (optional, parallel to ``events``) records which fleet
    client stored each event, enabling fleet-faithful replay.
    ``delays`` (optional, parallel) records each event's inter-arrival
    time on the simulated clock, so bursty captures replay with the
    same clock profile (JSON round-trips Python floats exactly).
    """
    events = list(events)
    client_list = _parallel(events, clients, "client")
    delay_list = _parallel(events, delays, "delay")
    lines = [
        json.dumps(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_VERSION,
                "workload": workload,
                "events": len(events),
            },
            **_DUMP_KWARGS,
        )
    ]
    lines.extend(
        json.dumps(encode_event(event, client, delay), **_DUMP_KWARGS)
        for event, client, delay in zip(events, client_list, delay_list)
    )
    return "\n".join(lines) + "\n"


def write_trace(
    path,
    events: Iterable[FlushEvent],
    workload: str = "capture",
    clients: Iterable[str | None] | None = None,
) -> None:
    """Write a trace file (text, UTF-8) at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_trace(events, workload=workload, clients=clients))


# ---------------------------------------------------------------------------
# Decoding — strict, all-or-nothing
# ---------------------------------------------------------------------------

def _fail(message: str, line: int | None = None) -> TraceFormatError:
    return TraceFormatError(message, line=line)


def _decode_ref(obj, line: int) -> ObjectRef:
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], int)
        or isinstance(obj[1], bool)
    ):
        raise _fail(f"not an object reference: {obj!r}", line)
    try:
        return ObjectRef(name=obj[0], version=obj[1])
    except ValueError as exc:
        raise _fail(str(exc), line) from exc


def _decode_record(obj, subject: ObjectRef, line: int) -> ProvenanceRecord:
    if not isinstance(obj, list) or len(obj) < 3 or not isinstance(obj[0], str):
        raise _fail(f"not a provenance record: {obj!r}", line)
    attribute, kind = obj[0], obj[1]
    if kind == "ref" and len(obj) == 4:
        value: str | ObjectRef = _decode_ref(obj[2:], line)
    elif kind == "str" and len(obj) == 3 and isinstance(obj[2], str):
        value = obj[2]
    else:
        raise _fail(f"not a provenance record: {obj!r}", line)
    return ProvenanceRecord(subject=subject, attribute=attribute, value=value)


def _decode_bundle(obj, line: int) -> ProvenanceBundle:
    if not isinstance(obj, dict) or set(obj) != {"subject", "kind", "records"}:
        raise _fail(f"not a provenance bundle: {obj!r}", line)
    subject = _decode_ref(obj["subject"], line)
    kind = obj["kind"]
    if not isinstance(kind, str):
        raise _fail(f"bundle kind must be a string, got {kind!r}", line)
    records = obj["records"]
    if not isinstance(records, list):
        raise _fail("bundle records must be a list", line)
    return ProvenanceBundle(
        subject=subject,
        kind=kind,
        records=tuple(_decode_record(r, subject, line) for r in records),
    )


def _decode_data(obj, line: int) -> Blob:
    if isinstance(obj, list) and len(obj) == 3 and obj[0] == "synthetic":
        seed, size = obj[1], obj[2]
        if not isinstance(seed, str) or not isinstance(size, int) or isinstance(size, bool):
            raise _fail(f"not a synthetic blob: {obj!r}", line)
        try:
            return SyntheticBlob(seed=seed, size_bytes=size)
        except ValueError as exc:
            raise _fail(str(exc), line) from exc
    if isinstance(obj, list) and len(obj) == 2 and obj[0] == "bytes":
        if not isinstance(obj[1], str):
            raise _fail(f"not a bytes blob: {obj!r}", line)
        try:
            return BytesBlob(base64.b64decode(obj[1], validate=True))
        except (binascii.Error, ValueError) as exc:
            raise _fail(f"invalid base64 data: {exc}", line) from exc
    raise _fail(f"not a blob encoding: {obj!r}", line)


def decode_event(obj, line: int = 0) -> tuple[FlushEvent, str | None, float | None]:
    """Decode one event line; raises :class:`TraceFormatError` on any defect."""
    if not isinstance(obj, dict):
        raise _fail(f"event line must be a JSON object, got {type(obj).__name__}", line)
    keys = set(obj)
    if not {"bundle", "ancestors", "data"} <= keys or keys - {
        "bundle",
        "ancestors",
        "data",
        "client",
        "dt",
    }:
        raise _fail(f"unexpected event keys {sorted(keys)!r}", line)
    client = obj.get("client")
    if client is not None and not isinstance(client, str):
        raise _fail(f"client must be a string, got {client!r}", line)
    delay = obj.get("dt")
    if delay is not None and (
        isinstance(delay, bool) or not isinstance(delay, (int, float)) or delay < 0
    ):
        raise _fail(f"dt must be a non-negative number, got {delay!r}", line)
    ancestors = obj["ancestors"]
    if not isinstance(ancestors, list):
        raise _fail("ancestors must be a list", line)
    try:
        event = FlushEvent(
            bundle=_decode_bundle(obj["bundle"], line),
            data=_decode_data(obj["data"], line),
            ancestors=tuple(_decode_bundle(b, line) for b in ancestors),
        )
    except ValueError as exc:  # e.g. bundle/record subject mismatch
        raise _fail(str(exc), line) from exc
    return event, client, None if delay is None else float(delay)


@dataclass
class TraceDocument:
    """A fully validated trace: the op log plus its provenance of origin."""

    workload: str
    events: list[FlushEvent]
    clients: list[str | None] = field(default_factory=list)
    delays: list[float | None] = field(default_factory=list)

    def dumps(self) -> str:
        clients = self.clients if any(c is not None for c in self.clients) else None
        delays = self.delays if any(d is not None for d in self.delays) else None
        return dump_trace(
            self.events, workload=self.workload, clients=clients, delays=delays
        )


def load_trace(text: str) -> TraceDocument:
    """Parse and validate a whole trace document — all or nothing.

    The header must parse, declare this codec's format/version, and its
    event count must match the number of event lines exactly (so
    truncated and padded files are both rejected). Every line must
    decode. Only then is anything returned.
    """
    lines = text.splitlines()
    if not lines:
        raise _fail("empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise _fail(f"header is not valid JSON: {exc}", 1) from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise _fail(f"not a {TRACE_FORMAT} file", 1)
    version = header.get("version")
    if version != TRACE_VERSION:
        raise _fail(
            f"unsupported trace version {version!r} (this codec reads {TRACE_VERSION})", 1
        )
    declared = header.get("events")
    if not isinstance(declared, int) or isinstance(declared, bool) or declared < 0:
        raise _fail(f"invalid event count {declared!r}", 1)
    workload = header.get("workload")
    if not isinstance(workload, str):
        raise _fail(f"invalid workload name {workload!r}", 1)

    body = lines[1:]
    if len(body) != declared:
        raise _fail(
            f"header declares {declared} events but file has {len(body)} event lines"
        )
    events: list[FlushEvent] = []
    clients: list[str | None] = []
    delays: list[float | None] = []
    for index, line in enumerate(body, start=2):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _fail(f"event line is not valid JSON: {exc}", index) from exc
        event, client, delay = decode_event(obj, line=index)
        events.append(event)
        clients.append(client)
        delays.append(delay)
    return TraceDocument(
        workload=workload, events=events, clients=clients, delays=delays
    )


def read_trace(path) -> TraceDocument:
    """Load and validate the trace file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace(handle.read())


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

class TraceReplayWorkload(base.Workload):
    """Replay a captured op log through the standard workload interface.

    The event stream is literal: the RNG is unused and ``scale`` must be
    1.0 (a replay is a replay — resizing it would forge provenance).
    Feeding the same document twice produces byte-identical events, so a
    replay against an identically-seeded simulation reproduces the
    original run's meter exactly.
    """

    def __init__(self, document: TraceDocument):
        self.document = document
        self.name = f"replay:{document.workload}"
        # A capture that recorded inter-arrival delays replays through
        # the clock-advancing store path, reproducing the original
        # run's burst profile (and byte_seconds) exactly.
        self.timed = any(d is not None for d in document.delays)

    @classmethod
    def from_text(cls, text: str) -> "TraceReplayWorkload":
        return cls(load_trace(text))

    @classmethod
    def from_path(cls, path) -> "TraceReplayWorkload":
        return cls(read_trace(path))

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        if scale != 1.0:
            raise ValueError(f"a trace replays only at scale 1.0, got {scale}")
        yield from self.document.events

    def iter_timed_events(
        self, rng: random.Random, scale: float = 1.0
    ) -> Iterator[tuple[float, FlushEvent]]:
        if scale != 1.0:
            raise ValueError(f"a trace replays only at scale 1.0, got {scale}")
        delays = self.document.delays or [None] * len(self.document.events)
        for event, delay in zip(self.document.events, delays):
            yield (0.0 if delay is None else delay), event
