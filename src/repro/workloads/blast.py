"""The Blast workload (paper §5, citing the PASS evaluation [11]).

Models a sequence-alignment campaign under PASS:

* a reference protein database is staged and indexed once per run by
  ``formatdb`` (three index files derived from the FASTA input);
* each query sequence goes through ``blastall`` — reading the indexes
  and the query, writing a hit report — followed by a ``perl``
  post-processing step producing a summary (a two-stage pipeline whose
  intermediate is itself a stored object, giving Q3 real descendants);
* multiple runs model different experiments sharing the database but
  producing fresh result generations.

The database and hit reports account for most of the workload's bytes,
mirroring how Blast inflates the raw-data side of Table 2 while
producing comparatively little provenance.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.passlib.records import FlushEvent
from repro.workloads import base


class BlastWorkload(base.Workload):
    """Synthetic BLAST campaign: formatdb + blastall + post-processing."""

    name = "blast"

    def __init__(
        self,
        n_runs: int = 3,
        queries_per_run: int = 24,
        db_bytes: int = 8_000_000,
    ):
        self.n_runs = n_runs
        self.queries_per_run = queries_per_run
        self.db_bytes = db_bytes

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        pas = base.make_system(self.name)
        n_runs = max(1, int(self.n_runs * scale))
        queries_per_run = max(1, int(self.queries_per_run * min(scale, 1.0) if scale < 1
                                     else self.queries_per_run))

        db_path = "blast/db/nr.fasta"
        # The reference database grows with the campaign (scale), like
        # real sequence databases grow across release cycles.
        pas.stage_input(
            db_path, base.content(rng, max(1, int(self.db_bytes * scale)), db_path)
        )
        yield from pas.drain_flushes()

        for run in range(n_runs):
            index_paths = [
                f"blast/db/run{run}/nr.{ext}" for ext in ("phr", "pin", "psq")
            ]
            with pas.process(
                "formatdb",
                argv=f"-i {db_path} -p T -n run{run}",
                env=base.synth_env(rng, base.env_size(rng)),
            ) as formatdb:
                formatdb.read(db_path)
                for path in index_paths:
                    formatdb.write(
                        path,
                        base.content(rng, base.lognormal_size(rng, 180_000, 0.4), path),
                    )
                    formatdb.close(path)
            yield from pas.drain_flushes()

            for q in range(queries_per_run):
                query_path = f"blast/queries/run{run}/q{q:04d}.fa"
                pas.stage_input(
                    query_path, base.content(rng, base.lognormal_size(rng, 1_800), query_path)
                )
                yield from pas.drain_flushes()
                hits_path = f"blast/out/run{run}/q{q:04d}.blast"
                with pas.process(
                    "blast",
                    argv=f"-p blastp -d run{run} -i {query_path} -e 1e-5 -m 8",
                    env=base.synth_env(rng, base.env_size(rng)),
                ) as blast:
                    for path in index_paths:
                        blast.read(path)
                    blast.read(query_path)
                    blast.write(
                        hits_path,
                        base.content(rng, base.lognormal_size(rng, 45_000, 0.8), hits_path),
                    )
                    blast.close(hits_path)
                yield from pas.drain_flushes()

                summary_path = f"blast/out/run{run}/q{q:04d}.summary"
                with pas.process(
                    "perl",
                    argv=f"parse_hits.pl --top 25 {hits_path}",
                    env=base.synth_env(rng, base.env_size(rng, big_fraction=0.15)),
                ) as perl:
                    perl.read(hits_path)
                    perl.write(
                        summary_path,
                        base.content(rng, base.lognormal_size(rng, 6_000), summary_path),
                    )
                    perl.close(summary_path)
                yield from pas.drain_flushes()
