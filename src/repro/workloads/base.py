"""Workload scaffolding: the generator interface and trace statistics.

A :class:`Workload` turns a seeded RNG and a scale factor into a stream
of PASS flush events. Everything downstream — the architectures, the
query engines, and the §5 analysis — consumes those events, so the
analytic tables and the live runs are computed from identical inputs.

:class:`TraceStats` accumulates exactly the quantities the paper's §5
cost model needs, *streaming* (no event retention), so paper-scale
traces can be measured without holding 31k events in memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.blob import SyntheticBlob
from repro.passlib.capture import PassSystem
from repro.passlib.records import FlushEvent, ObjectRef
from repro.passlib.serializer import to_s3_metadata, to_simpledb_items
from repro.units import KB


class Workload:
    """Base class for trace generators."""

    #: Short name recorded in every generated object's provenance.
    name: str = "workload"

    #: True for workloads whose events carry inter-arrival delays
    #: (see :meth:`iter_timed_events`); :meth:`Simulation.run_workload`
    #: advances the simulated clock between stores for these.
    timed: bool = False

    @property
    def instance_salt(self) -> str:
        """Deterministic identity that disambiguates RNG streams.

        Two workload *classes* can share a ``name`` (a replay of a blast
        trace, a subclassed variant); seeding by name alone would hand
        them the same stream. The class qualname is stable across runs
        (unlike ``id()``, which PL003 forbids), so same-named instances
        of different classes always derive distinct streams while two
        runs of the same program stay byte-identical.
        """
        return type(self).__qualname__

    def seed_key(self, seed: int) -> str:
        """The string that seeds this instance's top-level RNG stream."""
        return f"{self.name}#{self.instance_salt}:{seed}"

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        """Yield flush events in causal order. Subclasses implement."""
        raise NotImplementedError

    def iter_timed_events(
        self, rng: random.Random, scale: float = 1.0
    ) -> Iterator[tuple[float, FlushEvent]]:
        """Yield ``(inter_arrival_seconds, event)`` pairs.

        The default stream arrives back-to-back (delay 0.0 — the
        paper's batch model). Bursty workloads override this with a
        rate envelope; set ``timed = True`` so the simulation takes the
        clock-advancing store path.
        """
        for event in self.iter_events(rng, scale):
            yield 0.0, event

    def sample_read_refs(
        self, rng: random.Random, refs: Sequence[ObjectRef], n: int
    ) -> list[ObjectRef]:
        """Draw ``n`` point-read targets from ``refs`` (the stored files).

        The base distribution is uniform — the §5 workloads have no
        preferential read traffic. Skewed workloads override this so
        read-side benchmarks (cache hit rates) see the same hot keys the
        write side produced.
        """
        pool = sorted(refs)
        if not pool:
            return []
        return [pool[rng.randrange(len(pool))] for _ in range(n)]

    def generate(self, seed: int = 0, scale: float = 1.0) -> "WorkloadResult":
        """Materialise the trace (convenient for tests and examples)."""
        rng = random.Random(self.seed_key(seed))
        events = list(self.iter_events(rng, scale))
        return WorkloadResult(name=self.name, events=events)


@dataclass
class WorkloadResult:
    """A materialised trace."""

    name: str
    events: list[FlushEvent]

    @property
    def object_count(self) -> int:
        return len(self.events)

    @property
    def raw_bytes(self) -> int:
        return sum(event.data.size for event in self.events)

    def stats(self) -> "TraceStats":
        return collect_stats(self.events)


@dataclass
class TraceStats:
    """The §5 cost-model inputs, accumulated streaming.

    Field names follow the paper's formulas:

    * ``n_objects`` — S3 data PUTs (one per file close) = "Raw ops";
    * ``raw_bytes`` — file data stored = "Raw data";
    * ``s3_prov_bytes`` — provenance in the S3 metadata format (metadata
      plus spilled values), the A1 storage figure;
    * ``n_records_gt_1kb`` — records spilled to their own S3 objects,
      the ``N_provrecs>1KB`` term;
    * ``n_sdb_items`` — SimpleDB items (one per object version,
      transient objects included), the ``N_SimpleDBitems`` term;
    * ``sdb_prov_bytes`` — provenance in the SimpleDB item format;
    * ``n_put_attribute_calls`` — PutAttributes calls after 100-attribute
      batching;
    * ``n_wal_messages`` — WAL records (≈ provenance / 8 KB plus the
      per-transaction begin/data/commit envelope).
    """

    n_objects: int = 0
    raw_bytes: int = 0
    n_records: int = 0
    n_records_gt_1kb: int = 0
    s3_prov_bytes: int = 0
    n_sdb_items: int = 0
    sdb_prov_bytes: int = 0
    #: Bytes/spills attributable to *file* items only (what Q1 retrieves).
    sdb_file_bytes: int = 0
    n_file_records_gt_1kb: int = 0
    n_put_attribute_calls: int = 0
    n_wal_messages: int = 0
    wal_prov_bytes: int = 0
    n_process_bundles: int = 0
    per_workload_objects: dict[str, int] = field(default_factory=dict)

    def add_event(self, event: FlushEvent) -> None:
        from repro.core.wal import build_wal_bundle  # late: avoid cycle
        from repro.units import SDB_MAX_ATTRS_PER_CALL

        self.n_objects += 1
        self.raw_bytes += event.data.size

        workload_values = event.bundle.attribute_values("workload")
        if workload_values:
            tag = workload_values[0]
            self.per_workload_objects[tag] = self.per_workload_objects.get(tag, 0) + 1

        s3_payload = to_s3_metadata(event)
        self.s3_prov_bytes += s3_payload.metadata_size + sum(
            o.size for o in s3_payload.overflow
        )

        items = to_simpledb_items(event)
        self.n_sdb_items += len(items)
        file_item_name = event.subject.item_name
        for item in items:
            # Arch-2 provenance storage = SimpleDB *billable* bytes (raw
            # plus the documented 45-byte indexing overhead per item
            # name, attribute name, and value) + the spilled >1 KB
            # values that live as S3 objects (§5).
            from repro.units import SDB_BILLABLE_OVERHEAD_PER_ELEMENT as OVH

            item_bytes = (
                len(item.item_name.encode()) + OVH
                + sum(
                    len(n.encode()) + len(v.encode()) + 2 * OVH
                    for n, v in item.attributes
                )
                + sum(o.size for o in item.overflow)
            )
            self.sdb_prov_bytes += item_bytes
            self.n_records_gt_1kb += len(item.overflow)
            if item.item_name == file_item_name:
                self.sdb_file_bytes += item_bytes
                self.n_file_records_gt_1kb += len(item.overflow)
            self.n_put_attribute_calls += max(
                1, -(-len(item.attributes) // SDB_MAX_ATTRS_PER_CALL)
            )
        for bundle in event.all_bundles():
            self.n_records += len(bundle)
            if bundle.kind != "file":
                self.n_process_bundles += 1

        wal = build_wal_bundle(event, txn_id="stats")
        self.n_wal_messages += len(wal.messages)
        self.wal_prov_bytes += sum(len(m.encode()) for m in wal.messages)

    @property
    def prov_records_per_object(self) -> float:
        return self.n_records / self.n_objects if self.n_objects else 0.0

    @property
    def bundles_per_object(self) -> float:
        if not self.n_objects:
            return 0.0
        return self.n_sdb_items / self.n_objects


def collect_stats(events: Iterable[FlushEvent]) -> TraceStats:
    """Accumulate §5 statistics over a stream of events."""
    stats = TraceStats()
    for event in events:
        stats.add_event(event)
    return stats


# ---------------------------------------------------------------------------
# Generation helpers shared by the concrete workloads
# ---------------------------------------------------------------------------

_ENV_BASE = (
    "PATH=/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin",
    "HOME=/home/scientist",
    "SHELL=/bin/bash",
    "LANG=en_US.UTF-8",
    "TERM=xterm",
    "USER=scientist",
    "LOGNAME=scientist",
    "HOSTNAME=compute-0-1.cluster.example.edu",
)


def synth_env(rng: random.Random, target_bytes: int) -> str:
    """A realistic environment string of roughly ``target_bytes`` bytes.

    PASS records the full environment of each process; the paper notes
    process provenance "regularly" exceeds the 2 KB S3 metadata limit,
    so workloads draw environment sizes spanning the 1 KB spill
    threshold.
    """
    parts = list(_ENV_BASE)
    size = sum(len(p) + 1 for p in parts)
    counter = 0
    while size < target_bytes:
        name = f"LD_PRELOAD_{counter}" if counter % 7 == 0 else f"APP_VAR_{counter}"
        value = "".join(rng.choices("abcdefghijklmnop/:._-", k=rng.randint(24, 96)))
        entry = f"{name}={value}"
        parts.append(entry)
        size += len(entry) + 1
        counter += 1
    return "\n".join(parts)


def lognormal_size(rng: random.Random, median: int, sigma: float = 0.7,
                   floor: int = 64, ceiling: int = 64 * 1024 * 1024) -> int:
    """A file size drawn from a lognormal around ``median`` bytes."""
    import math

    value = int(rng.lognormvariate(math.log(median), sigma))
    return max(floor, min(ceiling, value))


def content(rng: random.Random, size: int, tag: str) -> SyntheticBlob:
    """Fresh synthetic content of ``size`` bytes (unique seed per call)."""
    return SyntheticBlob(seed=f"{tag}:{rng.random():.17f}", size_bytes=size)


def env_size(rng: random.Random, big_fraction: float = 0.55) -> int:
    """Environment byte size: often below 1 KB, frequently well above.

    Calibrated so the combined dataset spills roughly 0.8 records per
    stored object (the paper's 24,952 oversized records over 31,180
    objects) — PASS captures the full environment, and scientific
    pipelines carry fat module/scheduler environments.
    """
    if rng.random() < big_fraction:
        return rng.randint(int(1.1 * KB), 6 * KB)
    return rng.randint(500, 1000)


def make_system(name: str) -> PassSystem:
    return PassSystem(workload=name)
