"""The Linux-compile workload (paper §5).

Models the provenance shape of building a kernel tree under PASS:

* a tree of ``.c`` sources and shared ``.h`` headers is staged;
* ``make`` drives per-translation-unit pipelines — a ``sh`` wrapper
  spawns the classic ``cpp | cc1 | as`` pipeline (connected by pipes,
  which PASS records as transient objects), reading the source plus a
  subset of headers and writing the ``.o``. Each object file therefore
  piggybacks several transient bundles, which is where the paper's
  SimpleDB item counts (well above the object count) and its oversized
  process records come from;
* sources are grouped into **modules**; each build pass links a
  ``built-in.o`` per module and finally links ``vmlinux`` from the
  module objects — keeping every link's input list within SimpleDB's
  256-attributes-per-item limit, exactly how real kernel builds nest
  their links;
* incremental rebuild passes: ``vi`` sessions rewrite a fraction of
  sources (new file versions), the affected objects are recompiled, and
  the affected modules and ``vmlinux`` are relinked — the version churn
  behind the dataset's items-per-object ratio.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.passlib.records import FlushEvent
from repro.workloads import base

#: Sources per module (bounds every link's provenance fan-in).
MODULE_SIZE = 48


class LinuxCompileWorkload(base.Workload):
    """Synthetic kernel build with incremental rebuild passes."""

    name = "linux-compile"

    def __init__(
        self,
        n_sources: int = 160,
        n_headers: int = 48,
        rebuild_passes: int = 2,
        rebuild_fraction: float = 0.30,
        headers_per_source: tuple[int, int] = (3, 9),
        source_median_bytes: int = 5_000,
        vmlinux_median_bytes: int = 700_000,
    ):
        self.n_sources = n_sources
        self.n_headers = n_headers
        self.rebuild_passes = rebuild_passes
        self.rebuild_fraction = rebuild_fraction
        self.headers_per_source = headers_per_source
        self.source_median_bytes = source_median_bytes
        self.vmlinux_median_bytes = vmlinux_median_bytes

    def iter_events(self, rng: random.Random, scale: float = 1.0) -> Iterator[FlushEvent]:
        pas = base.make_system(self.name)
        n_sources = max(2, int(self.n_sources * scale))
        n_headers = max(1, int(self.n_headers * scale))

        headers = [f"linux/include/h{i:04d}.h" for i in range(n_headers)]
        sources = [f"linux/src/f{i:05d}.c" for i in range(n_sources)]
        objects = [p.replace("/src/", "/obj/").replace(".c", ".o") for p in sources]
        modules = [
            list(range(start, min(start + MODULE_SIZE, n_sources)))
            for start in range(0, n_sources, MODULE_SIZE)
        ]

        for path in headers:
            pas.stage_input(path, base.content(rng, base.lognormal_size(rng, 2_600), path))
            yield from pas.drain_flushes()
        for path in sources:
            pas.stage_input(
                path, base.content(rng, base.lognormal_size(rng, self.source_median_bytes), path)
            )
            yield from pas.drain_flushes()
        pas.stage_input("linux/Makefile", base.content(rng, 24_000, "makefile"))
        yield from pas.drain_flushes()

        yield from self._build_pass(
            pas, rng, sources, objects, headers, modules, set(range(n_sources))
        )
        pas.trim_flushed()
        for _ in range(self.rebuild_passes):
            touched = set(
                rng.sample(range(n_sources), max(1, int(n_sources * self.rebuild_fraction)))
            )
            yield from self._edit_sources(pas, rng, sources, sorted(touched))
            yield from self._build_pass(
                pas, rng, sources, objects, headers, modules, touched
            )
            pas.trim_flushed()

    # -- build machinery ----------------------------------------------------

    def _edit_sources(
        self, pas, rng: random.Random, sources: list[str], touched: list[int]
    ) -> Iterator[FlushEvent]:
        """``vi`` sessions rewrite the touched sources (new versions)."""
        for session_start in range(0, len(touched), 12):
            session = touched[session_start : session_start + 12]
            with pas.process(
                "vi",
                argv=" ".join(sources[i] for i in session[:3]) + " ...",
                env=base.synth_env(rng, base.env_size(rng, big_fraction=0.10)),
            ) as editor:
                for index in session:
                    path = sources[index]
                    editor.read(path)
                    editor.write(
                        path,
                        base.content(
                            rng, base.lognormal_size(rng, self.source_median_bytes), path
                        ),
                    )
                    editor.close(path)
            yield from pas.drain_flushes()

    def _compile_unit(
        self, pas, rng: random.Random, source: str, obj: str, headers: list[str],
        make_handle,
    ) -> Iterator[FlushEvent]:
        """sh → cpp | cc1 | as: the provenance-rich compile pipeline."""
        lo, hi = self.headers_per_source
        used_headers = rng.sample(headers, min(len(headers), rng.randint(lo, hi)))
        env = base.synth_env(rng, base.env_size(rng))
        with pas.process(
            "sh", argv=f"-c 'cc -O2 -c {source} -o {obj}'", env=env, parent=make_handle
        ) as sh:
            sh.read("linux/Makefile")
            pipe_cpp_cc1 = pas.make_pipe()
            pipe_cc1_as = pas.make_pipe()
            with pas.process(
                "cpp", argv=f"-I linux/include {source}", env=env, parent=sh
            ) as cpp:
                cpp.read(source)
                for header in used_headers:
                    cpp.read(header)
                cpp.write_pipe(pipe_cpp_cc1)
            with pas.process(
                "cc1",
                argv=f"-O2 -Wall {' '.join('-D' + d for d in self._defines(rng))}",
                env=env,
                parent=sh,
            ) as cc1:
                cc1.read_pipe(pipe_cpp_cc1)
                cc1.write_pipe(pipe_cc1_as)
            with pas.process("as", argv=f"-o {obj}", env=env, parent=sh) as assembler:
                assembler.read_pipe(pipe_cc1_as)
                source_size = pas.cache.get_data(source).blob.size
                assembler.write(obj, base.content(rng, int(source_size * 1.3), obj))
                assembler.close(obj)
        yield from pas.drain_flushes()

    def _build_pass(
        self,
        pas,
        rng: random.Random,
        sources: list[str],
        objects: list[str],
        headers: list[str],
        modules: list[list[int]],
        touched: set[int],
    ) -> Iterator[FlushEvent]:
        env = base.synth_env(rng, base.env_size(rng))
        make = pas.process("make", argv="-j8 vmlinux", env=env)
        make.read("linux/Makefile")

        touched_modules: list[int] = []
        for module_index, members in enumerate(modules):
            members_touched = [i for i in members if i in touched]
            if not members_touched:
                continue
            touched_modules.append(module_index)
            for index in members_touched:
                yield from self._compile_unit(
                    pas, rng, sources[index], objects[index], headers, make
                )
            # Link the module's built-in.o from all its member objects.
            builtin = f"linux/obj/built-in{module_index:03d}.o"
            with pas.process(
                "ld",
                argv=f"-r -o {builtin}",
                env=base.synth_env(rng, base.env_size(rng)),
                parent=make,
            ) as ld:
                total = 0
                for index in members:
                    if pas.has_file(objects[index]):
                        ld.read(objects[index])
                        total += pas.cache.get_data(objects[index]).blob.size
                ld.write(builtin, base.content(rng, max(total, 1024), builtin))
                ld.close(builtin)
            yield from pas.drain_flushes()

        # Final link: vmlinux from the module objects.
        with pas.process(
            "ld",
            argv="-T linux/vmlinux.lds -o linux/vmlinux",
            env=base.synth_env(rng, base.env_size(rng)),
            parent=make,
        ) as ld:
            for module_index in range(len(modules)):
                builtin = f"linux/obj/built-in{module_index:03d}.o"
                if pas.has_file(builtin):
                    ld.read(builtin)
            ld.write(
                "linux/vmlinux",
                base.content(
                    rng, base.lognormal_size(rng, self.vmlinux_median_bytes, 0.15), "vmlinux"
                ),
            )
            ld.close("linux/vmlinux")
        make.exit()
        yield from pas.drain_flushes()

    @staticmethod
    def _defines(rng: random.Random) -> list[str]:
        flags = ["CONFIG_SMP", "CONFIG_PCI", "CONFIG_NET", "CONFIG_EXT3", "CONFIG_USB"]
        return rng.sample(flags, rng.randint(1, 3))
