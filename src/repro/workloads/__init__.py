"""Workload generators reproducing the paper's evaluation dataset (§5).

The paper generated provenance on a PASS system for three workloads —
a **Linux compile**, a **Blast** bioinformatics run, and the **First
Provenance Challenge** fMRI workflow — and used the combined trace as
the dataset behind Tables 2 and 3. The original traces are unavailable,
so these generators synthesise PASS traces with the same *structure*
(build DAGs, pipeline stages, version churn, heavyweight process
environments) and are calibrated so the combined paper-scale trace lands
near the paper's headline statistics: ≈31,180 stored objects, ≈1.27 GB
of raw data, provenance ≈9–10% of the data in S3 format, and ≈0.8
records >1 KB per object.

Beyond the paper's uniform batch jobs, the fleet-traffic matrix adds
skewed and bursty shapes — :class:`ZipfianFleetWorkload` (multi-tenant
hot keys), :class:`DiurnalBurstWorkload` (day-shaped arrival rates),
:class:`DeepLineageWorkload` (10k-step Q3 chains) — plus
:class:`TraceReplayWorkload`, which re-executes any captured run from
its versioned JSONL trace byte-identically.
"""

from repro.workloads.base import TraceStats, Workload, WorkloadResult, collect_stats
from repro.workloads.blast import BlastWorkload
from repro.workloads.combined import CombinedWorkload, PAPER_SCALE, paper_dataset
from repro.workloads.deep import DeepLineageWorkload
from repro.workloads.fleetgen import DiurnalBurstWorkload, ZipfianFleetWorkload
from repro.workloads.linux_compile import LinuxCompileWorkload
from repro.workloads.provchallenge import ProvenanceChallengeWorkload
from repro.workloads.trace import (
    TraceDocument,
    TraceReplayWorkload,
    dump_trace,
    load_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "Workload",
    "WorkloadResult",
    "TraceStats",
    "collect_stats",
    "LinuxCompileWorkload",
    "BlastWorkload",
    "ProvenanceChallengeWorkload",
    "CombinedWorkload",
    "PAPER_SCALE",
    "paper_dataset",
    "ZipfianFleetWorkload",
    "DiurnalBurstWorkload",
    "DeepLineageWorkload",
    "TraceReplayWorkload",
    "TraceDocument",
    "dump_trace",
    "load_trace",
    "read_trace",
    "write_trace",
]
