"""Cost-based access-path planning for the scatter query phases.

Until now every Q2/Q3 phase paid whatever access path its backend
happened to pick: SimpleDB always answers with its server-side
Query/Select (there is nothing else), and the DynamoDB-style adapter
chooses GSI-vs-Scan by *first fit* over the declared indexes
(:meth:`~repro.aws.backend.DynamoBackend._first_fit`) — nobody consults
the price book, even though every operation is already metered to the
cent. This module closes that loop: it enumerates the candidate access
paths a phase could run (DDB Scan, GSI equality Query, composite GSI
hash+range Query, SimpleDB Select), prices each one from
:class:`~repro.aws.billing.PriceBook` rates plus cheap incrementally
maintained table statistics (DescribeTable / DomainMetadata — item
counts, mean item sizes, exact per-index key histograms; never
sampled), and picks the cheapest.

Three modes, selected per engine (``planner=``) or via the
``REPRO_QUERY_PLANNER`` environment variable:

* ``"off"`` (default) — no planner object exists; every request
  sequence is byte-identical to the historical engine (the baselines
  gate pins this).
* ``"first-fit"`` — the baseline: executes exactly the path ``off``
  would, but *predicts* its cost first, so ``predicted_cost`` lands on
  the measurement and the honesty property has a baseline to compare
  against.
* ``"cost"`` — picks the cheapest estimated path, with hysteresis:
  it deviates from the first-fit choice only when a candidate's
  estimate undercuts it by at least :data:`HYSTERESIS` — estimates are
  sharp (key histograms are exact) but page boundaries are not, and the
  differential property promises cost mode is *never more expensive*
  than first-fit, so near-ties keep the baseline path.

Statistics are fetched lazily (one metered DescribeTable /
DomainMetadata per store) and cached for the planner's lifetime — one
engine's worth of queries. The consult itself is added to the
prediction the first time, so the honesty gate charges the planner for
its own curiosity. Caveat: cached statistics age; after a migration
cutover the engine's next planner starts fresh, but a long-lived engine
plans against the stats it first saw (an index path chosen from stale
stats is still *correct* — execution re-checks index freshness and
falls back to Scan — it may just be priced off).

Determinism: the planner uses no wall clock and no randomness (provlint
PL003); plans depend only on the compiled predicate, the declared
indexes, and the statistics snapshot.
"""

from __future__ import annotations

import math
import os

from repro.aws.backend import (
    AccessPath,
    SCAN_PATH,
    SDB_PATH,
    _equality_candidates,
)
from repro.aws.billing import GB, SDB_BOX_USAGE_HOURS, PriceBook
from repro.aws.dynamo import SCAN_MAX_PAGE
from repro.aws.sdb_query import CompiledQuery
from repro.concurrency import new_lock
from repro.aws.simpledb import QUERY_MAX_PAGE, SCAN_HOURS_PER_ITEM
from repro.units import DDB_INDEX_ENTRY_OVERHEAD, DDB_PAGE_BYTES, DDB_RCU_BYTES

#: Environment knob: ``off`` / ``first-fit`` / ``cost``.
PLANNER_ENV = "REPRO_QUERY_PLANNER"

PLANNER_MODES = ("off", "first-fit", "cost")

#: Cost mode abandons the first-fit path only for a candidate whose
#: estimate is below ``HYSTERESIS × first-fit estimate`` — near-ties
#: keep the baseline path, which is what lets the differential suite
#: promise "cost mode never costs more than first-fit" on every cell.
HYSTERESIS = 0.9

#: Honesty gate: on every DynamoDB-placed matrix planner row,
#: ``|predicted − metered| / metered`` over the planned query phases
#: must stay inside this bound (pinned by the planner property suite
#: and ``benchmarks/bench_planner.py``). The statistics are exact
#: histograms and the page math mirrors the serving loops, so the slack
#: mostly covers pagination boundaries and the per-value width guesses.
PREDICTION_ERROR_BOUND = 0.05

#: Transfer-size guess for one projected SimpleDB match (item name plus
#: the ``type`` attribute pair). Transfer is priced per GB, so at a few
#: dozen bytes per match this term is nano-dollars — it exists so the
#: estimate is not *structurally* blind to result width, not because it
#: moves the choice.
SDB_MATCH_BYTES = 48



def resolve_planner(mode: str | None = None) -> str:
    """Normalise a planner mode (``None`` → environment → ``"off"``)."""
    if mode is None:
        mode = os.environ.get(PLANNER_ENV, "").strip() or "off"
    mode = mode.lower()
    if mode in ("", "none"):
        mode = "off"
    if mode not in PLANNER_MODES:
        raise ValueError(
            f"unknown planner mode {mode!r} (expected one of {PLANNER_MODES})"
        )
    return mode


def _paged_read_units(entries: int, nbytes: int) -> tuple[int, float]:
    """(requests, eventual read units) for paging ``entries`` totalling
    ``nbytes`` through the 250-item / byte-budget page loop.

    Mirrors the serving loops in :mod:`repro.aws.dynamo`: a page closes
    at :data:`~repro.aws.dynamo.SCAN_MAX_PAGE` items or once the byte
    budget (:data:`~repro.units.DDB_PAGE_BYTES`) is crossed, and each
    page charges ``ceil(page_bytes / 4096) / 2`` eventually consistent
    read units with a one-unit floor. An empty result still costs one
    request (the page that discovered it was empty).
    """
    if entries <= 0:
        return 1, 0.5
    mean = nbytes / entries if nbytes > 0 else 1.0
    per_page = max(1, min(SCAN_MAX_PAGE, math.ceil(DDB_PAGE_BYTES / mean)))
    full, rem = divmod(entries, per_page)
    requests = full + (1 if rem else 0)
    units = full * (max(1, math.ceil(per_page * mean / DDB_RCU_BYTES)) / 2.0)
    if rem:
        units += max(1, math.ceil(rem * mean / DDB_RCU_BYTES)) / 2.0
    return requests, units


def _range_slice(
    index: dict, condition: tuple[str, ...]
) -> tuple[int, int, float]:
    """(entries, stored bytes, mean range-value width) of the slice
    whose range values satisfy ``condition``, summed from the
    per-range-value histograms (exact over all hash partitions)."""
    op = condition[0]
    range_bytes = index["range_bytes"]
    entries = nbytes = 0
    width = 0.0
    for value, count in index["range_counts"].items():
        if op == "between":
            ok = condition[1] <= value <= condition[2]
        elif op == ">=":
            ok = value >= condition[1]
        elif op == "<=":
            ok = value <= condition[1]
        elif op == ">":
            ok = value > condition[1]
        else:  # "<"
            ok = value < condition[1]
        if ok:
            entries += count
            nbytes += range_bytes.get(value, 0)
            width += len(value) * count
    return entries, nbytes, (width / entries if entries else 0.0)


class QueryPlanner:
    """Per-engine access-path chooser and cost predictor.

    Thread-safe: scatter phases call :meth:`choose` concurrently from
    worker threads (one call per shard stream, inside that stream's
    meter scope, so the statistics consult is billed to the right
    shard).
    """

    def __init__(self, prices: PriceBook, mode: str = "cost"):
        self.prices = prices
        self.mode = resolve_planner(mode)
        if self.mode == "off":
            raise ValueError("QueryPlanner is never constructed in 'off' mode")
        self._lock = new_lock(name="planner-stats")
        self._stats: dict[tuple[str, str], dict] = {}

    # -- statistics -------------------------------------------------------

    def _site_stats(self, backend, store: str) -> tuple[dict, float]:
        """Cached statistics for one store, plus the predicted USD of
        the consult when this call actually issued one."""
        key = (backend.kind, store)
        with self._lock:
            cached = self._stats.get(key)
        if cached is not None:
            return cached, 0.0
        stats = backend.site_statistics(store)
        with self._lock:
            self._stats[key] = stats
        if backend.kind == "sdb":
            price = (
                SDB_BOX_USAGE_HOURS["DomainMetadata"]
                * self.prices.sdb_machine_hour
            )
        else:
            price = self.prices.ddb_per_10000_requests / 10000
        return stats, price

    # -- per-path estimates ----------------------------------------------

    def _estimate_sdb(self, stats: dict, compiled: CompiledQuery) -> float:
        """Predicted USD of one server-side Query/Select on a domain.

        Every request replays the whole domain snapshot
        (:data:`~repro.aws.simpledb.SCAN_HOURS_PER_ITEM` of machine time
        per item) on top of the operation's box-usage tier; the request
        count is the page count of the *matching* result set, estimated
        from the per-attribute value histograms (distinct values and
        total value references — mean selectivity, since SimpleDB's
        statistics keep no per-value histogram).
        """
        item_count = stats["item_count"]
        attributes = stats["attributes"]
        matches = item_count
        for attribute, values in _equality_candidates(compiled.predicate).items():
            info = attributes.get(attribute)
            if info is None or not info["distinct_values"]:
                matches = 0
                continue
            per_value = info["value_count"] / info["distinct_values"]
            matches = min(matches, len(values) * per_value)
        matches = max(0, min(matches, item_count))
        requests = max(1, math.ceil(matches / QUERY_MAX_PAGE))
        box_hours = requests * (
            SDB_BOX_USAGE_HOURS["Select"] + item_count * SCAN_HOURS_PER_ITEM
        )
        transfer = matches * SDB_MATCH_BYTES
        return (
            box_hours * self.prices.sdb_machine_hour
            + transfer / GB * self.prices.sdb_transfer_out_gb
        )

    def _estimate_ddb(self, stats: dict, path: AccessPath) -> float:
        """Predicted USD of one Scan / GSI Query / range Query."""
        if path.kind == "scan":
            entries = stats["item_count"]
            nbytes = stats["table_bytes"]
            # A Scan streams every stored page over the wire.
            wire_bytes = nbytes
        else:
            index = stats["indexes"][path.index.name]
            key_counts = index["key_counts"]
            key_bytes = index["key_bytes"]
            entries = sum(key_counts.get(value, 0) for value in path.values)
            nbytes = sum(key_bytes.get(value, 0) for value in path.values)
            # Weighted mean width of the key values inside the matched
            # entry keys — exact for the equality side, since we know
            # the values we are asking for.
            key_width = (
                sum(len(v) * key_counts.get(v, 0) for v in path.values) / entries
                if entries
                else 0.0
            ) + 1.0  # the key separator
            if path.kind == "gsi-range":
                slice_entries, slice_bytes, range_width = _range_slice(
                    index, path.range_condition
                )
                if slice_entries < entries:
                    entries, nbytes = slice_entries, slice_bytes
                key_width += range_width + 1.0
            # Read units and page budgets charge *stored* entry bytes;
            # the wire page is item name + projection only — stored
            # bytes minus the per-entry overhead and key-value prefix.
            wire_bytes = int(
                max(
                    entries * 8.0,
                    nbytes - entries * (DDB_INDEX_ENTRY_OVERHEAD + key_width),
                )
            )
        requests, read_units = _paged_read_units(entries, nbytes)
        # Scan pages bill per-request (``dynamodb.requests``); GSI Query
        # pages — equality or range — price their requests into read
        # units, so the request term applies to the Scan path only.
        request_usd = (
            requests * self.prices.ddb_per_10000_requests / 10000
            if path.kind == "scan"
            else 0.0
        )
        return (
            request_usd
            + read_units / 1_000_000 * self.prices.ddb_read_per_million_units
            + wire_bytes / GB * self.prices.ddb_transfer_out_gb
        )

    def _estimate(self, backend, stats: dict, path, compiled) -> float:
        if path.kind == "sdb":
            return self._estimate_sdb(stats, compiled)
        return self._estimate_ddb(stats, path)

    # -- the planning entry point ----------------------------------------

    def choose(
        self,
        backend,
        store: str,
        compiled: CompiledQuery,
        wanted: set[str] | None,
    ) -> tuple[AccessPath, float]:
        """Pick the access path for one phase on one store.

        Returns ``(path, predicted_usd)`` where the prediction covers
        the chosen path *plus* the statistics consult when this call
        paid for one. The caller executes via
        ``query_pages(..., path=path)`` and accumulates the prediction
        onto the measurement.
        """
        stats, consult = self._site_stats(backend, store)
        if backend.kind == "sdb":
            return SDB_PATH, self._estimate_sdb(stats, compiled) + consult
        first_fit = backend.plan_first_fit(store, compiled, wanted)
        first_fit_cost = self._estimate(backend, stats, first_fit, compiled)
        if self.mode == "first-fit":
            return first_fit, first_fit_cost + consult
        best, best_cost = first_fit, first_fit_cost
        for path in backend.candidate_paths(store, compiled, wanted):
            if path == first_fit:
                continue
            cost = self._estimate(backend, stats, path, compiled)
            if cost < HYSTERESIS * first_fit_cost and cost < best_cost:
                best, best_cost = path, cost
        return best, best_cost + consult


__all__ = [
    "HYSTERESIS",
    "PLANNER_ENV",
    "PLANNER_MODES",
    "PREDICTION_ERROR_BOUND",
    "QueryPlanner",
    "resolve_planner",
    "SCAN_PATH",
]
