"""Ancestry traversal utilities shared by engines, tests, and examples.

:class:`AncestryWalker` answers lineage questions over any collection of
provenance bundles — the in-memory analogue of the queries §5 runs
against the cloud backends, used as the *ground truth* oracle in tests
(the cloud engines must return the same sets) and as the building block
for the examples' audit scenarios (e.g. "which data sets were produced
by the flawed tool version?").
"""

from __future__ import annotations

from typing import Iterable

from repro.passlib.records import Attr, ObjectRef, ProvenanceBundle


class AncestryWalker:
    """Indexes bundles by subject and by input edge for fast traversal."""

    def __init__(self, bundles: Iterable[ProvenanceBundle]):
        self._bundles: dict[ObjectRef, ProvenanceBundle] = {}
        self._children: dict[ObjectRef, set[ObjectRef]] = {}
        for bundle in bundles:
            self.add(bundle)

    def add(self, bundle: ProvenanceBundle) -> None:
        self._bundles[bundle.subject] = bundle
        for parent in bundle.inputs():
            self._children.setdefault(parent, set()).add(bundle.subject)

    # -- lookups -----------------------------------------------------------

    def bundle(self, ref: ObjectRef) -> ProvenanceBundle | None:
        return self._bundles.get(ref)

    def subjects(self) -> list[ObjectRef]:
        return sorted(self._bundles)

    def find(self, attribute: str, value: str) -> list[ObjectRef]:
        """Subjects carrying ``attribute == value`` (e.g. name='blast')."""
        return sorted(
            subject
            for subject, bundle in self._bundles.items()
            if value in bundle.attribute_values(attribute)
        )

    def instances_of(self, program: str) -> list[ObjectRef]:
        """Process versions of ``program``."""
        return sorted(
            subject
            for subject, bundle in self._bundles.items()
            if bundle.kind == "process"
            and program in bundle.attribute_values(Attr.NAME)
        )

    # -- traversal ------------------------------------------------------------

    def parents(self, ref: ObjectRef) -> list[ObjectRef]:
        bundle = self._bundles.get(ref)
        return sorted(bundle.inputs()) if bundle else []

    def children(self, ref: ObjectRef) -> list[ObjectRef]:
        return sorted(self._children.get(ref, ()))

    def ancestors(self, ref: ObjectRef) -> set[ObjectRef]:
        """Transitive inputs of ``ref`` (excluding ``ref`` itself)."""
        return self._closure(ref, self.parents)

    def descendants(self, ref: ObjectRef) -> set[ObjectRef]:
        """Transitive dependents of ``ref`` (excluding ``ref`` itself)."""
        return self._closure(ref, self.children)

    def _closure(self, ref: ObjectRef, step) -> set[ObjectRef]:
        seen: set[ObjectRef] = set()
        frontier = list(step(ref))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(step(node))
        return seen

    # -- the paper's queries, as oracle computations ------------------------------

    def outputs_of(self, program: str) -> set[ObjectRef]:
        """Q2 oracle: files directly output by ``program`` instances."""
        instances = set(self.instances_of(program))
        return {
            subject
            for subject, bundle in self._bundles.items()
            if bundle.kind == "file"
            and any(parent in instances for parent in bundle.inputs())
        }

    def descendants_of_outputs(self, program: str) -> set[ObjectRef]:
        """Q3 oracle: Q2's files plus every file downstream of them."""
        seeds = self.outputs_of(program)
        results = set(seeds)
        for seed in seeds:
            for node in self.descendants(seed):
                bundle = self._bundles.get(node)
                if bundle is not None and bundle.kind == "file":
                    results.add(node)
        return results

    def is_causally_closed(self, visible: set[ObjectRef]) -> bool:
        """Causal-ordering check: every ancestor of a visible node is visible.

        References to objects the walker has never seen (external inputs)
        do not count against closure — only known-but-missing ancestors do.
        """
        for ref in visible:
            bundle = self._bundles.get(ref)
            if bundle is None:
                continue
            for parent in bundle.inputs():
                if parent in self._bundles and parent not in visible:
                    return False
        return True

    def __len__(self) -> int:
        return len(self._bundles)
