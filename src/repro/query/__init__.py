"""Provenance query engines over the two storage backends.

The paper's Table 3 compares three queries on two backends:

* :class:`~repro.query.engine.S3ScanEngine` — provenance lives in object
  metadata, so every query degenerates to a full repository scan (a HEAD
  per object plus a GET per spilled value);
* :class:`~repro.query.engine.SimpleDBEngine` — provenance lives in
  indexed SimpleDB items, so queries are selective; ancestry (Q3) still
  requires client-side iteration because SimpleDB has no recursion.

Both engines measure themselves through the account meter, so the
operation/byte counts they report are exactly what the simulated
services billed.
"""

from repro.query.ancestry import AncestryWalker
from repro.query.engine import (
    QueryMeasurement,
    S3ScanEngine,
    SimpleDBEngine,
)

__all__ = [
    "QueryMeasurement",
    "S3ScanEngine",
    "SimpleDBEngine",
    "AncestryWalker",
]
