"""The Q1/Q2/Q3 query engines (paper §5, Table 3).

The three representative queries:

* **Q1** — given an object and version, retrieve that version's
  provenance. (The paper runs it over *all* objects, since a single
  lookup cannot differentiate the backends.)
* **Q2** — find all files that were outputs of ``blast``: first find the
  blast process instances, then the objects listing one as an input.
* **Q3** — find all descendants of files derived from ``blast``:
  Q2's result set closed transitively over input edges. SimpleDB has no
  recursive queries or stored procedures, so the client iterates —
  one batched query per BFS frontier chunk.

Each engine method returns a :class:`QueryMeasurement` whose operation
and byte counts come from meter deltas — the queries are charged exactly
what the simulated AWS services metered.

Sharded domains (scatter-gather): when the provenance store is split
across N domains by a :class:`~repro.sharding.ShardRouter`, the engine
routes **Q1 to the single shard owning the object's path** (its cost is
independent of N) and **scatters Q2/Q3 across every shard**, merging the
result frontiers client-side between BFS rounds. Per-shard operation and
byte spend is captured on ``QueryMeasurement.per_shard`` by snapshotting
the meter around each shard's requests, so Table 3 numbers — total and
per shard — remain meter-derived rather than modelled. Caveat: there is
no cross-shard snapshot; each shard answers at its own replica time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.aws import billing
from repro.aws.account import AWSAccount
from repro.aws.billing import Usage
from repro.core.base import DATA_BUCKET, PROV_DOMAIN
from repro.errors import NoSuchKey
from repro.passlib.records import Attr, ObjectRef, ProvenanceBundle
from repro.passlib.serializer import (
    POINTER_PREFIX,
    bundle_from_item,
    bundles_from_s3_metadata,
)
from repro.sharding import ShardRouter

#: Cross-reference values packed into one bracket predicate (bounded by
#: SimpleDB's query-expression size limits).
REF_BATCH = 20


@dataclass(frozen=True)
class QueryMeasurement:
    """A query's result set plus what it cost to compute.

    ``per_shard`` breaks the spend down as ``(domain, operations,
    bytes_out)`` triples, one per shard domain touched — populated by the
    SimpleDB engine from meter deltas taken around each shard's
    requests (empty for the S3 scan engine, which has no shards).
    """

    refs: tuple[ObjectRef, ...]
    operations: int
    bytes_out: int
    usage: Usage
    per_shard: tuple[tuple[str, int, int], ...] = ()

    @property
    def result_count(self) -> int:
        return len(self.refs)


class _Metered:
    """Shared meter-delta bookkeeping."""

    def __init__(self, account: AWSAccount):
        self.account = account

    def _measure(self, refs: set[ObjectRef], before: Usage) -> QueryMeasurement:
        spent = self.account.meter.snapshot() - before
        return QueryMeasurement(
            refs=tuple(sorted(refs)),
            operations=spent.request_count(),
            bytes_out=spent.transfer_out(),
            usage=spent,
        )


class S3ScanEngine(_Metered):
    """Queries against architecture A1: scan every object's metadata.

    "If we do not know the exact object whose provenance we seek, then we
    might need to iterate over the provenance of every object in the
    repository, which is so inefficient as to be impractical." (§4.1)
    """

    def __init__(self, account: AWSAccount, bucket: str = DATA_BUCKET):
        super().__init__(account)
        self.bucket = bucket

    # -- scanning -----------------------------------------------------------

    def _data_keys(self) -> list[str]:
        keys: list[str] = []
        marker: str | None = None
        while True:
            page = self.account.s3.list_keys(self.bucket, marker=marker)
            keys.extend(k for k in page.keys if not k.startswith(".pass/"))
            if not page.is_truncated:
                break
            marker = page.next_marker
        return keys

    def _fetch_overflow(self, key: str) -> str:
        return self.account.s3.get(self.bucket, key).bytes().decode("utf-8")

    def scan_bundles(self) -> list[ProvenanceBundle]:
        """HEAD every object; decode its own + piggybacked bundles."""
        bundles: list[ProvenanceBundle] = []
        for key in self._data_keys():
            try:
                head = self.account.s3.head(self.bucket, key)
            except NoSuchKey:
                continue  # replica lag on a brand-new object
            nonce = head.metadata.get("nonce", "v0001")
            subject = ObjectRef(key, int(nonce.lstrip("v")))
            own, ancestors = bundles_from_s3_metadata(
                subject, head.metadata, self._fetch_overflow
            )
            bundles.append(own)
            bundles.extend(ancestors)
        return bundles

    # -- the three queries ------------------------------------------------------

    def q1_all(self) -> QueryMeasurement:
        """Provenance of every object version (HEAD + overflow GETs)."""
        before = self.account.meter.snapshot()
        refs = {bundle.subject for bundle in self.scan_bundles()}
        return self._measure(refs, before)

    def q2_outputs_of(self, program: str) -> QueryMeasurement:
        """Files that are outputs of ``program`` — via a full scan."""
        before = self.account.meter.snapshot()
        bundles = self.scan_bundles()
        refs = _direct_outputs(bundles, program)
        return self._measure(refs, before)

    def q3_descendants_of(self, program: str) -> QueryMeasurement:
        """Transitive descendants of files derived from ``program``.

        The scan is executed once and the closure computed from cache —
        the paper notes the second phase "can, of course, be executed
        from a cache".
        """
        before = self.account.meter.snapshot()
        bundles = self.scan_bundles()
        seeds = _direct_outputs(bundles, program)
        refs = _descendant_closure(bundles, seeds)
        return self._measure(refs, before)


class SimpleDBEngine(_Metered):
    """Queries against architectures A2/A3: indexed SimpleDB lookups.

    ``select_mode=True`` issues the same logical queries through the
    SELECT front-end (§2.2 lists Query, QueryWithAttributes *and*
    SELECT); results are identical, only the wire language differs.

    ``router`` (or a store's ``.router``) selects the sharded layout:
    Q1 routes to the one shard owning the subject's path, while Q2/Q3
    scatter every phase across all shards and merge the frontiers
    client-side. The default router is the paper's single domain, under
    which every request sequence is identical to the unsharded engine.
    """

    def __init__(
        self,
        account: AWSAccount,
        domain: str = PROV_DOMAIN,
        bucket: str = DATA_BUCKET,
        ref_batch: int = REF_BATCH,
        select_mode: bool = False,
        router: ShardRouter | None = None,
    ):
        super().__init__(account)
        self.router = router or ShardRouter(1, base_domain=domain)
        #: Retained for single-shard callers (and select rendering when
        #: N=1); with ``shards > 1`` queries name per-shard domains.
        self.domain = self.router.domains[0]
        self.bucket = bucket
        self.ref_batch = ref_batch
        self.select_mode = select_mode
        self._shard_spend: dict[str, tuple[int, int]] = {}

    def _fetch_overflow(self, key: str) -> str:
        return self.account.s3.get(self.bucket, key).bytes().decode("utf-8")

    # -- per-shard accounting --------------------------------------------------

    def _begin(self) -> Usage:
        """Start a measured query: reset shard spend, snapshot the meter."""
        self._shard_spend = {}
        return self.account.meter.snapshot()

    def _on_shard(self, domain: str, fn, *args, **kwargs):
        """Run one shard-directed request, charging its meter delta.

        The delta includes any S3 overflow GETs issued while decoding
        that shard's items, so per-shard spend sums to the query total.
        """
        before = self.account.meter.snapshot()
        try:
            return fn(*args, **kwargs)
        finally:
            spent = self.account.meter.snapshot() - before
            ops, nbytes = self._shard_spend.get(domain, (0, 0))
            self._shard_spend[domain] = (
                ops + spent.request_count(),
                nbytes + spent.transfer_out(),
            )

    def _measure_sharded(self, refs: set[ObjectRef], before: Usage) -> QueryMeasurement:
        measurement = self._measure(refs, before)
        per_shard = tuple(
            (domain, ops, nbytes)
            for domain, (ops, nbytes) in sorted(self._shard_spend.items())
        )
        return replace(measurement, per_shard=per_shard)

    # -- Q1 -------------------------------------------------------------------

    def q1(self, ref: ObjectRef) -> QueryMeasurement:
        """Provenance of one object version: a single indexed lookup.

        Routed to the shard owning ``ref.path`` — its operation count is
        independent of how many shards the domain is split into.
        """
        before = self._begin()
        domain = self.router.domain_for(ref.path)
        refs: set[ObjectRef] = set()
        attrs = self._on_shard(
            domain, self.account.simpledb.get_attributes, domain, ref.item_name
        )
        if attrs:
            bundle = self._on_shard(
                domain, bundle_from_item, ref.item_name, attrs, self._fetch_overflow
            )
            refs.add(bundle.subject)
        return self._measure_sharded(refs, before)

    def q1_all(self) -> QueryMeasurement:
        """Q1 over every item: one lookup *per item* (§5's 72K ops).

        SimpleDB cannot "generalise the query", so after paging through
        each shard's item names it issues one GetAttributes per item
        (plus a GET per spilled value) against that item's shard.
        """
        before = self._begin()
        refs: set[ObjectRef] = set()
        for domain in self.router.domains:
            token: str | None = None
            names: list[str] = []
            while True:
                page = self._on_shard(
                    domain,
                    self.account.simpledb.query,
                    domain,
                    None,
                    next_token=token,
                )
                names.extend(page.item_names)
                token = page.next_token
                if token is None:
                    break
            for item_name in names:
                attrs = self._on_shard(
                    domain, self.account.simpledb.get_attributes, domain, item_name
                )
                if not attrs:
                    continue
                bundle = self._on_shard(
                    domain, bundle_from_item, item_name, attrs, self._fetch_overflow
                )
                refs.add(bundle.subject)
        return self._measure_sharded(refs, before)

    # -- Q2 -------------------------------------------------------------------------

    def _paged_query(self, domain: str, expression: str, select: str):
        """Run one logical query on one shard via the front-end, paging.

        Yields (item name, attrs) pairs; the bracket expression and the
        SELECT statement are two spellings of the same predicate.
        """
        token: str | None = None
        while True:
            if self.select_mode:
                page = self._on_shard(
                    domain, self.account.simpledb.select, select, next_token=token
                )
            else:
                page = self._on_shard(
                    domain,
                    self.account.simpledb.query_with_attributes,
                    domain,
                    expression,
                    attribute_names=[Attr.TYPE],
                    next_token=token,
                )
            yield from page.items
            token = page.next_token
            if token is None:
                return

    def _find_program_instances(self, program: str) -> set[ObjectRef]:
        """Phase 1: all process versions of ``program`` — every shard."""
        expression = f"['type' = 'process'] intersection ['name' = '{program}']"
        found: set[ObjectRef] = set()
        for domain in self.router.domains:
            select = (
                f"select type from {domain} "
                f"where type = 'process' and name = '{program}'"
            )
            found.update(
                ObjectRef.from_item_name(name)
                for name, _ in self._paged_query(domain, expression, select)
            )
        return found

    def _objects_with_inputs(self, inputs: set[ObjectRef]) -> set[tuple[ObjectRef, str]]:
        """All items listing any of ``inputs`` as an input, with their type.

        An item's ``input`` edges can point at objects on *other* shards,
        so every chunk scatters across all domains and the matches are
        gathered into one set.
        """
        found: set[tuple[ObjectRef, str]] = set()
        ordered = sorted(inputs)
        for start in range(0, len(ordered), self.ref_batch):
            chunk = ordered[start : start + self.ref_batch]
            disjunction = " or ".join(f"'input' = '{ref.encode()}'" for ref in chunk)
            expression = f"[{disjunction}]"
            in_list = ", ".join(f"'{ref.encode()}'" for ref in chunk)
            for domain in self.router.domains:
                select = f"select type from {domain} where input in ({in_list})"
                for name, attrs in self._paged_query(domain, expression, select):
                    kind = (attrs.get(Attr.TYPE) or ("file",))[0]
                    found.add((ObjectRef.from_item_name(name), kind))
        return found

    def q2_outputs_of(self, program: str) -> QueryMeasurement:
        """Files that are outputs of ``program`` — two indexed phases (§5),
        each phase scattered across every shard."""
        before = self._begin()
        instances = self._find_program_instances(program)
        refs: set[ObjectRef] = set()
        if instances:
            refs = {
                ref for ref, kind in self._objects_with_inputs(instances) if kind == "file"
            }
        return self._measure_sharded(refs, before)

    # -- Q3 ------------------------------------------------------------------------------

    def q3_descendants_of(self, program: str) -> QueryMeasurement:
        """Transitive descendants — client-side BFS, batched queries.

        "SimpleDB ... does not support recursive queries or stored
        procedures. Hence, for ancestry queries, it has to retrieve each
        item ... then lookup further ancestors." (§5)

        Under sharding each BFS round scatters the frontier's reference
        chunks across all shards and merges the children into the next
        frontier before continuing — the frontier is global, the lookups
        are per-shard.
        """
        before = self._begin()
        instances = self._find_program_instances(program)
        seeds = {
            ref for ref, kind in self._objects_with_inputs(instances) if kind == "file"
        }
        visited: set[ObjectRef] = set(seeds)
        results: set[ObjectRef] = set(seeds)
        frontier = set(seeds)
        while frontier:
            children = self._objects_with_inputs(frontier)
            frontier = set()
            for ref, kind in children:
                if ref in visited:
                    continue
                visited.add(ref)
                frontier.add(ref)
                if kind == "file":
                    results.add(ref)
        return self._measure_sharded(results, before)


# ---------------------------------------------------------------------------
# Shared closure helpers (also used by the scan engine)
# ---------------------------------------------------------------------------

def _direct_outputs(bundles: list[ProvenanceBundle], program: str) -> set[ObjectRef]:
    """Files whose inputs include a process instance of ``program``."""
    instances = {
        bundle.subject
        for bundle in bundles
        if bundle.kind == "process" and program in bundle.attribute_values(Attr.NAME)
    }
    return {
        bundle.subject
        for bundle in bundles
        if bundle.kind == "file" and any(ref in instances for ref in bundle.inputs())
    }


def _descendant_closure(
    bundles: list[ProvenanceBundle], seeds: set[ObjectRef]
) -> set[ObjectRef]:
    """Transitive descendants of ``seeds`` (files only), via input edges."""
    children: dict[ObjectRef, set[ObjectRef]] = {}
    kind_of: dict[ObjectRef, str] = {}
    for bundle in bundles:
        kind_of[bundle.subject] = bundle.kind
        for parent in bundle.inputs():
            children.setdefault(parent, set()).add(bundle.subject)
    visited = set(seeds)
    results = set(seeds)
    frontier = list(seeds)
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            if child in visited:
                continue
            visited.add(child)
            frontier.append(child)
            if kind_of.get(child) == "file":
                results.add(child)
    return results
