"""The Q1/Q2/Q3 query engines (paper §5, Table 3).

The three representative queries:

* **Q1** — given an object and version, retrieve that version's
  provenance. (The paper runs it over *all* objects, since a single
  lookup cannot differentiate the backends.)
* **Q2** — find all files that were outputs of ``blast``: first find the
  blast process instances, then the objects listing one as an input.
* **Q3** — find all descendants of files derived from ``blast``:
  Q2's result set closed transitively over input edges. SimpleDB has no
  recursive queries or stored procedures, so the client iterates —
  one batched query per BFS frontier chunk.

Each engine method returns a :class:`QueryMeasurement` whose operation
and byte counts come from meter deltas — the queries are charged exactly
what the simulated AWS services metered.

Sharded domains (scatter-gather): when the provenance store is split
across N domains by a :class:`~repro.sharding.ShardRouter`, the engine
routes **Q1 to the single shard owning the object's path** (its cost is
independent of N) and **scatters Q2/Q3 across every shard**, merging the
result frontiers client-side between BFS rounds.

Heterogeneous placement: each shard's request stream goes through the
shard's *placed backend* (:mod:`repro.aws.backend`) — SimpleDB shards
answer Q2/Q3 phases with server-side ``Query``/``Select`` predicates and
Q1-over-everything with the §5 one-GetAttributes-per-item pattern, while
DynamoDB-style shards answer every phase with paged ``Scan`` + the same
predicate applied client-side (the service has no query language) and
enumerate items straight off the scan pages. Result sets are identical
across placements; the metered cost is each backend's honest price, and
``QueryMeasurement.per_shard`` / ``per_backend`` keep the exact split.

Concurrent dispatch (``concurrency=N``): each scatter phase builds one
*wave* of per-shard request streams and hands it to a bounded worker
pool. Per-stream spend is captured with **scoped meter contexts**
(:meth:`~repro.aws.billing.Meter.scoped`) — a thread-local accounting
scope per stream, so concurrent streams can never interleave into each
other's totals and ``QueryMeasurement.per_shard`` still sums exactly to
the query's global meter delta. The measurement's ``latency`` is the
modeled **critical path** — per wave, the makespan of the streams on
the pool (``repro.query.latency``) — while ``sequential_latency`` keeps
the one-request-at-a-time sum a single-threaded client would pay. With
``concurrency=1`` (the default) the dispatcher runs every stream inline
in submission order and the engine is byte-identical to the historical
sequential engine: same refs, same operation counts, same ``per_shard``
triples. Caveat: there is still no cross-shard snapshot; each shard
answers at its own replica time, whether streams run in series or in
parallel.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, TypeVar

from repro.aws.account import AWSAccount
from repro.aws.billing import ELASTICACHE, Usage
from repro.aws.sdb_query import CompiledQuery, parse_query, quote_literal
from repro.concurrency import new_lock
from repro.core.base import DATA_BUCKET, PROV_DOMAIN
from repro.errors import NoSuchKey
from repro.passlib.records import VERSION_DIGITS, Attr, ObjectRef, ProvenanceBundle
from repro.passlib.serializer import (
    bundle_from_item,
    bundles_from_s3_metadata,
    parse_nonce,
)
from repro.migration.handle import RouterHandle, Site, as_handle, fresh_handle
from repro.query.latency import DEFAULT_LATENCY_MODEL, QueryLatencyModel, makespan
from repro.query.planner import QueryPlanner, resolve_planner
from repro.sharding import ShardRouter

T = TypeVar("T")

#: Cross-reference values packed into one bracket predicate (bounded by
#: SimpleDB's query-expression size limits).
REF_BATCH = 20

#: Environment knob CI uses to run the whole suite with a concurrent
#: dispatcher (thread-safety regression net); engines constructed with
#: an explicit ``concurrency=`` ignore it.
CONCURRENCY_ENV = "REPRO_QUERY_CONCURRENCY"

def default_concurrency() -> int:
    """Worker-pool width when the caller does not pass one (env override)."""
    raw = os.environ.get(CONCURRENCY_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


@dataclass(frozen=True)
class QueryMeasurement:
    """A query's result set plus what it cost to compute.

    ``per_shard`` breaks the spend down as ``(domain, operations,
    bytes_out)`` triples, one per shard domain touched — populated by the
    SimpleDB engine from scoped meter contexts opened around each
    shard's request stream (empty for the S3 scan engine, which has no
    shards). ``per_backend`` rolls the same exact triples up by backend
    kind (``"sdb"``/``"ddb"``) under heterogeneous placement, so the
    cost of a placement decision is auditable per query.

    ``latency`` is the modeled wall-clock of the query as dispatched:
    for a concurrent engine, the sum over scatter phases of each wave's
    critical path on the worker pool; for a sequential engine it equals
    ``sequential_latency``, the plain sum of per-request round trips
    (see ``repro.query.latency``).

    Per-tier attribution: ``operations``/``bytes_out`` (and the
    ``per_shard``/``per_backend`` splits) count **backend** spend only —
    the requests that reached SimpleDB/DynamoDB/S3. When the read-cache
    tier is on, cache consults and fills are metered separately on
    ``cache_operations``/``cache_bytes_out`` with ``per_shard_cache``
    giving the same per-label split (point-read consults accrue to the
    shard whose stream issued them; memoised-closure consults accrue to
    the ``"elasticache"`` label, as they front a whole scatter phase
    rather than one shard). ``usage`` remains the union — the meter
    truth the bill is priced from. With the cache off every ``cache_*``
    field is zero and the backend counts are the historical totals.
    """

    refs: tuple[ObjectRef, ...]
    operations: int
    bytes_out: int
    usage: Usage
    per_shard: tuple[tuple[str, int, int], ...] = ()
    per_backend: tuple[tuple[str, int, int], ...] = ()
    latency: float = 0.0
    sequential_latency: float = 0.0
    cache_operations: int = 0
    cache_bytes_out: int = 0
    per_shard_cache: tuple[tuple[str, int, int], ...] = ()
    #: The query planner's pre-execution USD estimate for the scatter
    #: phases it planned (chosen access paths plus its own statistics
    #: consults) — put next to the priced ``usage``, it makes the
    #: planner's honesty auditable per query. ``None`` when no planner
    #: ran (planner off, or a query class the planner does not cover).
    predicted_cost: float | None = None

    @property
    def result_count(self) -> int:
        return len(self.refs)

    @property
    def speedup(self) -> float:
        """Modeled sequential/dispatched latency ratio (1.0 when serial)."""
        return self.sequential_latency / self.latency if self.latency else 1.0


class _Metered:
    """Shared meter-delta bookkeeping."""

    def __init__(
        self,
        account: AWSAccount,
        latency_model: QueryLatencyModel = DEFAULT_LATENCY_MODEL,
    ):
        self.account = account
        self.latency_model = latency_model

    def _measure(self, refs: set[ObjectRef], before: Usage) -> QueryMeasurement:
        spent = self.account.meter.snapshot() - before
        cache_ops = spent.request_count(ELASTICACHE)
        cache_bytes = spent.transfer_out(ELASTICACHE)
        seconds = self.latency_model.stream_seconds(spent)
        return QueryMeasurement(
            refs=tuple(sorted(refs)),
            operations=spent.request_count() - cache_ops,
            bytes_out=spent.transfer_out() - cache_bytes,
            usage=spent,
            latency=seconds,
            sequential_latency=seconds,
            cache_operations=cache_ops,
            cache_bytes_out=cache_bytes,
        )


class S3ScanEngine(_Metered):
    """Queries against architecture A1: scan every object's metadata.

    "If we do not know the exact object whose provenance we seek, then we
    might need to iterate over the provenance of every object in the
    repository, which is so inefficient as to be impractical." (§4.1)
    """

    def __init__(
        self,
        account: AWSAccount,
        bucket: str = DATA_BUCKET,
        latency_model: QueryLatencyModel = DEFAULT_LATENCY_MODEL,
    ):
        super().__init__(account, latency_model)
        self.bucket = bucket
        #: Objects the last scan skipped because their ``nonce`` metadata
        #: would not parse — a malformed item must not abort the scan.
        self.skipped_items = 0

    # -- scanning -----------------------------------------------------------

    def _data_keys(self) -> list[str]:
        keys: list[str] = []
        marker: str | None = None
        while True:
            page = self.account.s3.list_keys(self.bucket, marker=marker)
            keys.extend(k for k in page.keys if not k.startswith(".pass/"))
            if not page.is_truncated:
                break
            marker = page.next_marker
        return keys

    def _fetch_overflow(self, key: str) -> str:
        return self.account.s3.get(self.bucket, key).bytes().decode("utf-8")

    def scan_bundles(self) -> list[ProvenanceBundle]:
        """HEAD every object; decode its own + piggybacked bundles.

        Objects whose ``nonce`` metadata is malformed are skipped and
        counted on :attr:`skipped_items` instead of aborting the scan.
        """
        bundles: list[ProvenanceBundle] = []
        self.skipped_items = 0
        for key in self._data_keys():
            try:
                head = self.account.s3.head(self.bucket, key)
            except NoSuchKey:
                continue  # replica lag on a brand-new object
            version = parse_nonce(head.metadata.get("nonce", "v0001"))
            if version is None:
                self.skipped_items += 1
                continue
            subject = ObjectRef(key, version)
            own, ancestors = bundles_from_s3_metadata(
                subject, head.metadata, self._fetch_overflow
            )
            bundles.append(own)
            bundles.extend(ancestors)
        return bundles

    # -- the three queries ------------------------------------------------------

    def q1_all(self) -> QueryMeasurement:
        """Provenance of every object version (HEAD + overflow GETs)."""
        before = self.account.meter.snapshot()
        refs = {bundle.subject for bundle in self.scan_bundles()}
        return self._measure(refs, before)

    def q2_outputs_of(self, program: str) -> QueryMeasurement:
        """Files that are outputs of ``program`` — via a full scan."""
        before = self.account.meter.snapshot()
        bundles = self.scan_bundles()
        refs = _direct_outputs(bundles, program)
        return self._measure(refs, before)

    def q3_descendants_of(self, program: str) -> QueryMeasurement:
        """Transitive descendants of files derived from ``program``.

        The scan is executed once and the closure computed from cache —
        the paper notes the second phase "can, of course, be executed
        from a cache".
        """
        before = self.account.meter.snapshot()
        bundles = self.scan_bundles()
        seeds = _direct_outputs(bundles, program)
        refs = _descendant_closure(bundles, seeds)
        return self._measure(refs, before)


class SimpleDBEngine(_Metered):
    """Queries against architectures A2/A3: indexed SimpleDB lookups.

    ``select_mode=True`` issues the same logical queries through the
    SELECT front-end (§2.2 lists Query, QueryWithAttributes *and*
    SELECT); results are identical, only the wire language differs.

    ``router`` (or a store's ``.router``) selects the sharded layout:
    Q1 routes to the one shard owning the subject's path, while Q2/Q3
    scatter every phase across all shards and merge the frontiers
    client-side. The default router is the paper's single domain, under
    which every request sequence is identical to the unsharded engine.

    ``concurrency`` bounds the worker pool that dispatches each scatter
    wave's per-shard request streams. ``1`` (default, or via the
    ``REPRO_QUERY_CONCURRENCY`` environment variable) runs streams
    inline, byte-identical to the historical sequential engine; ``N>1``
    runs up to N streams in parallel threads against the (lock-guarded)
    simulated services, and the measurement's ``latency`` becomes the
    modeled critical path instead of the sequential sum. The gather
    merges results in deterministic submission order, so against strong
    consistency (or converged replicas) concurrent results are identical
    to sequential and reproducible for a fixed seed. Against
    *unconverged* eventually consistent replicas no such promise exists
    in either mode: replica choice is random, and thread scheduling
    additionally reorders the shared RNG's draws — query after
    ``settle()``/``quiesce()`` when exact reproducibility matters.
    """

    def __init__(
        self,
        account: AWSAccount,
        domain: str = PROV_DOMAIN,
        bucket: str = DATA_BUCKET,
        ref_batch: int = REF_BATCH,
        select_mode: bool = False,
        router: ShardRouter | RouterHandle | None = None,
        concurrency: int | None = None,
        latency_model: QueryLatencyModel = DEFAULT_LATENCY_MODEL,
        planner: str | None = None,
    ):
        super().__init__(account, latency_model)
        #: Shared routing indirection: passing a store's handle (what
        #: ``Simulation.query_engine`` does) makes every scatter phase
        #: observe live-migration cutovers at the moment it dispatches —
        #: during a migration, phases cover the union of source stores
        #: and cut-over target stores.
        self.routing = (
            as_handle(router)
            if router is not None
            else fresh_handle(base_domain=domain)
        )
        #: Backend adapters by kind; each shard's stream reads through
        #: the adapter its placement names.
        self.backends = account.provenance_backends()
        #: Retained for single-shard callers (and select rendering when
        #: N=1); with ``shards > 1`` queries name per-shard domains.
        self.domain = self.routing.current.domains[0]
        self.bucket = bucket
        self.ref_batch = ref_batch
        self.select_mode = select_mode
        if concurrency is None:
            concurrency = default_concurrency()
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.concurrency = concurrency
        #: The account's read-cache authority, or None when the tier is
        #: off. Point reads (Q1) consult it per item; the Q2/Q3 scatter
        #: phases memoise whole closure results through it, keyed by the
        #: routing epoch and fenced by the invalidation generation.
        self.cache = account.read_cache
        #: Access-path planning mode: ``"off"`` (default — request
        #: sequences byte-identical to the historical engine),
        #: ``"first-fit"`` (execute the default path but predict its
        #: cost), or ``"cost"`` (execute the cheapest estimated path).
        #: ``None`` resolves the ``REPRO_QUERY_PLANNER`` environment
        #: knob.
        self.planner_mode = resolve_planner(planner)
        self.planner = (
            QueryPlanner(account.prices, self.planner_mode)
            if self.planner_mode != "off"
            else None
        )
        self._shard_spend: dict[str, tuple[int, int]] = {}
        self._cache_spend: dict[str, tuple[int, int]] = {}
        self._site_kinds: dict[str, str] = {}
        self._latency = 0.0
        self._sequential_latency = 0.0
        #: Accumulated planner prediction for the in-flight query, or
        #: None for query classes the planner does not cover (Q1).
        self._predicted: float | None = None
        self._predicted_lock = new_lock(name="planner-predicted")

    @property
    def router(self) -> ShardRouter:
        """The settled layout (kept for introspection call sites)."""
        return self.routing.current

    def _fetch_overflow(self, key: str) -> str:
        return self.account.s3.get(self.bucket, key).bytes().decode("utf-8")

    # -- scatter-gather dispatch ----------------------------------------------

    def _begin(self, planned: bool = False) -> Usage:
        """Start a measured query: reset accounting, snapshot the meter.

        ``planned`` arms the prediction accumulator — only the scatter
        query classes the planner covers (Q2/Q3/Q4) set it, so Q1's
        measurements keep ``predicted_cost=None`` instead of a
        misleading zero.
        """
        self._shard_spend = {}
        self._cache_spend = {}
        self._site_kinds = {}
        self._latency = 0.0
        self._sequential_latency = 0.0
        self._predicted = 0.0 if planned and self.planner is not None else None
        return self.account.meter.snapshot()

    def _query_sites(self) -> list[tuple[str, Site]]:
        """(label, site) pairs a scatter phase must cover.

        Labels are the ``per_shard`` accounting keys — the store name,
        disambiguated with the backend kind in the one case two layouts
        put the same name on different backends mid-flip-migration.
        """
        sites = self.routing.query_sites()
        domains = [site.domain for site in sites]
        labelled = []
        for site in sites:
            label = (
                site.domain
                if domains.count(site.domain) == 1
                else f"{site.domain}[{site.kind}]"
            )
            self._site_kinds[label] = site.kind
            labelled.append((label, site))
        return labelled

    def _label(self, site: Site) -> str:
        """Accounting label for a single-site wave (never ambiguous)."""
        self._site_kinds[site.domain] = site.kind
        return site.domain

    def _run_wave(self, tasks: list[tuple[str, Callable[[], T]]]) -> list[T]:
        """Dispatch one scatter wave of per-shard request streams.

        Each task is one shard-directed stream; its spend is captured in
        a scoped meter context (including any S3 overflow GETs issued
        while decoding that shard's items), so per-shard spend sums to
        the query total even when streams interleave on the pool.
        Results return in submission order — the gather is deterministic
        regardless of completion order. The wave's modeled makespan on
        the bounded pool accrues to the query's critical-path latency;
        the plain sum accrues to its sequential latency.
        """
        if not tasks:
            return []
        if self.concurrency == 1 or len(tasks) == 1:
            # Inline: nothing could overlap anyway (identical results,
            # accounting, and makespan), and Q1's single-lookup wave
            # skips thread spawn entirely.
            outcomes = []
            for _, fn in tasks:
                with self.account.meter.expect_scope():
                    with self.account.meter.scoped() as scope:
                        result = fn()
                outcomes.append((result, scope))
        else:

            def run(fn: Callable[[], T]):
                # The expect_scope marker brackets the whole stream on
                # this worker thread: under REPRO_SANITIZE=1 any spend a
                # future code path records outside the scope below is
                # reported as an unattributed-spend leak.
                with self.account.meter.expect_scope():
                    with self.account.meter.scoped() as scope:
                        return fn(), scope

            # A pool per wave: workers never outlive the dispatch, so
            # handing engines out freely (Simulation.query_engine() makes
            # a fresh one per call) cannot accumulate idle threads.
            with ThreadPoolExecutor(
                max_workers=min(self.concurrency, len(tasks)),
                thread_name_prefix="scatter",
            ) as executor:
                futures = [executor.submit(run, fn) for _, fn in tasks]
                outcomes = [future.result() for future in futures]
        durations: list[float] = []
        results: list[T] = []
        for (domain, _), (result, scope) in zip(tasks, outcomes):
            usage = scope.usage()
            cache_ops = usage.request_count(ELASTICACHE)
            cache_bytes = usage.transfer_out(ELASTICACHE)
            ops, nbytes = self._shard_spend.get(domain, (0, 0))
            self._shard_spend[domain] = (
                ops + scope.request_count() - cache_ops,
                nbytes + scope.transfer_out() - cache_bytes,
            )
            if cache_ops or cache_bytes:
                # Cache consults a shard stream issued (Q1 point reads)
                # accrue to that shard's label on the cache split.
                held, held_bytes = self._cache_spend.get(domain, (0, 0))
                self._cache_spend[domain] = (
                    held + cache_ops,
                    held_bytes + cache_bytes,
                )
            durations.append(self.latency_model.stream_seconds(usage))
            results.append(result)
        self._latency += makespan(durations, self.concurrency)
        self._sequential_latency += sum(durations)
        return results

    def _backend(self, site: Site):
        """The backend adapter hosting one routed site."""
        return self.backends[site.kind]

    def _memoised(self, key: tuple, compute: Callable[[], T]) -> T:
        """Run one scatter phase through the memo side of the cache.

        The memo key carries the routing epoch (a layout cutover makes
        old entries unreachable LRU garbage rather than wrong answers);
        the fill is fenced on the authority's invalidation generation,
        captured by the consult itself — any provenance write between
        consult and fill refuses the memoisation. Memo spend is scoped
        (sanitizer discipline) and credited to the ``"elasticache"``
        label on the cache split, since a memo hit stands in for a whole
        scatter phase, not any one shard's stream.
        """
        cache = self.cache
        if cache is None:
            return compute()
        full_key = key + (self.routing.epoch,)
        with self.account.meter.scoped() as scope:
            hit, value, fence = cache.memo_get(full_key)
        self._credit_cache_scope(scope)
        if hit:
            return value
        value = compute()
        with self.account.meter.scoped() as scope:
            cache.memo_put(full_key, fence, value, _memo_nbytes(value))
        self._credit_cache_scope(scope)
        return value

    def _credit_cache_scope(self, scope) -> None:
        """Accrue one scoped memo consult/fill to the cache split.

        Its modeled round trips accrue to both latency totals (a memo
        consult is one more sequential step, never overlapped), keeping
        the latency model linear: pricing the query's global usage still
        agrees with the per-stream accumulation.
        """
        ops = scope.request_count()
        nbytes = scope.transfer_out()
        if ops or nbytes:
            held, held_bytes = self._cache_spend.get("elasticache", (0, 0))
            self._cache_spend["elasticache"] = (held + ops, held_bytes + nbytes)
            seconds = self.latency_model.stream_seconds(scope.usage())
            self._latency += seconds
            self._sequential_latency += seconds

    def _measure_sharded(self, refs: set[ObjectRef], before: Usage) -> QueryMeasurement:
        measurement = self._measure(refs, before)
        per_shard = tuple(
            (domain, ops, nbytes)
            for domain, (ops, nbytes) in sorted(self._shard_spend.items())
        )
        by_backend: dict[str, tuple[int, int]] = {}
        for domain, ops, nbytes in per_shard:
            kind = self._site_kinds.get(domain) or self.router.backend_for(domain)
            total_ops, total_bytes = by_backend.get(kind, (0, 0))
            by_backend[kind] = (total_ops + ops, total_bytes + nbytes)
        return replace(
            measurement,
            per_shard=per_shard,
            per_backend=tuple(
                (kind, ops, nbytes)
                for kind, (ops, nbytes) in sorted(by_backend.items())
            ),
            per_shard_cache=tuple(
                (domain, ops, nbytes)
                for domain, (ops, nbytes) in sorted(self._cache_spend.items())
            ),
            latency=self._latency,
            sequential_latency=self._sequential_latency,
            predicted_cost=self._predicted,
        )

    # -- Q1 -------------------------------------------------------------------

    def q1(self, ref: ObjectRef) -> QueryMeasurement:
        """Provenance of one object version: a single indexed lookup.

        Routed to the shard owning ``ref.path`` — its operation count is
        independent of how many shards the domain is split into (during
        a live migration, the source shard until the owning target
        shard cuts over, then the target).
        """
        before = self._begin()
        site = self.routing.read_site(ref.path)
        backend = self._backend(site)

        def lookup() -> ProvenanceBundle | None:
            cache = self.cache
            fence = 0
            if cache is not None:
                hit, attrs = cache.get_item(ref.item_name)
                if hit:
                    return bundle_from_item(
                        ref.item_name, attrs, self._fetch_overflow
                    )
                fence = cache.fence()
            attrs = backend.get_item(site.domain, ref.item_name)
            if not attrs:
                return None
            if cache is not None:
                cache.put_item(ref.item_name, attrs, fence)
            return bundle_from_item(ref.item_name, attrs, self._fetch_overflow)

        with self.account.meter.expect_scope():
            (bundle,) = self._run_wave([(self._label(site), lookup)])
        refs = {bundle.subject} if bundle is not None else set()
        return self._measure_sharded(refs, before)

    def q1_all(self) -> QueryMeasurement:
        """Q1 over every item, via each shard's natural full read (§5's
        72K ops on SimpleDB).

        SimpleDB cannot "generalise the query", so its shards page item
        names and issue one GetAttributes per item (plus a GET per
        spilled value); DynamoDB-style shards page a Scan whose items
        already carry their attributes. The N per-shard streams are
        independent — one wave, dispatched concurrently when
        ``concurrency > 1``.
        """
        before = self._begin()

        def scan_shard(site: Site) -> Callable[[], set[ObjectRef]]:
            backend = self._backend(site)

            def stream() -> set[ObjectRef]:
                found: set[ObjectRef] = set()
                for item_name, attrs in backend.enumerate_items(site.domain):
                    if not attrs:
                        continue
                    bundle = bundle_from_item(
                        item_name, attrs, self._fetch_overflow
                    )
                    found.add(bundle.subject)
                return found

            return stream

        with self.account.meter.expect_scope():
            shard_refs = self._run_wave(
                [(label, scan_shard(site)) for label, site in self._query_sites()]
            )
        refs: set[ObjectRef] = set()
        for found in shard_refs:
            refs.update(found)
        return self._measure_sharded(refs, before)

    # -- Q2 -------------------------------------------------------------------------

    def _paged_query(
        self,
        site: Site,
        expression: str,
        select: str,
        compiled: CompiledQuery | None = None,
    ):
        """Run one logical query on one site via its backend, paging.

        Yields (item name, attrs) pairs; the bracket expression and the
        SELECT statement are two spellings of the same predicate (a
        DynamoDB-placed shard evaluates the compiled predicate client
        side over a Scan instead — ``select_mode`` is a SimpleDB wire
        language choice). ``compiled`` is the predicate compiled once
        by the phase and shared across its shard streams — compilation
        is client CPU, never metered, so hoisting it is meter-neutral.
        Spend accrues to whichever meter scope the consuming stream
        opened — callers consume the generator fully inside their task,
        and the planner's path choice (with its statistics consult)
        runs eagerly here, inside the same scope.
        """
        if compiled is None:
            compiled = parse_query(expression)
        path = self._plan(site, compiled)
        return self._backend(site).query_pages(
            site.domain,
            expression,
            select,
            self.select_mode,
            [Attr.TYPE],
            compiled=compiled,
            path=path,
        )

    def _plan(self, site: Site, compiled: CompiledQuery):
        """Ask the planner for this stream's access path (None = the
        backend's native choice), accruing its USD prediction onto the
        in-flight query's accumulator."""
        if self.planner is None:
            return None
        path, predicted = self.planner.choose(
            self._backend(site), site.domain, compiled, {Attr.TYPE}
        )
        with self._predicted_lock:
            if self._predicted is not None:
                self._predicted += predicted
        return path

    def _find_program_instances(self, program: str) -> set[ObjectRef]:
        """Phase 1: all process versions of ``program`` — every site.

        Memoised through the cache authority: a repeated Q2/Q3 for the
        same program answers this phase with zero backend reads until a
        write (or layout cutover) invalidates it.
        """
        return self._memoised(
            ("instances", program),
            lambda: self._find_program_instances_live(program),
        )

    def _find_program_instances_live(self, program: str) -> set[ObjectRef]:
        literal = quote_literal(program)
        expression = f"['type' = 'process'] intersection ['name' = {literal}]"
        compiled = parse_query(expression)  # once per phase, not per shard

        def find_on(site: Site) -> Callable[[], list[ObjectRef]]:
            select = (
                f"select type from {site.domain} "
                f"where type = 'process' and name = {literal}"
            )

            def stream() -> list[ObjectRef]:
                return [
                    ObjectRef.from_item_name(name)
                    for name, _ in self._paged_query(
                        site, expression, select, compiled
                    )
                ]

            return stream

        found: set[ObjectRef] = set()
        for refs in self._run_wave(
            [(label, find_on(site)) for label, site in self._query_sites()]
        ):
            found.update(refs)
        return found

    def _objects_with_inputs(self, inputs: set[ObjectRef]) -> set[tuple[ObjectRef, str]]:
        """All items listing any of ``inputs`` as an input, with their type.

        An item's ``input`` edges can point at objects on *other* shards,
        so every chunk scatters across all domains and the matches are
        gathered into one set. The chunk x shard streams are mutually
        independent reads, so they form a single dispatch wave.

        Memoised per frontier: repeated Q2/Q3 replay the same BFS rounds,
        so each round's whole chunk-x-shard wave collapses to one cache
        consult while its memo entry stays valid.
        """
        key = ("inputs",) + tuple(ref.encode() for ref in sorted(inputs))
        return self._memoised(key, lambda: self._objects_with_inputs_live(inputs))

    def _objects_with_inputs_live(
        self, inputs: set[ObjectRef]
    ) -> set[tuple[ObjectRef, str]]:
        ordered = sorted(inputs)
        sites = self._query_sites()
        tasks: list[tuple[str, Callable[[], list[tuple[ObjectRef, str]]]]] = []
        for start in range(0, len(ordered), self.ref_batch):
            chunk = ordered[start : start + self.ref_batch]
            literals = [quote_literal(ref.encode()) for ref in chunk]
            disjunction = " or ".join(f"'input' = {lit}" for lit in literals)
            expression = f"[{disjunction}]"
            compiled = parse_query(expression)  # once per chunk, not per shard
            in_list = ", ".join(literals)
            for label, site in sites:
                select = (
                    f"select type from {site.domain} where input in ({in_list})"
                )
                tasks.append(
                    (label, self._match_stream(site, expression, select, compiled))
                )
        found: set[tuple[ObjectRef, str]] = set()
        for matches in self._run_wave(tasks):
            found.update(matches)
        return found

    def _match_stream(
        self,
        site: Site,
        expression: str,
        select: str,
        compiled: CompiledQuery | None = None,
    ) -> Callable[[], list[tuple[ObjectRef, str]]]:
        def stream() -> list[tuple[ObjectRef, str]]:
            matches: list[tuple[ObjectRef, str]] = []
            for name, attrs in self._paged_query(site, expression, select, compiled):
                kind = (attrs.get(Attr.TYPE) or ("file",))[0]
                matches.append((ObjectRef.from_item_name(name), kind))
            return matches

        return stream

    def q2_outputs_of(self, program: str) -> QueryMeasurement:
        """Files that are outputs of ``program`` — two indexed phases (§5),
        each phase scattered across every shard."""
        before = self._begin(planned=True)
        with self.account.meter.expect_scope():
            instances = self._find_program_instances(program)
            refs: set[ObjectRef] = set()
            if instances:
                refs = {
                    ref
                    for ref, kind in self._objects_with_inputs(instances)
                    if kind == "file"
                }
        return self._measure_sharded(refs, before)

    # -- Q3 ------------------------------------------------------------------------------

    def q3_descendants_of(self, program: str) -> QueryMeasurement:
        """Transitive descendants — client-side BFS, batched queries.

        "SimpleDB ... does not support recursive queries or stored
        procedures. Hence, for ancestry queries, it has to retrieve each
        item ... then lookup further ancestors." (§5)

        Under sharding each BFS round scatters the frontier's reference
        chunks across all shards and merges the children into the next
        frontier before continuing — the frontier is global, the lookups
        are per-shard. Rounds are sequential barriers (each frontier
        depends on the last), so the modeled critical path is the sum of
        per-round wave makespans.
        """
        before = self._begin(planned=True)
        with self.account.meter.expect_scope():
            instances = self._find_program_instances(program)
            seeds = {
                ref
                for ref, kind in self._objects_with_inputs(instances)
                if kind == "file"
            }
            visited: set[ObjectRef] = set(seeds)
            results: set[ObjectRef] = set(seeds)
            frontier = set(seeds)
            while frontier:
                children = self._objects_with_inputs(frontier)
                frontier = set()
                for ref, kind in children:
                    if ref in visited:
                        continue
                    visited.add(ref)
                    frontier.add(ref)
                    if kind == "file":
                        results.add(ref)
        return self._measure_sharded(results, before)

    # -- Q4 ------------------------------------------------------------------------------

    def q4_time_range(self, lo_version: int, hi_version: int) -> QueryMeasurement:
        """File versions in ``[lo_version, hi_version]`` — a time-range
        query over the version axis.

        Version nonces are zero-padded (``v0002``), so lexicographic
        order is version order and the phase is one range predicate
        scattered across every shard. On a SimpleDB shard the range
        evaluates server-side like any other predicate; on a
        DynamoDB-placed shard this is the query class composite
        hash+range indexes exist for — with a ``type/nonce`` index
        declared, the cost planner serves the slice from one
        range-conditioned Query, where first-fit reads the whole
        ``type = 'file'`` partition and the no-index path scans the
        table. Memoised like the other scatter phases.
        """
        before = self._begin(planned=True)
        lo = f"v{lo_version:0{VERSION_DIGITS}d}"
        hi = f"v{hi_version:0{VERSION_DIGITS}d}"
        lo_literal, hi_literal = quote_literal(lo), quote_literal(hi)
        expression = (
            f"['type' = 'file'] intersection "
            f"['nonce' >= {lo_literal} and 'nonce' <= {hi_literal}]"
        )
        compiled = parse_query(expression)

        def find_on(site: Site) -> Callable[[], list[ObjectRef]]:
            select = (
                f"select type from {site.domain} where type = 'file' "
                f"and nonce between {lo_literal} and {hi_literal}"
            )

            def stream() -> list[ObjectRef]:
                return [
                    ObjectRef.from_item_name(name)
                    for name, _ in self._paged_query(
                        site, expression, select, compiled
                    )
                ]

            return stream

        def live() -> set[ObjectRef]:
            found: set[ObjectRef] = set()
            for refs in self._run_wave(
                [(label, find_on(site)) for label, site in self._query_sites()]
            ):
                found.update(refs)
            return found

        with self.account.meter.expect_scope():
            refs = self._memoised(("range", lo, hi), live)
        return self._measure_sharded(set(refs), before)


# ---------------------------------------------------------------------------
# Shared closure helpers (also used by the scan engine)
# ---------------------------------------------------------------------------

def _memo_nbytes(value) -> int:
    """Node-memory estimate for a memoised scatter-phase result — a set
    of :class:`ObjectRef` (phase 1) or ``(ref, kind)`` pairs (matches)."""
    total = 0
    for element in value:
        if isinstance(element, tuple):
            ref, kind = element
            total += len(ref.encode()) + len(kind)
        else:
            total += len(element.encode())
    return total

def _direct_outputs(bundles: list[ProvenanceBundle], program: str) -> set[ObjectRef]:
    """Files whose inputs include a process instance of ``program``."""
    instances = {
        bundle.subject
        for bundle in bundles
        if bundle.kind == "process" and program in bundle.attribute_values(Attr.NAME)
    }
    return {
        bundle.subject
        for bundle in bundles
        if bundle.kind == "file" and any(ref in instances for ref in bundle.inputs())
    }


def _descendant_closure(
    bundles: list[ProvenanceBundle], seeds: set[ObjectRef]
) -> set[ObjectRef]:
    """Transitive descendants of ``seeds`` (files only), via input edges."""
    children: dict[ObjectRef, set[ObjectRef]] = {}
    kind_of: dict[ObjectRef, str] = {}
    for bundle in bundles:
        kind_of[bundle.subject] = bundle.kind
        for parent in bundle.inputs():
            children.setdefault(parent, set()).add(bundle.subject)
    visited = set(seeds)
    results = set(seeds)
    frontier = list(seeds)
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            if child in visited:
                continue
            visited.add(child)
            frontier.append(child)
            if kind_of.get(child) == "file":
                results.add(child)
    return results
