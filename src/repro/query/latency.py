"""Modeled query latency: per-request round trips and pool makespan.

The paper's §5 latency story is round-trip dominated: every SimpleDB
request is one HTTP exchange, so a query that issues R requests
one-at-a-time pays ~R round trips ("SimpleDB ... has to retrieve each
item ... then lookup further ancestors"). The sharded engine's
scatter-gather changes the *shape* of that cost — per-shard request
streams are independent, so a concurrent dispatcher pays the **critical
path** (the slowest shard stream per phase) instead of the sum.

This module turns metered activity into modeled seconds:

* :class:`QueryLatencyModel` prices one request stream from its meter
  scope — a fixed 2009-flavoured round trip per operation class plus
  transfer time at a modeled downlink bandwidth;
* :func:`makespan` schedules a wave of task durations onto a bounded
  worker pool (list scheduling in submission order, the dispatcher's
  actual policy) and returns the wall-clock the wave would take —
  ``workers=1`` degenerates to the sequential sum, ``workers >= tasks``
  to the max.

The numbers are a *model* (the simulation's services answer instantly);
their value is relative: the same model prices the sequential and the
concurrent dispatch of the same request streams, which is exactly the
comparison ``benchmarks/bench_concurrent_gather.py`` plots.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.aws import billing
from repro.aws.billing import Usage

#: Modeled round-trip seconds per (service, operation), ~2009 WAN numbers:
#: SimpleDB answers from an index in tens of milliseconds; S3 metadata
#: operations are comparable; LIST and data GETs pay more server time.
DEFAULT_RTT: Mapping[tuple[str, str], float] = {
    (billing.SDB, "GetAttributes"): 0.012,
    (billing.SDB, "PutAttributes"): 0.020,
    (billing.SDB, "DeleteAttributes"): 0.020,
    (billing.SDB, "Query"): 0.025,
    (billing.SDB, "QueryWithAttributes"): 0.030,
    (billing.SDB, "Select"): 0.030,
    (billing.SDB, "CreateDomain"): 0.150,
    (billing.SDB, "DeleteDomain"): 0.150,
    (billing.SDB, "ListDomains"): 0.012,
    (billing.S3, "GET"): 0.040,
    (billing.S3, "HEAD"): 0.025,
    (billing.S3, "PUT"): 0.045,
    (billing.S3, "COPY"): 0.045,
    (billing.S3, "LIST"): 0.060,
    (billing.S3, "DELETE"): 0.025,
    # The read-cache tier answers from node memory inside the region —
    # an order of magnitude under any backend round trip, which is the
    # whole latency argument for fronting hot reads with it.
    (billing.ELASTICACHE, "Get"): 0.001,
    (billing.ELASTICACHE, "Put"): 0.001,
}


@dataclass(frozen=True)
class QueryLatencyModel:
    """Prices a request stream in modeled seconds.

    ``stream_seconds`` assumes the stream issues its requests strictly
    one after another (the engine's per-shard streams do): latency is
    the sum of per-request round trips plus response payload time at
    ``bandwidth_bytes_per_s``.
    """

    rtt: Mapping[tuple[str, str], float] = field(default_factory=lambda: DEFAULT_RTT)
    default_rtt: float = 0.025
    bandwidth_bytes_per_s: float = 8 * 1024 * 1024  # ~64 Mbit/s downlink

    def stream_seconds(self, usage: Usage) -> float:
        """Modeled wall-clock for one sequential request stream."""
        seconds = 0.0
        for (service, op), count in usage.requests:
            seconds += self.rtt.get((service, op), self.default_rtt) * count
        seconds += usage.transfer_out() / self.bandwidth_bytes_per_s
        return seconds


#: The model every engine uses unless a caller substitutes its own.
DEFAULT_LATENCY_MODEL = QueryLatencyModel()


def makespan(durations: Sequence[float], workers: int) -> float:
    """Wall-clock for one wave of tasks on a bounded worker pool.

    List scheduling: tasks start in submission order, each on the worker
    that frees up first — the same policy a ``ThreadPoolExecutor`` with
    a FIFO queue follows, so the modeled makespan matches the dispatch
    the engine actually performs.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not durations:
        return 0.0
    if workers == 1:
        return sum(durations)
    free_at = [0.0] * min(workers, len(durations))
    for duration in durations:
        start = heapq.heappop(free_at)
        heapq.heappush(free_at, start + duration)
    return max(free_at)
