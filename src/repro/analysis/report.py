"""Fixed-width text tables, in the visual style of the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TextTable:
    """A minimal fixed-width table renderer.

    >>> table = TextTable(["arch", "ops"])
    >>> table.add_row("s3", 24952)
    >>> print(table.render())          # doctest: +NORMALIZE_WHITESPACE
    arch  ops
    ----  -----
    s3    24952
    """

    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def check_mark(value: bool) -> str:
    """The paper's Table 1 marks: a check or a cross."""
    return "yes" if value else "NO"
