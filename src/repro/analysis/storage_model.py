"""Table 2: storage cost comparison (paper §5).

The paper extrapolates, from the combined PASS trace, the provenance
bytes and operation counts each architecture adds over a provenance-free
"Raw" baseline. This module implements the §5 formulas over
:class:`~repro.workloads.base.TraceStats`:

* **Raw** — the data PUTs alone: ``raw_bytes`` and one operation per
  object;
* **S3 (A1)** — provenance rides existing PUTs for free; the only extra
  operations are the PUTs for records >1 KB
  (``ops = N_provrecs>1KB``);
* **S3+SimpleDB (A2)** — ``ops = N_SimpleDBitems + N_provrecs>1KB``
  (the paper assumes one PutAttributes per item; we also report the
  exact call count after 100-attribute batching);
* **S3+SimpleDB+SQS (A3)** — storage ``2·S_SQS + S_SimpleDB`` (each
  provenance byte is written to and read from the queue once) and
  ``ops = 2·(N_S3objects + N_WALmessages) + N_SimpleDBitems +
  N_provrecs>1KB`` (temp PUT + COPY per object; send + receive per WAL
  message).

Known paper inconsistencies handled here (see EXPERIMENTS.md): the
printed Table 2 cell for A2 (167.8 MB) conflicts with the §5 prose
(177.9 MB), and the printed A3 operation count (231,287) is not exactly
reproduced by the paper's own formula; we implement the formulas and
compare shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import TextTable
from repro.units import GB, MB, fmt_bytes, fmt_count, fmt_factor, fmt_ratio
from repro.workloads.base import TraceStats

#: The paper's Table 2, for side-by-side comparison.
PAPER_TABLE2 = {
    "raw": {"data_bytes": int(1.27 * GB), "ops": 31_180},
    "s3": {"prov_bytes": int(121.8 * MB), "overhead": "9.3%", "ops": 24_952},
    "s3+simpledb": {
        "prov_bytes": int(167.8 * MB),  # table cell; §5 prose says 177.9 MB
        "prov_bytes_prose": int(177.9 * MB),
        "overhead": "13.6%",
        "ops": 168_514,
    },
    "s3+simpledb+sqs": {
        "prov_bytes": int(421.4 * MB),
        "overhead": "32.2%",
        "ops": 231_287,
    },
}


@dataclass(frozen=True)
class StorageCostRow:
    """One Table 2 column: an architecture's storage bill."""

    architecture: str
    prov_bytes: int
    ops: int
    raw_bytes: int
    raw_ops: int

    @property
    def overhead(self) -> str:
        return fmt_ratio(self.prov_bytes, self.raw_bytes)

    @property
    def ops_factor(self) -> str:
        return fmt_factor(self.ops, self.raw_ops)


def storage_table(stats: TraceStats) -> dict[str, StorageCostRow]:
    """Apply the §5 formulas to a trace's statistics."""
    raw = StorageCostRow(
        architecture="raw",
        prov_bytes=stats.raw_bytes,
        ops=stats.n_objects,
        raw_bytes=stats.raw_bytes,
        raw_ops=stats.n_objects,
    )
    s3 = StorageCostRow(
        architecture="s3",
        prov_bytes=stats.s3_prov_bytes,
        ops=stats.n_records_gt_1kb,
        raw_bytes=stats.raw_bytes,
        raw_ops=stats.n_objects,
    )
    s3_sdb = StorageCostRow(
        architecture="s3+simpledb",
        prov_bytes=stats.sdb_prov_bytes,
        ops=stats.n_sdb_items + stats.n_records_gt_1kb,
        raw_bytes=stats.raw_bytes,
        raw_ops=stats.n_objects,
    )
    s3_sdb_sqs = StorageCostRow(
        architecture="s3+simpledb+sqs",
        prov_bytes=2 * stats.wal_prov_bytes + stats.sdb_prov_bytes,
        ops=(
            2 * (stats.n_objects + stats.n_wal_messages)
            + stats.n_sdb_items
            + stats.n_records_gt_1kb
        ),
        raw_bytes=stats.raw_bytes,
        raw_ops=stats.n_objects,
    )
    return {
        row.architecture: row for row in (raw, s3, s3_sdb, s3_sdb_sqs)
    }


def paper_formula_a3_ops(stats: TraceStats) -> int:
    """A3 operations by the paper's own §5 formula.

    ``2·[N_S3objects + provsize/8KB] + N_SimpleDBitems + N_provrecs>1KB``
    — which counts only the 8 KB provenance chunks on the queue. The
    *protocol* of §4.3 additionally sends a begin record, a data pointer
    record, and a commit record per transaction (and receives each of
    them once), which the formula omits; ``storage_table`` reports the
    protocol-true count, this function the paper's. EXPERIMENTS.md
    discusses the gap.
    """
    chunk_ops = -(-stats.s3_prov_bytes // (8 * 1024))  # ceil division
    return (
        2 * (stats.n_objects + chunk_ops)
        + stats.n_sdb_items
        + stats.n_records_gt_1kb
    )


def render_table2(stats: TraceStats, include_paper: bool = True) -> str:
    """The Table 2 reproduction, optionally with the paper's numbers."""
    rows = storage_table(stats)
    table = TextTable(
        ["architecture", "prov space", "overhead", "ops", "ops factor"],
        title="Table 2: storage cost comparison",
    )
    order = ("raw", "s3", "s3+simpledb", "s3+simpledb+sqs")
    for name in order:
        row = rows[name]
        space = fmt_bytes(row.prov_bytes)
        if name == "raw":
            table.add_row("raw (data)", space, "-", fmt_count(row.ops), "1x")
        else:
            table.add_row(
                name, space, row.overhead, fmt_count(row.ops), row.ops_factor
            )
    rendered = table.render()
    rendered += (
        f"\n(A3 ops by the paper's formula, which omits the per-transaction "
        f"begin/data/commit records: {fmt_count(paper_formula_a3_ops(stats))})"
    )
    if include_paper:
        paper = TextTable(
            ["architecture", "prov space", "overhead", "ops"],
            title="paper's Table 2 (for comparison)",
        )
        paper.add_row("raw (data)", "1.27GB", "-", "31,180")
        paper.add_row("s3", "121.8MB", "9.3%", "24,952 (0.8x)")
        paper.add_row("s3+simpledb", "167.8MB*", "13.6%", "168,514 (5.4x)")
        paper.add_row("s3+simpledb+sqs", "421.4MB", "32.2%", "231,287 (7.41x)")
        rendered += (
            "\n\n" + paper.render()
            + "\n* the paper's prose says 177.9MB for this cell"
        )
    return rendered


def shape_check(stats: TraceStats) -> list[str]:
    """Verify the qualitative claims of Table 2 hold for our trace.

    Returns a list of violated claims (empty = the shape reproduces):

    1. storage ordering: S3 < S3+SimpleDB < S3+SimpleDB+SQS;
    2. operation ordering: S3 < Raw < S3+SimpleDB < S3+SimpleDB+SQS;
    3. the full-properties architecture costs a *reasonable* space
       overhead (tens of percent, not multiples) over raw data;
    4. A1 needs fewer extra ops than raw PUTs (its factor < 1).
    """
    rows = storage_table(stats)
    problems = []
    if not (
        rows["s3"].prov_bytes
        < rows["s3+simpledb"].prov_bytes
        < rows["s3+simpledb+sqs"].prov_bytes
    ):
        problems.append("storage ordering s3 < s3+sdb < s3+sdb+sqs violated")
    if not (
        rows["s3"].ops
        < rows["raw"].ops
        < rows["s3+simpledb"].ops
        < rows["s3+simpledb+sqs"].ops
    ):
        problems.append("ops ordering s3 < raw < s3+sdb < s3+sdb+sqs violated")
    full = rows["s3+simpledb+sqs"]
    if not (0.05 < full.prov_bytes / full.raw_bytes < 1.0):
        problems.append(
            "full-architecture space overhead outside the reasonable band"
        )
    if rows["s3"].ops >= rows["raw"].ops:
        problems.append("A1 extra ops should be below raw ops (paper: 0.8x)")
    return problems
