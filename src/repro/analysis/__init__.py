"""The paper's §5 analysis: storage and query cost models plus USD costs.

* :mod:`repro.analysis.storage_model` — Table 2 (storage space and
  operation counts per architecture, from trace statistics);
* :mod:`repro.analysis.query_model` — Table 3 (bytes and operations for
  Q1/Q2/Q3 on the S3-scan and SimpleDB backends);
* :mod:`repro.analysis.cost` — conversion to January-2009 USD;
* :mod:`repro.analysis.report` — fixed-width table rendering shared by
  benchmarks and examples.
"""

from repro.analysis.cost import architecture_monthly_cost, storage_cost_usd
from repro.analysis.query_model import (
    PAPER_TABLE3,
    QueryCostRow,
    analytic_query_table,
    render_table3,
)
from repro.analysis.report import TextTable
from repro.analysis.storage_model import (
    PAPER_TABLE2,
    StorageCostRow,
    render_table2,
    storage_table,
)

__all__ = [
    "TextTable",
    "StorageCostRow",
    "storage_table",
    "render_table2",
    "PAPER_TABLE2",
    "QueryCostRow",
    "analytic_query_table",
    "render_table3",
    "PAPER_TABLE3",
    "storage_cost_usd",
    "architecture_monthly_cost",
]
