"""Table 3: query cost comparison (paper §5).

Three queries, two backends. The **analytic** model here mirrors the
paper's extrapolation; the **measured** numbers come from running the
actual engines (:mod:`repro.query.engine`) against a live simulated
cloud and reading the meter — the Table 3 benchmark reports both.

Analytic formulas (S3 backend):

* every query must scan the repository: one HEAD per object plus one
  GET per spilled record — ``ops = N_objects + N_provrecs>1KB`` and
  ``bytes = S3-format provenance size``. The paper's S3 column (56,132
  ops = 31,180 + 24,952; 121.8 MB for all three queries) is exactly
  this formula.

Analytic formulas (SimpleDB backend):

* **Q1 over all objects**: SimpleDB cannot "generalise the query", so
  it costs one lookup per file item plus the spilled-value GETs;
  bytes ≈ the file items' provenance;
* **Q2**: two indexed phases (instances of the program, then objects
  listing one as input) — a handful of operations and a few KB;
* **Q3**: Q2 plus one batched query per BFS frontier chunk — tens of
  operations, still orders of magnitude below the scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.report import TextTable
from repro.units import KB, MB, fmt_bytes, fmt_count
from repro.workloads.base import TraceStats

#: The paper's Table 3 for comparison.
PAPER_TABLE3 = {
    "Q1": {
        "s3_bytes": int(121.8 * MB),
        "s3_ops": 56_132,
        "sdb_bytes": int(51.24 * MB),
        "sdb_ops": 71_825,
    },
    "Q2": {
        "s3_bytes": int(121.8 * MB),
        "s3_ops": 56_132,
        "sdb_bytes": int(2.8 * KB),
        "sdb_ops": 6,
    },
    "Q3": {
        "s3_bytes": int(121.8 * MB),
        "s3_ops": 56_132,
        "sdb_bytes": int(13.8 * KB),
        "sdb_ops": 31,
    },
}


@dataclass(frozen=True)
class QueryCostRow:
    """One Table 3 row: a query's cost on both backends."""

    query: str
    s3_bytes: int
    s3_ops: int
    sdb_bytes: int
    sdb_ops: int


def analytic_query_table(
    stats: TraceStats,
    q2_result_estimate: int | None = None,
    q3_depth_estimate: int = 4,
    ref_batch: int = 20,
    page_size: int = 250,
) -> list[QueryCostRow]:
    """The paper's extrapolation applied to our trace statistics.

    ``q2_result_estimate`` defaults to ~0.3% of the repository (the
    paper's Q2 returns a program's output files — a thin slice of 31k
    objects). At paper scale the defaults land on Q2 ≈ 6 ops and Q3 ≈ 26
    ops, bracketing the paper's 6 and 31.
    """
    if q2_result_estimate is None:
        q2_result_estimate = max(4, round(stats.n_objects * 0.003))
    scan_ops = stats.n_objects + stats.n_records_gt_1kb
    scan_bytes = stats.s3_prov_bytes

    q1_sdb_ops = stats.n_objects + stats.n_file_records_gt_1kb
    q1_sdb_bytes = stats.sdb_file_bytes

    # Q2: one page-walk to find instances, one batched disjunction pass.
    # Both phases project only item names plus a couple of attributes,
    # so per-result bytes are tens of bytes, not whole items.
    per_result_bytes = 48
    instance_pages = max(1, math.ceil(q2_result_estimate / page_size))
    q2_ops = instance_pages + max(1, math.ceil(q2_result_estimate / ref_batch))
    q2_bytes = 2 * q2_result_estimate * per_result_bytes

    # Q3: Q2 plus one batched query per BFS level per frontier chunk.
    q3_ops = q2_ops + q3_depth_estimate * max(
        1, math.ceil(q2_result_estimate / ref_batch)
    )
    q3_bytes = int(q2_bytes * (1 + q3_depth_estimate))

    return [
        QueryCostRow("Q1", scan_bytes, scan_ops, q1_sdb_bytes, q1_sdb_ops),
        QueryCostRow("Q2", scan_bytes, scan_ops, q2_bytes, q2_ops),
        QueryCostRow("Q3", scan_bytes, scan_ops, q3_bytes, q3_ops),
    ]


def render_table3(
    rows: list[QueryCostRow], title: str = "Table 3: query comparison",
    include_paper: bool = True,
) -> str:
    table = TextTable(
        ["query", "S3 data", "S3 ops", "SimpleDB data", "SimpleDB ops"],
        title=title,
    )
    for row in rows:
        table.add_row(
            row.query,
            fmt_bytes(row.s3_bytes),
            fmt_count(row.s3_ops),
            fmt_bytes(row.sdb_bytes),
            fmt_count(row.sdb_ops),
        )
    rendered = table.render()
    if include_paper:
        paper = TextTable(
            ["query", "S3 data", "S3 ops", "SimpleDB data", "SimpleDB ops"],
            title="paper's Table 3 (for comparison)",
        )
        paper.add_row("Q.1", "121.8MB", "56,132", "51.24MB", "71,825")
        paper.add_row("Q.2", "121.8MB", "56,132", "2.8KB", "6")
        paper.add_row("Q.3", "121.8MB", "56,132", "13.8KB", "31")
        rendered += "\n\n" + paper.render()
    return rendered


def shape_check(rows: list[QueryCostRow], min_factor: float = 100.0) -> list[str]:
    """The qualitative Table 3 claims; returns violated claims.

    1. the S3 backend's cost is identical for all three queries (it
       always scans everything);
    2. SimpleDB beats S3 by ``min_factor`` on Q2 and Q3 (ops and bytes)
       — at paper scale that factor is orders of magnitude; small test
       repositories pass a proportionally smaller bar;
    3. Q3 costs more than Q2 on SimpleDB (no recursion — iterative
       lookups), yet remains far below the scan;
    4. Q1-over-all-objects is the one query where SimpleDB's operation
       count is comparable to (the paper: higher than) the S3 scan's.
    """
    by_name = {row.query: row for row in rows}
    problems = []
    if not (
        by_name["Q1"].s3_ops == by_name["Q2"].s3_ops == by_name["Q3"].s3_ops
    ):
        problems.append("S3 scan cost should be query-independent")
    for name in ("Q2", "Q3"):
        row = by_name[name]
        if not (row.sdb_ops * min_factor <= row.s3_ops):
            problems.append(
                f"{name}: SimpleDB ops not {min_factor:.0f}x better than S3"
            )
        if not (row.sdb_bytes * min_factor <= row.s3_bytes):
            problems.append(
                f"{name}: SimpleDB bytes not {min_factor:.0f}x better than S3"
            )
    if not (by_name["Q2"].sdb_ops < by_name["Q3"].sdb_ops):
        problems.append("Q3 should cost more SimpleDB ops than Q2")
    if not (by_name["Q1"].sdb_ops > by_name["Q2"].sdb_ops * min_factor / 2):
        problems.append("Q1-over-all should dwarf Q2 on SimpleDB")
    return problems
