"""USD costs (January 2009) for the Table 2 architectures.

The paper observes that although A3's operation counts "seem excessive",
*"operations are much cheaper (in USD) than storage in the AWS pricing
model"*. This module makes that argument concrete: it prices each
architecture's storage bill from the Table 2 rows using the §2 price
book, splitting storage-per-month from one-time operation/transfer
charges, so the claim can be checked numerically (and is, in the
benchmark suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aws.billing import PriceBook
from repro.analysis.report import TextTable
from repro.analysis.storage_model import StorageCostRow, storage_table
from repro.units import GB
from repro.workloads.base import TraceStats


@dataclass(frozen=True)
class ArchitectureCost:
    """Monthly + one-time USD costs for one architecture."""

    architecture: str
    storage_usd_month: float
    operations_usd: float
    transfer_in_usd: float

    @property
    def first_month_total(self) -> float:
        return self.storage_usd_month + self.operations_usd + self.transfer_in_usd


def storage_cost_usd(
    row: StorageCostRow, prices: PriceBook | None = None, sdb_fraction: float = 0.5
) -> ArchitectureCost:
    """Price one Table 2 row.

    ``sdb_fraction`` apportions provenance bytes between S3-priced and
    SimpleDB-priced storage for the hybrid architectures (SimpleDB
    storage cost ten times S3's per GB in 2009, so the split matters;
    the exact split depends on how many values spill, which Table 2
    does not record — callers with full stats use
    :func:`architecture_monthly_cost` instead).
    """
    prices = prices or PriceBook()
    gb = row.prov_bytes / GB
    if row.architecture in ("raw", "s3"):
        storage = gb * prices.s3_storage_gb_month
        op_cost = row.ops / 1000 * prices.s3_put_class_per_1000
    elif row.architecture == "s3+simpledb":
        storage = gb * (
            (1 - sdb_fraction) * prices.s3_storage_gb_month
            + sdb_fraction * prices.sdb_storage_gb_month
        )
        op_cost = row.ops / 1000 * prices.s3_put_class_per_1000
    else:  # s3+simpledb+sqs
        storage = gb * (
            0.5 * prices.s3_storage_gb_month + 0.5 * prices.sdb_storage_gb_month
        )
        op_cost = row.ops / 10_000 * prices.sqs_per_10000_requests * 5
    transfer = gb * prices.s3_transfer_in_gb
    return ArchitectureCost(
        architecture=row.architecture,
        storage_usd_month=storage,
        operations_usd=op_cost,
        transfer_in_usd=transfer,
    )


def architecture_monthly_cost(stats: TraceStats, prices: PriceBook | None = None):
    """Price all Table 2 rows from full trace statistics.

    Operations are priced at their true service mix — A3's bill is
    dominated by *cheap* SQS requests ($0.01 per 10,000) plus SimpleDB
    machine time, not S3 PUT-class requests, which is how the paper can
    call 7.4x the operations "reasonable".
    """
    prices = prices or PriceBook()
    rows = storage_table(stats)
    costs = {}
    for name, row in rows.items():
        # Apportion using the real byte split where we know it.
        if name == "s3+simpledb":
            sdb_gb = (stats.sdb_prov_bytes - _spilled_bytes(stats)) / GB
            s3_gb = _spilled_bytes(stats) / GB
            storage = (
                sdb_gb * prices.sdb_storage_gb_month
                + s3_gb * prices.s3_storage_gb_month
            )
            op_cost = (
                stats.n_records_gt_1kb / 1000 * prices.s3_put_class_per_1000
                + stats.n_put_attribute_calls * 2.2e-5 * prices.sdb_machine_hour
            )
        elif name == "s3+simpledb+sqs":
            sdb_gb = (stats.sdb_prov_bytes - _spilled_bytes(stats)) / GB
            s3_gb = _spilled_bytes(stats) / GB
            sqs_gb = 2 * stats.wal_prov_bytes / GB
            storage = (
                sdb_gb * prices.sdb_storage_gb_month
                + s3_gb * prices.s3_storage_gb_month
                # SQS bytes are transient (stored then deleted); charge
                # them as transfer-equivalent rather than a month's rent.
                + sqs_gb * prices.sqs_transfer_in_gb
            )
            s3_class_ops = 2 * stats.n_objects + stats.n_records_gt_1kb
            sqs_ops = 2 * stats.n_wal_messages
            op_cost = (
                s3_class_ops / 1000 * prices.s3_put_class_per_1000
                + sqs_ops / 10_000 * prices.sqs_per_10000_requests
                + stats.n_put_attribute_calls * 2.2e-5 * prices.sdb_machine_hour
            )
        else:
            storage = row.prov_bytes / GB * prices.s3_storage_gb_month
            op_cost = row.ops / 1000 * prices.s3_put_class_per_1000
        transfer = row.prov_bytes / GB * prices.s3_transfer_in_gb
        costs[name] = ArchitectureCost(
            architecture=name,
            storage_usd_month=storage,
            operations_usd=op_cost,
            transfer_in_usd=transfer,
        )
    return costs


def _spilled_bytes(stats: TraceStats) -> int:
    """Bytes of >1 KB values living as S3 objects (approximation: the
    delta between the SimpleDB-format and item-attribute sizes is not
    tracked separately, so assume spilled records average 2 KB)."""
    return stats.n_records_gt_1kb * 2048


def render_cost_table(stats: TraceStats, prices: PriceBook | None = None) -> str:
    costs = architecture_monthly_cost(stats, prices)
    table = TextTable(
        ["architecture", "storage $/mo", "ops $", "transfer-in $", "first month $"],
        title="USD cost of provenance (Jan-2009 prices)",
    )
    for name in ("raw", "s3", "s3+simpledb", "s3+simpledb+sqs"):
        cost = costs[name]
        table.add_row(
            name,
            f"{cost.storage_usd_month:.4f}",
            f"{cost.operations_usd:.4f}",
            f"{cost.transfer_in_usd:.4f}",
            f"{cost.first_month_total:.4f}",
        )
    return table.render()
