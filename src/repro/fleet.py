"""A fleet of PASS clients sharing one provenance-aware cloud.

The paper's usage model (§2.5) is inherently multi-client: *"multiple
clients can concurrently update different objects at the same time"* —
many research groups sharing one S3 bucket and one provenance domain,
each with its own PASS cache and (for A3) its own WAL queue and commit
daemon.

:class:`ClientFleet` models that deployment: each client owns a
namespace (so the no-concurrent-same-object rule holds by construction),
clients' stores interleave round-robin, any client can crash and a new
incarnation take over, and the shared provenance domain answers
queries spanning everybody's work — the cross-group sharing the paper's
introduction motivates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.aws.account import AWSAccount, ConsistencyConfig
from repro.aws.faults import FaultPlan
from repro.core.base import RetryPolicy
from repro.core.s3_simpledb import S3SimpleDB
from repro.core.s3_simpledb_sqs import S3SimpleDBSQS
from repro.core.s3_standalone import S3Standalone
from repro.errors import ClientCrash
from repro.migration.handle import RouterHandle, fresh_handle
from repro.migration.live import LiveMigration, MigrationReport, begin_live_migration
from repro.passlib.records import FlushEvent
from repro.query.engine import S3ScanEngine, SimpleDBEngine
from repro.sharding import ShardRouter

_FACTORIES = {
    "s3": S3Standalone,
    "s3+simpledb": S3SimpleDB,
    "s3+simpledb+sqs": S3SimpleDBSQS,
}


@dataclass
class FleetClient:
    """One client host: its store instance and pending work."""

    name: str
    store: object
    pending: list[FlushEvent] = field(default_factory=list)
    stored: int = 0
    crashes: int = 0

    @property
    def backlog(self) -> int:
        return len(self.pending)


class ClientFleet:
    """N clients, one cloud, interleaved stores, crash/restart support."""

    def __init__(
        self,
        n_clients: int = 3,
        architecture: str = "s3+simpledb+sqs",
        seed: int = 0,
        consistency: ConsistencyConfig | None = None,
        shards: int = 1,
        placement: str | dict[int, str] | None = None,
        concurrency: int | None = None,
        ddb_indexes: str | tuple | None = None,
        write_batch: int | None = None,
        read_cache: str | bool | int | None = None,
        planner: str | None = None,
        record_trace: bool = False,
    ):
        """``ddb_indexes`` declares GSIs on DynamoDB-placed provenance
        shards (spec string like ``"name,input"``; default the
        ``REPRO_DDB_INDEXES`` environment spec) — shared by the whole
        fleet, like the shard layout itself. ``write_batch`` sets every
        client's write-coalescer/group-commit width (default 1, or the
        ``REPRO_WRITE_BATCH`` environment override). ``read_cache``
        enables the account-wide ElastiCache-style read-cache tier
        (``"on"``/spec/``REPRO_READ_CACHE`` override; default off) —
        one authority shared by all clients, so any client's write
        invalidates what another client cached. ``record_trace`` makes
        the round-robin drain record its op log — ``(client, event)`` in
        exact store order — in :attr:`trace`, ready for
        :func:`repro.workloads.trace.dump_trace` and byte-identical
        replay via :meth:`replay_trace`."""
        if architecture not in _FACTORIES:
            raise ValueError(f"unknown architecture {architecture!r}")
        self.architecture = architecture
        self.account = AWSAccount(
            seed=seed,
            consistency=consistency or ConsistencyConfig.strong(),
            ddb_indexes=ddb_indexes,
            read_cache=read_cache,
        )
        #: One seeded stream drives every fleet-level random choice —
        #: never the module-level ``random`` state, which other tests
        #: (or pytest-xdist workers) would perturb. Same seed, same run.
        self._rng = random.Random(f"fleet:{seed}")
        #: All clients share one *routing handle* over the shard layout
        #: (and backend placement) of the provenance domain — so a live
        #: migration redirects every client's store, every commit
        #: daemon, and every shared query engine simultaneously, epoch
        #: by epoch.
        self.routing = fresh_handle(shards, placement=placement)
        #: Worker-pool width for shared query engines (None → sequential
        #: or the ``REPRO_QUERY_CONCURRENCY`` environment override).
        self.concurrency = concurrency
        #: Access-path planning mode for shared query engines (None →
        #: the ``REPRO_QUERY_PLANNER`` environment spec, default off).
        self.planner = planner
        #: Write-coalescer / daemon group-commit width per client.
        self.write_batch = write_batch
        #: When ``record_trace``: the fleet's op log — ``(client_name,
        #: event)`` in the exact order the round-robin drain stored
        #: them. Only *successful* stores are recorded (a crashed
        #: attempt is re-recorded when its retry lands), so a replay of
        #: a fault-free run reproduces the meter byte for byte.
        self.record_trace = record_trace
        self.trace: list[tuple[str, FlushEvent]] = []
        self.clients: dict[str, FleetClient] = {}
        for index in range(n_clients):
            self._spawn(f"client-{index}")

    # -- client lifecycle ----------------------------------------------------

    def _spawn(self, name: str, faults: FaultPlan | None = None) -> FleetClient:
        retry = RetryPolicy(
            attempts=12, wait=lambda: self.account.clock.advance(0.5)
        )
        kwargs = {"router": self.routing}
        if self.architecture != "s3":
            kwargs["write_batch"] = self.write_batch
        if self.architecture == "s3+simpledb+sqs":
            kwargs["client_id"] = name
        store = _FACTORIES[self.architecture](
            self.account, faults=faults or FaultPlan(), retry=retry, **kwargs
        )
        store.provision()
        client = FleetClient(name=name, store=store)
        self.clients[name] = client
        return client

    def crash_client(self, name: str) -> None:
        """The host dies: in-flight work is lost; backlog survives only
        because the *workload generator* can resubmit it (a real grid
        scheduler would)."""
        client = self.clients[name]
        client.crashes += 1
        pending = client.pending
        replacement = self._spawn(name)
        replacement.pending = pending
        replacement.crashes = client.crashes

    # -- work distribution -------------------------------------------------------

    def submit(self, client_name: str, events: list[FlushEvent]) -> None:
        """Queue a client's flush events (its own namespace of objects)."""
        self.clients[client_name].pending.extend(events)

    def scatter(self, traces: list[list[FlushEvent]]) -> dict[str, int]:
        """Deal whole traces across clients using the fleet's seeded RNG.

        Each trace (one job's causally ordered flush events) goes to a
        single client, chosen from the fleet's own ``random.Random``
        stream — deterministic for a given fleet seed regardless of what
        other code did to the global RNG. Returns events-per-client.
        """
        names = sorted(self.clients)
        assigned: dict[str, int] = {name: 0 for name in names}
        for trace in traces:
            name = names[self._rng.randrange(len(names))]
            self.submit(name, trace)
            assigned[name] += len(trace)
        return assigned

    def _store_round(self, batch: int, crash_schedule: dict | None = None) -> int:
        """One round-robin round: each client stores up to ``batch`` of
        its backlog; returns events stored. The single drain protocol
        both :meth:`run_round_robin` and :meth:`run_live_migration`
        interleave their work with — crash handling included."""
        stored = 0
        for name in sorted(self.clients):
            client = self.clients[name]
            for _ in range(min(batch, client.backlog)):
                event = client.pending[0]
                if crash_schedule and crash_schedule.get(name) == client.stored:
                    del crash_schedule[name]
                    client.store.faults.crash_at_call(
                        len(client.store.faults.log) + 3
                    )
                    try:
                        client.store.store(event)
                    except ClientCrash:
                        self.crash_client(name)
                        break  # next incarnation picks the event up
                client.store.store(event)
                client.pending.pop(0)
                client.stored += 1
                stored += 1
                if self.record_trace:
                    self.trace.append((name, event))
        return stored

    def run_round_robin(self, batch: int = 5, crash_schedule: dict | None = None) -> int:
        """Interleave stores across clients until every backlog drains.

        ``crash_schedule`` maps client name → the store count at which
        that host dies mid-protocol. The fleet restarts the client (a
        fresh incarnation over the same backlog — the grid scheduler
        resubmits the interrupted job) and continues; store protocols
        are idempotent under such resubmission.
        """
        crash_schedule = dict(crash_schedule or {})
        total = 0
        while True:
            stored = self._store_round(batch, crash_schedule)
            total += stored
            if not stored and not any(
                client.backlog for client in self.clients.values()
            ):
                break
        self.settle()
        return total

    # -- trace capture / replay --------------------------------------------------

    def trace_document(self):
        """The recorded op log as a serialisable
        :class:`~repro.workloads.trace.TraceDocument` (JSONL-ready)."""
        from repro.workloads.trace import TraceDocument  # late: keep fleet import-light

        return TraceDocument(
            workload=f"fleet:{self.architecture}",
            events=[event for _, event in self.trace],
            clients=[name for name, _ in self.trace],
        )

    def replay_trace(self, trace) -> int:
        """Re-execute a captured fleet op log, store for store.

        ``trace`` is either a list of ``(client_name, event)`` pairs
        (the :attr:`trace` of a recording fleet) or a loaded
        :class:`~repro.workloads.trace.TraceDocument` whose ``clients``
        column was captured. Each event is stored through the named
        client in the recorded order, then the cloud settles — so a
        fresh fleet with the same constructor arguments as the capture
        run ends with a byte-identical meter (fault-free runs; a crash's
        partial protocol spend is not part of the op log).
        """
        if hasattr(trace, "events") and hasattr(trace, "clients"):
            pairs = list(zip(trace.clients, trace.events))
        else:
            pairs = list(trace)
        count = 0
        for name, event in pairs:
            if name is None or name not in self.clients:
                raise ValueError(
                    f"trace names unknown client {name!r}; replay needs a fleet "
                    f"shaped like the capture run (clients: {sorted(self.clients)})"
                )
            client = self.clients[name]
            client.store.store(event)
            client.stored += 1
            count += 1
            if self.record_trace:
                self.trace.append((name, event))
        self.settle()
        return count

    # -- live layout migration ---------------------------------------------------

    def start_migration(
        self,
        shards: int | None = None,
        placement: str | dict[int, str] | None = None,
        router: ShardRouter | None = None,
        **knobs,
    ) -> LiveMigration:
        """Begin an online migration of the fleet's shared shard layout."""
        if self.architecture == "s3":
            raise ValueError("the s3 architecture has no provenance shards to migrate")
        return begin_live_migration(
            self.account, self.routing, shards, placement, router, **knobs
        )

    def run_live_migration(
        self,
        shards: int | None = None,
        placement: str | dict[int, str] | None = None,
        router: ShardRouter | None = None,
        batch: int = 5,
        steps_per_round: int = 1,
        **knobs,
    ) -> MigrationReport:
        """The live-migration scenario: migrate *while* the fleet writes.

        Interleaves the fleet's round-robin store protocol with
        migration steps: every round, each client stores up to
        ``batch`` of its backlog, then the migration advances
        ``steps_per_round`` units (a shard copy, a WAL drain round, a
        per-shard cutover). Whichever finishes first, the other is
        driven to completion — the fleet keeps writing straight through
        every phase transition, which is the whole point. Returns the
        :class:`MigrationReport`; client backlogs are fully drained and
        the cloud settled on return.
        """
        migration = self.start_migration(shards, placement, router, **knobs)
        migrating = True
        while True:
            stored = self._store_round(batch)
            if migrating:
                for _ in range(steps_per_round):
                    migrating = migration.step()
                    if not migrating:
                        break
            if not stored and not migrating:
                break
        self.settle()
        return migration.report

    def settle(self) -> None:
        """Drain every client's daemon and let replication converge."""
        for _ in range(10):
            busy = False
            for client in self.clients.values():
                if isinstance(client.store, S3SimpleDBSQS):
                    client.store.restart_commit_daemon().drain()
                    if self.account.sqs.exact_message_count(client.store.queue_url):
                        busy = True
            self.account.quiesce()
            if not busy:
                return
            self.account.clock.advance(150.0)

    # -- shared queries ---------------------------------------------------------------

    @property
    def router(self) -> ShardRouter:
        """The settled shard layout (the source during a live migration)."""
        return self.routing.current

    def query_engine(self):
        if self.architecture == "s3":
            return S3ScanEngine(self.account)
        return SimpleDBEngine(
            self.account,
            router=self.routing,
            concurrency=self.concurrency,
            planner=self.planner,
        )

    def read(self, name: str):
        """Read through any client (they share the cloud)."""
        first = next(iter(sorted(self.clients)))
        return self.clients[first].store.read(name)

    def total_stored(self) -> int:
        return sum(client.stored for client in self.clients.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClientFleet({self.architecture!r}, clients={len(self.clients)}, "
            f"stored={self.total_stored()})"
        )
